//! Offline stand-in for the `serde` trait surface this workspace uses.
//!
//! No code in the workspace actually serializes anything yet (there is no
//! `serde_json` dependency); types only need to *implement* the
//! [`Serialize`] / [`Deserialize`] traits so that downstream crates can
//! rely on the bounds. The traits are therefore markers, and the paired
//! `serde_derive` stub emits empty impls. Swapping in the real `serde`
//! later requires no source changes in the workspace crates.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<[T]> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
