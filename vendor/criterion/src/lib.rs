//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no crates-io access, so this crate keeps the
//! bench targets compiling and gives them a serviceable runtime: when the
//! binary is invoked with `--bench` (as `cargo bench` does), each
//! registered benchmark runs a short warm-up followed by a bounded number
//! of timed iterations and prints mean/min wall-clock times. Without
//! `--bench` the benchmarks are listed but not executed, so accidentally
//! running the bench binary (e.g. from a test sweep) stays cheap. There
//! are no statistics, plots, or baselines — swap in the real `criterion`
//! for those.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on timed iterations per benchmark, keeping the stub's
/// runtime predictable regardless of the configured sample size.
const MAX_TIMED_ITERS: u64 = 20;

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
pub struct Criterion {
    run: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let run = args.iter().any(|a| a == "--bench");
        let filter = args.iter().rfind(|a| !a.starts_with("--")).cloned();
        Self { run, filter }
    }
}

impl Criterion {
    /// Applies command-line configuration (already done in
    /// [`Criterion::default`]; kept for API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, f);
        self
    }

    fn should_run(&self, id: &str) -> bool {
        if !self.run {
            return false;
        }
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.should_run(id) {
            println!("benchmark {id}: skipped (pass --bench to run)");
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("benchmark {id}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty samples");
    println!(
        "benchmark {id}: mean {mean:?}, min {min:?} over {} iterations",
        samples.len()
    );
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count (accepted for API compatibility; the
    /// stub caps iterations at a small constant).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement duration (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers a benchmark parameterised by `input`.
    // Signature mirrors the real criterion API (id by value), so callers
    // port unchanged when swapping in the registry crate.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Registers a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, possibly carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion into [`BenchmarkId`] for `bench_function`'s flexible
/// argument.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per allocation.
    SmallInput,
    /// Inputs are large; batch few.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for a single benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over a bounded number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warm-up, untimed
        for _ in 0..MAX_TIMED_ITERS {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..MAX_TIMED_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}
