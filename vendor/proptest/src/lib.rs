//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! a minimal property-testing runner that is source-compatible with the
//! `proptest` idioms appearing in the test suites:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header) generating one `#[test]` per
//!   property,
//! * [`Strategy`](strategy::Strategy) with `prop_map`, range strategies,
//!   tuple strategies, [`collection::vec`], [`prop_oneof!`] (weighted and
//!   unweighted), and [`any`](arbitrary::any),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from the real crate: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible), and failing cases are reported but **not shrunk**. The
//! `PROPTEST_CASES` environment variable *caps* the per-test case count so
//! CI can bound runtime.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Per-property configuration, selected with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The effective case count: the configured value, capped by the
/// `PROPTEST_CASES` environment variable when it is set (never below 1).
pub fn resolved_cases(cfg: &ProptestConfig) -> u32 {
    let configured = cfg.cases.max(1);
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => configured.min(cap.max(1)),
        None => configured,
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; the runner resamples.
    Reject,
    /// A [`prop_assert!`]-style assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (used by the assertion macros).
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let cases = $crate::resolved_cases(&cfg);
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            let strats = ($($strat,)+);
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cases.saturating_mul(16).saturating_add(64);
            while executed < cases {
                assert!(
                    attempts < max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    cases,
                );
                attempts += 1;
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strats, &mut rng);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case #{}: {}",
                            stringify!($name),
                            executed,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (without panicking the whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case unless the condition holds; the runner draws
/// a replacement sample.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`: module shorthands.
        pub use crate::collection;
        pub use crate::strategy;
    }
}
