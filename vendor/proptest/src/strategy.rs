//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// A type-erased strategy, as produced by [`prop_oneof!`](crate::prop_oneof).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies with a common value type.
pub struct Union<V> {
    variants: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof!: all weights are zero");
        Self {
            variants,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.variants {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick exceeded total weight");
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
