//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A half-open range of collection sizes; built from `usize` (exact
/// length) or `usize` ranges.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        Self {
            lo,
            hi_exclusive: hi + 1,
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
