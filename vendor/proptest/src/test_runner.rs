//! The RNG backing test-case generation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Builds the deterministic per-test generator, seeded from the test
/// name (FNV-1a) so distinct properties draw distinct streams while runs
/// stay reproducible.
pub fn new_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
