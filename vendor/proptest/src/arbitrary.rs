//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! any_full_range {
    ($($name:ident => $t:ty),*) => {$(
        /// Canonical strategy for the corresponding integer type:
        /// uniform over the full domain.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;

            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

any_full_range!(AnyU8 => u8, AnyU16 => u16, AnyU32 => u32, AnyU64 => u64, AnyUsize => usize, AnyI32 => i32, AnyI64 => i64);
