//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! a minimal, API-compatible implementation: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, a [`rngs::StdRng`] built on xoshiro256++ with
//! SplitMix64 seeding, uniform ranges, and Fisher–Yates shuffling. Streams
//! are deterministic per seed but do **not** match upstream `rand` output
//! bit-for-bit; nothing in the workspace depends on the exact stream, only
//! on determinism and reasonable uniformity. Swapping this crate for the
//! real `rand` is a one-line change in the workspace manifest.

/// A source of raw randomness: everything derives from [`next_u64`].
///
/// [`next_u64`]: RngCore::next_u64
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (high bits of
    /// [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random mantissa bits; the shared
/// primitive behind every float sampler in this crate.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, `bool` fair coin, integers uniform
    /// over the full domain).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! Sampling distributions (`Standard`, uniform ranges).

    use crate::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value using `rng` as the randomness source.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform `[0, 1)` for floats,
    /// uniform over the whole domain for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            crate::unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    pub mod uniform {
        //! Uniform sampling from ranges, mirroring
        //! `rand::distributions::uniform`.

        use crate::Rng;
        use std::ops::{Range, RangeInclusive};

        /// A range that knows how to sample itself uniformly.
        pub trait SampleRange<T> {
            /// Draws one value uniformly from the range.
            ///
            /// Panics if the range is empty.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + crate::unit_f64(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // The closed upper endpoint has measure zero; reuse the
                // half-open sampler over [lo, hi).
                lo + crate::unit_f64(rng) * (hi - lo)
            }
        }

        /// Uniform `u64` in `[0, span)` by rejection, avoiding modulo bias.
        pub(crate) fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = u64::MAX - u64::MAX % span;
            loop {
                let v = rng.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + uniform_below(rng, span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = self.into_inner();
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
                    }
                }
            )*};
        }

        int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
    }
}

pub mod rngs {
    //! Concrete generators.

    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    ///
    /// Unlike the upstream `StdRng` (ChaCha12) this is not a
    /// cryptographic generator; the workspace only needs statistical
    /// quality and per-seed determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence utilities (`shuffle`, `choose`).

    use crate::distributions::uniform::uniform_below;
    use crate::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! The traits and types most callers want in scope.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_700..2_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
