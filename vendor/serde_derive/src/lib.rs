//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate's `Serialize` / `Deserialize` are marker
//! traits, so the derives only need to emit empty impls. The input is
//! parsed with `proc_macro` alone (no `syn`/`quote` available offline):
//! we scan for the `struct`/`enum`/`union` keyword and take the following
//! identifier as the type name. Generic types are not supported — every
//! type deriving these traits in the workspace is concrete.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive macro was applied to.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tree in input {
        // Attribute contents and bodies arrive as groups; only top-level
        // identifiers matter.
        if let TokenTree::Ident(ident) = tree {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

/// Derives the marker impl for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

/// Derives the marker impl for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}
