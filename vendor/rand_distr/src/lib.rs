//! Offline stand-in for the subset of `rand_distr` 0.4 this workspace
//! uses: the [`StandardNormal`] distribution (via Box–Muller) plus a
//! re-export of the [`Distribution`] trait.

pub use rand::distributions::Distribution;
use rand::Rng;

/// The standard normal distribution `N(0, 1)`.
///
/// Sampled with the Box–Muller transform: statistically exact, though the
/// stream differs from upstream `rand_distr`'s ziggurat sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u1 in (0, 1] so the logarithm is finite; u2 in [0, 1).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        assert!(samples.iter().all(|x| x.is_finite()));
    }
}
