//! Static and fully dynamic skyline operator.
//!
//! The skyline (Pareto-optimal subset) plays two roles in the paper:
//!
//! 1. Every *static* k-RMS baseline takes the skyline as input and must
//!    recompute its result whenever an insertion or deletion changes the
//!    skyline (Section II-B: "the result of k-RMS is a subset of the
//!    skyline … it remains unchanged for any operation on non-skyline
//!    tuples"). [`DynamicSkyline`] detects exactly those changes.
//! 2. Table I and Fig. 4 report skyline sizes, which [`skyline`]
//!    computes from scratch.
//!
//! The static algorithm is sort–filter–scan (SFS): points sorted by
//! descending coordinate sum are compared only against the current skyline,
//! because a point can only be dominated by points of larger or equal sum.
//! A naive block-nested-loop variant is kept as a test oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod stat;

pub use dynamic::{DynamicSkyline, SkylineDelta, SkylineError};
pub use stat::{skyline, skyline_bnl, skyline_indices};
