//! Fully dynamic skyline maintenance.
//!
//! The static baselines in `rms-baselines` re-run whenever the skyline
//! changes; this structure applies each `Δ_t` and reports whether the
//! skyline changed, in which direction, and exposes the up-to-date skyline.
//!
//! ## Algorithm
//!
//! Every live tuple is either a *skyline* member or *dominated*. Each
//! dominated tuple stores one of its dominators as a `parent` witness.
//!
//! * **Insert p**: compare against the current skyline. If some member
//!   dominates `p`, store `p` as dominated with that witness — the skyline
//!   is unchanged. Otherwise `p` joins the skyline, and skyline members now
//!   dominated by `p` are demoted with parent `p`.
//! * **Delete p** (non-skyline): drop it; tuples witnessing through `p`
//!   never exist (only skyline members are witnesses). Skyline unchanged.
//! * **Delete p** (skyline): remove it, then re-examine the dominated
//!   tuples whose witness was `p`. Each is either re-witnessed by another
//!   current skyline member, or promoted. Promotion must respect dominance
//!   *among the orphans themselves*: the orphan set's own skyline joins,
//!   the rest are re-witnessed by a promoted orphan.
//!
//! Witness reassignment keeps deletion cost proportional to the number of
//! orphans times the skyline size instead of `O(n·s)`.

use rms_geom::{dominates, Point, PointId};
use std::collections::HashMap;

/// How an operation changed the skyline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkylineDelta {
    /// The skyline is exactly as before.
    Unchanged,
    /// At least one tuple entered or left the skyline.
    Changed,
}

/// Errors from dynamic skyline updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkylineError {
    /// Insertion of an id that is already live.
    DuplicateId(PointId),
    /// Deletion of an id that is not live.
    UnknownId(PointId),
    /// Insertion of a point with the wrong dimensionality.
    DimensionMismatch {
        /// Expected dimensionality (that of the existing database).
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
}

impl std::fmt::Display for SkylineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkylineError::DuplicateId(id) => write!(f, "tuple {id} is already present"),
            SkylineError::UnknownId(id) => write!(f, "tuple {id} is not present"),
            SkylineError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SkylineError {}

#[derive(Debug, Clone)]
enum Status {
    Skyline,
    /// Dominated, with the id of one dominating *skyline* member as witness.
    Dominated(PointId),
}

/// Fully dynamic skyline over a set of live tuples.
#[derive(Debug, Clone, Default)]
pub struct DynamicSkyline {
    points: HashMap<PointId, (Point, Status)>,
    /// Current skyline ids (kept in a Vec for fast iteration; order is
    /// unspecified).
    sky: Vec<PointId>,
    /// Witness → tuples it witnesses. Only skyline members have entries.
    children: HashMap<PointId, Vec<PointId>>,
    dim: Option<usize>,
}

impl DynamicSkyline {
    /// Builds the structure from an initial database `P0`.
    pub fn new(initial: Vec<Point>) -> Result<Self, SkylineError> {
        let mut s = Self::default();
        for p in initial {
            s.insert(p)?;
        }
        Ok(s)
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no tuples are live.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Size of the current skyline.
    pub fn skyline_len(&self) -> usize {
        self.sky.len()
    }

    /// `true` iff the tuple with `id` is live.
    pub fn contains(&self, id: PointId) -> bool {
        self.points.contains_key(&id)
    }

    /// `true` iff the tuple with `id` is live and on the skyline.
    pub fn is_skyline(&self, id: PointId) -> bool {
        matches!(self.points.get(&id), Some((_, Status::Skyline)))
    }

    /// The current skyline, cloned out in unspecified order.
    pub fn skyline_points(&self) -> Vec<Point> {
        self.sky
            .iter()
            .map(|id| self.points[id].0.clone())
            .collect()
    }

    /// All live tuples, cloned out in unspecified order.
    pub fn all_points(&self) -> Vec<Point> {
        self.points.values().map(|(p, _)| p.clone()).collect()
    }

    /// Applies `Δ_t = 〈p, +〉`.
    pub fn insert(&mut self, p: Point) -> Result<SkylineDelta, SkylineError> {
        if self.points.contains_key(&p.id()) {
            return Err(SkylineError::DuplicateId(p.id()));
        }
        if let Some(d) = self.dim {
            if p.dim() != d {
                return Err(SkylineError::DimensionMismatch {
                    expected: d,
                    got: p.dim(),
                });
            }
        } else {
            self.dim = Some(p.dim());
        }

        // Dominated by an existing skyline member? Then nothing changes.
        if let Some(&witness) = self.sky.iter().find(|id| dominates(&self.points[id].0, &p)) {
            let pid = p.id();
            self.points.insert(pid, (p, Status::Dominated(witness)));
            self.children.entry(witness).or_default().push(pid);
            return Ok(SkylineDelta::Unchanged);
        }

        // p joins the skyline; demote members now dominated by p. Their
        // dependents transfer to p: dominance is transitive, so p
        // dominates everything a demoted member witnessed.
        let pid = p.id();
        let mut demoted = Vec::new();
        self.sky.retain(|&sid| {
            if dominates(&p, &self.points[&sid].0) {
                demoted.push(sid);
                false
            } else {
                true
            }
        });
        let mut adopted: Vec<PointId> = Vec::new();
        for sid in demoted {
            if let Some(entry) = self.points.get_mut(&sid) {
                entry.1 = Status::Dominated(pid);
            }
            adopted.push(sid);
            if let Some(mut grandchildren) = self.children.remove(&sid) {
                for &gid in &grandchildren {
                    if let Some(e) = self.points.get_mut(&gid) {
                        e.1 = Status::Dominated(pid);
                    }
                }
                adopted.append(&mut grandchildren);
            }
        }
        if !adopted.is_empty() {
            self.children.entry(pid).or_default().extend(adopted);
        }
        self.points.insert(pid, (p, Status::Skyline));
        self.sky.push(pid);
        Ok(SkylineDelta::Changed)
    }

    /// Applies `Δ_t = 〈p, −〉`.
    pub fn delete(&mut self, id: PointId) -> Result<SkylineDelta, SkylineError> {
        let Some((_, status)) = self.points.get(&id) else {
            return Err(SkylineError::UnknownId(id));
        };
        match status {
            Status::Dominated(w) => {
                let w = *w;
                self.points.remove(&id);
                if let Some(kids) = self.children.get_mut(&w) {
                    if let Some(pos) = kids.iter().position(|&k| k == id) {
                        kids.swap_remove(pos);
                    }
                }
                Ok(SkylineDelta::Unchanged)
            }
            Status::Skyline => {
                self.points.remove(&id);
                self.sky.retain(|&sid| sid != id);
                let orphans = self.children.remove(&id).unwrap_or_default();
                self.recover_orphans(orphans);
                Ok(SkylineDelta::Changed)
            }
        }
    }

    /// Re-homes the dominated tuples whose witness was a deleted skyline
    /// member.
    fn recover_orphans(&mut self, orphans: Vec<PointId>) {
        if orphans.is_empty() {
            return;
        }

        // Pass 1: orphans still dominated by a surviving skyline member
        // just get a new witness.
        let mut candidates: Vec<PointId> = Vec::new();
        for oid in orphans {
            let op = &self.points[&oid].0;
            if let Some(&w) = self
                .sky
                .iter()
                .find(|sid| dominates(&self.points[sid].0, op))
            {
                if let Some(e) = self.points.get_mut(&oid) {
                    e.1 = Status::Dominated(w);
                }
                self.children.entry(w).or_default().push(oid);
            } else {
                candidates.push(oid);
            }
        }

        // Pass 2: among the remaining candidates, the mutually non-dominated
        // ones are promoted; the rest are witnessed by a promoted candidate.
        // Sorting by descending coordinate sum guarantees a point is
        // processed after all its potential dominators.
        candidates.sort_unstable_by(|a, b| {
            let sa: f64 = self.points[a].0.coords().iter().sum();
            let sb: f64 = self.points[b].0.coords().iter().sum();
            sb.partial_cmp(&sa).expect("finite").then_with(|| a.cmp(b))
        });
        let mut promoted: Vec<PointId> = Vec::new();
        'cand: for cid in candidates {
            let cp = &self.points[&cid].0;
            for &pid in &promoted {
                if dominates(&self.points[&pid].0, cp) {
                    if let Some(e) = self.points.get_mut(&cid) {
                        e.1 = Status::Dominated(pid);
                    }
                    self.children.entry(pid).or_default().push(cid);
                    continue 'cand;
                }
            }
            promoted.push(cid);
        }
        for pid in promoted {
            if let Some(e) = self.points.get_mut(&pid) {
                e.1 = Status::Skyline;
            }
            self.sky.push(pid);
        }
    }

    /// Verifies internal invariants; used by tests and debug assertions.
    ///
    /// Checks that (1) the skyline set equals the static skyline of the
    /// live tuples, and (2) every witness pointer refers to a live skyline
    /// member that dominates the witnessing tuple.
    pub fn check_invariants(&self) -> Result<(), String> {
        let all = self.all_points();
        let want: std::collections::HashSet<PointId> = crate::stat::skyline_bnl(&all)
            .iter()
            .map(|p| p.id())
            .collect();
        let got: std::collections::HashSet<PointId> = self.sky.iter().copied().collect();
        if want != got {
            return Err(format!("skyline mismatch: want {want:?}, got {got:?}"));
        }
        if got.len() != self.sky.len() {
            return Err("duplicate ids in skyline vector".into());
        }
        for (pid, (p, st)) in &self.points {
            match st {
                Status::Skyline => {
                    if !got.contains(pid) {
                        return Err(format!("{pid} marked skyline but not in sky vec"));
                    }
                }
                Status::Dominated(w) => {
                    let Some((wp, wst)) = self.points.get(w) else {
                        return Err(format!("witness {w} of {pid} is dead"));
                    };
                    if !matches!(wst, Status::Skyline) {
                        return Err(format!("witness {w} of {pid} is not on the skyline"));
                    }
                    if !dominates(wp, p) {
                        return Err(format!("witness {w} does not dominate {pid}"));
                    }
                    let kids = self.children.get(w).cloned().unwrap_or_default();
                    if !kids.contains(pid) {
                        return Err(format!("{pid} missing from children[{w}]"));
                    }
                }
            }
        }
        for (w, kids) in &self.children {
            for kid in kids {
                match self.points.get(kid) {
                    Some((_, Status::Dominated(ww))) if ww == w => {}
                    _ => {
                        return Err(format!(
                            "children[{w}] lists {kid}, which is not witnessed by {w}"
                        ))
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: u64, coords: &[f64]) -> Point {
        Point::new_unchecked(id, coords.to_vec())
    }

    #[test]
    fn insert_dominated_leaves_skyline_unchanged() {
        let mut ds = DynamicSkyline::new(vec![pt(0, &[0.9, 0.9])]).unwrap();
        assert_eq!(
            ds.insert(pt(1, &[0.1, 0.1])).unwrap(),
            SkylineDelta::Unchanged
        );
        assert_eq!(ds.skyline_len(), 1);
        ds.check_invariants().unwrap();
    }

    #[test]
    fn insert_dominating_demotes_members() {
        let mut ds = DynamicSkyline::new(vec![pt(0, &[0.5, 0.5]), pt(1, &[0.2, 0.8])]).unwrap();
        assert_eq!(ds.skyline_len(), 2);
        assert_eq!(
            ds.insert(pt(2, &[0.9, 0.9])).unwrap(),
            SkylineDelta::Changed
        );
        assert_eq!(ds.skyline_len(), 1);
        assert!(ds.is_skyline(2));
        assert!(!ds.is_skyline(0));
        ds.check_invariants().unwrap();
    }

    #[test]
    fn delete_nonskyline_is_unchanged() {
        let mut ds = DynamicSkyline::new(vec![pt(0, &[0.9, 0.9]), pt(1, &[0.1, 0.1])]).unwrap();
        assert_eq!(ds.delete(1).unwrap(), SkylineDelta::Unchanged);
        assert_eq!(ds.len(), 1);
        ds.check_invariants().unwrap();
    }

    #[test]
    fn delete_skyline_promotes_exclusively_dominated() {
        let mut ds = DynamicSkyline::new(vec![
            pt(0, &[0.9, 0.9]), // dominates everyone
            pt(1, &[0.8, 0.1]),
            pt(2, &[0.1, 0.8]),
        ])
        .unwrap();
        assert_eq!(ds.skyline_len(), 1);
        assert_eq!(ds.delete(0).unwrap(), SkylineDelta::Changed);
        assert_eq!(ds.skyline_len(), 2);
        assert!(ds.is_skyline(1) && ds.is_skyline(2));
        ds.check_invariants().unwrap();
    }

    #[test]
    fn orphans_may_dominate_each_other() {
        // 0 dominates 1 and 2; 1 dominates 2. Deleting 0 must promote only 1.
        let mut ds = DynamicSkyline::new(vec![
            pt(0, &[0.9, 0.9]),
            pt(1, &[0.8, 0.8]),
            pt(2, &[0.7, 0.7]),
        ])
        .unwrap();
        ds.delete(0).unwrap();
        assert!(ds.is_skyline(1));
        assert!(!ds.is_skyline(2));
        assert_eq!(ds.skyline_len(), 1);
        ds.check_invariants().unwrap();
    }

    #[test]
    fn orphan_rewitnessed_by_survivor() {
        // Two skyline points both dominate 2; delete one, 2 stays dominated.
        let mut ds = DynamicSkyline::new(vec![
            pt(0, &[0.9, 0.6]),
            pt(1, &[0.6, 0.9]),
            pt(2, &[0.5, 0.5]),
        ])
        .unwrap();
        assert_eq!(ds.skyline_len(), 2);
        ds.delete(0).unwrap();
        assert!(!ds.is_skyline(2));
        assert_eq!(ds.skyline_len(), 1);
        ds.check_invariants().unwrap();
    }

    #[test]
    fn error_cases() {
        let mut ds = DynamicSkyline::new(vec![pt(0, &[0.5, 0.5])]).unwrap();
        assert_eq!(
            ds.insert(pt(0, &[0.1, 0.1])),
            Err(SkylineError::DuplicateId(0))
        );
        assert_eq!(ds.delete(42), Err(SkylineError::UnknownId(42)));
        assert_eq!(
            ds.insert(pt(1, &[0.1, 0.1, 0.1])),
            Err(SkylineError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn empty_structure() {
        let mut ds = DynamicSkyline::default();
        assert!(ds.is_empty());
        assert_eq!(ds.skyline_len(), 0);
        assert!(ds.skyline_points().is_empty());
        ds.insert(pt(0, &[0.5])).unwrap();
        assert_eq!(ds.skyline_len(), 1);
        ds.delete(0).unwrap();
        assert!(ds.is_empty());
        ds.check_invariants().unwrap();
    }

    #[test]
    fn randomized_against_static_oracle() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2021);
        let mut ds = DynamicSkyline::default();
        let mut live: Vec<Point> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..600 {
            let do_insert = live.is_empty() || rng.gen_bool(0.6);
            if do_insert {
                let p = pt(next_id, &[rng.gen(), rng.gen(), rng.gen()]);
                next_id += 1;
                live.push(p.clone());
                ds.insert(p).unwrap();
            } else {
                let i = rng.gen_range(0..live.len());
                let id = live.swap_remove(i).id();
                ds.delete(id).unwrap();
            }
            if step % 50 == 0 {
                ds.check_invariants().unwrap();
            }
        }
        ds.check_invariants().unwrap();
        let mut want: Vec<u64> = crate::stat::skyline(&live).iter().map(|p| p.id()).collect();
        let mut got: Vec<u64> = ds.skyline_points().iter().map(|p| p.id()).collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got);
    }
}
