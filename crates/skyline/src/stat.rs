//! Static skyline computation.

use rms_geom::{dominates, Point};

/// Computes the skyline of `points` with sort–filter–scan.
///
/// Points are processed in descending order of coordinate sum (ties broken
/// by id); a point whose sum is strictly smaller than another's can never
/// dominate it, so each candidate needs comparing only against the skyline
/// accumulated so far. Runs in `O(n log n + n·s)` where `s` is the skyline
/// size. Duplicate coordinate vectors: the smallest id wins, later copies
/// are treated as dominated only if strictly dominated — equal points are
/// all kept, matching the dominance definition (a point does not dominate
/// its equal).
pub fn skyline(points: &[Point]) -> Vec<Point> {
    skyline_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Index-returning variant of [`skyline`]: positions into `points` of the
/// skyline members, in descending coordinate-sum order.
pub fn skyline_indices(points: &[Point]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    let sums: Vec<f64> = points
        .iter()
        .map(|p| p.coords().iter().sum::<f64>())
        .collect();
    order.sort_unstable_by(|&a, &b| {
        sums[b]
            .partial_cmp(&sums[a])
            .expect("coordinates are finite")
            .then_with(|| points[a].id().cmp(&points[b].id()))
    });

    let mut sky: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        for &s in &sky {
            if dominates(&points[s], &points[i]) {
                continue 'outer;
            }
        }
        sky.push(i);
    }
    sky
}

/// Block-nested-loop skyline: quadratic reference implementation used as a
/// ground-truth oracle in tests.
pub fn skyline_bnl(points: &[Point]) -> Vec<Point> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(id: u64, coords: &[f64]) -> Point {
        Point::new_unchecked(id, coords.to_vec())
    }

    /// Fig. 1 of the paper: checking dominance by hand, the non-dominated
    /// tuples are p1 (0.2,1.0), p2 (0.6,0.8), p3 (0.7,0.5), p4 (1.0,0.1),
    /// and p7 (0.3,0.9) — p7 beats p1 on x and p2 on y, so nothing
    /// dominates it.
    #[test]
    fn fig1_skyline() {
        let db = vec![
            pt(1, &[0.2, 1.0]),
            pt(2, &[0.6, 0.8]),
            pt(3, &[0.7, 0.5]),
            pt(4, &[1.0, 0.1]),
            pt(5, &[0.4, 0.3]),
            pt(6, &[0.2, 0.7]),
            pt(7, &[0.3, 0.9]),
            pt(8, &[0.6, 0.6]),
        ];
        let mut ids: Vec<u64> = skyline(&db).iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 7]);
    }

    #[test]
    fn sfs_matches_bnl_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for d in 2..6 {
            let pts: Vec<Point> = (0..300)
                .map(|i| {
                    let c: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
                    Point::new_unchecked(i, c)
                })
                .collect();
            let mut a: Vec<u64> = skyline(&pts).iter().map(|p| p.id()).collect();
            let mut b: Vec<u64> = skyline_bnl(&pts).iter().map(|p| p.id()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "d={d}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(skyline(&[]).is_empty());
        let one = vec![pt(0, &[0.3, 0.3])];
        assert_eq!(skyline(&one).len(), 1);
    }

    #[test]
    fn duplicates_are_all_kept() {
        let db = vec![pt(0, &[0.5, 0.5]), pt(1, &[0.5, 0.5]), pt(2, &[0.1, 0.1])];
        let mut ids: Vec<u64> = skyline(&db).iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn total_dominance_chain() {
        let db: Vec<Point> = (0..10)
            .map(|i| pt(i, &[i as f64 / 10.0, i as f64 / 10.0]))
            .collect();
        let s = skyline(&db);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id(), 9);
    }

    #[test]
    fn indices_point_into_input() {
        let db = vec![
            pt(10, &[1.0, 0.1]),
            pt(20, &[0.0, 1.0]),
            pt(30, &[0.9, 0.0]),
        ];
        let idx = skyline_indices(&db);
        assert_eq!(idx.len(), 2);
        for i in idx {
            assert!(db[i].id() == 10 || db[i].id() == 20);
        }
    }
}
