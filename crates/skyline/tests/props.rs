//! Property-based tests: the dynamic skyline always equals the static one.

use proptest::prelude::*;
use rms_geom::Point;
use rms_skyline::{skyline_bnl, DynamicSkyline};

/// A random edit script: each step either inserts a fresh point or deletes
/// a uniformly chosen live point.
#[derive(Debug, Clone)]
enum Step {
    Insert(Vec<f64>),
    /// Delete the live tuple at `index % live_count`.
    Delete(usize),
}

fn arb_steps(d: usize, len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            3 => prop::collection::vec(0.0f64..=1.0, d).prop_map(Step::Insert),
            2 => (0usize..1000).prop_map(Step::Delete),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dynamic_equals_static_after_any_script(steps in arb_steps(3, 120)) {
        let mut ds = DynamicSkyline::default();
        let mut live: Vec<Point> = Vec::new();
        let mut next_id = 0u64;
        for step in steps {
            match step {
                Step::Insert(coords) => {
                    let p = Point::new_unchecked(next_id, coords);
                    next_id += 1;
                    live.push(p.clone());
                    ds.insert(p).unwrap();
                }
                Step::Delete(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = i % live.len();
                    let id = live.swap_remove(idx).id();
                    ds.delete(id).unwrap();
                }
            }
        }
        ds.check_invariants().map_err(TestCaseError::fail)?;
        let mut want: Vec<u64> = skyline_bnl(&live).iter().map(|p| p.id()).collect();
        let mut got: Vec<u64> = ds.skyline_points().iter().map(|p| p.id()).collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(want, got);
        prop_assert_eq!(ds.len(), live.len());
    }

    /// Deleting everything always empties the structure cleanly.
    #[test]
    fn delete_all_drains(coords in prop::collection::vec(
        prop::collection::vec(0.0f64..=1.0, 4), 1..40)
    ) {
        let pts: Vec<Point> = coords
            .into_iter()
            .enumerate()
            .map(|(i, c)| Point::new_unchecked(i as u64, c))
            .collect();
        let ids: Vec<u64> = pts.iter().map(|p| p.id()).collect();
        let mut ds = DynamicSkyline::new(pts).unwrap();
        for id in ids {
            ds.delete(id).unwrap();
            ds.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert!(ds.is_empty());
        prop_assert_eq!(ds.skyline_len(), 0);
    }
}
