//! Property-based tests for the simplex solver and regret LPs.

use proptest::prelude::*;
use rms_geom::{sample_utilities, top1, Point};
use rms_lp::regret::{is_happy_point, max_regret_lp, mrr1_exact};
use rms_lp::{LpOutcome, Relation, Simplex};

fn arb_points(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0.05f64..=1.0, d), n).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, c)| Point::new_unchecked(i as u64, c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimal solutions satisfy every constraint and nonnegativity.
    #[test]
    fn solutions_are_feasible(
        obj in prop::collection::vec(-2.0f64..2.0, 2..5),
        rows in prop::collection::vec((prop::collection::vec(-1.0f64..1.0, 4), 0.1f64..3.0), 1..6),
    ) {
        let n = obj.len();
        let mut lp = Simplex::maximize(obj);
        let mut cons = Vec::new();
        for (coeffs, rhs) in rows {
            let coeffs: Vec<f64> = coeffs.into_iter().take(n).collect();
            cons.push((coeffs.clone(), rhs));
            lp = lp.constraint(coeffs, Relation::Le, rhs);
        }
        lp = lp.constraint(vec![1.0; n], Relation::Le, 50.0);
        if let LpOutcome::Optimal(sol) = lp.solve() {
            for (coeffs, rhs) in cons {
                let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
                prop_assert!(lhs <= rhs + 1e-6);
            }
            prop_assert!(sol.x.iter().all(|&v| v >= -1e-9));
        }
    }

    /// The LP regret upper-bounds every sampled utility's regret and mrr is
    /// monotone: adding tuples to Q never increases it.
    #[test]
    fn regret_lp_dominates_sampling_and_is_monotone(
        pts in arb_points(3, 4..12),
        seed in 0u64..500,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let q1 = vec![pts[0].clone()];
        let q2 = vec![pts[0].clone(), pts[1].clone()];
        let m1 = mrr1_exact(&pts, &q1);
        let m2 = mrr1_exact(&pts, &q2);
        prop_assert!(m2 <= m1 + 1e-9, "adding to Q increased mrr: {m1} -> {m2}");

        let mut rng = StdRng::seed_from_u64(seed);
        for u in sample_utilities(&mut rng, 3, 64) {
            let top_p = top1(&pts, &u).unwrap().score;
            let top_q = top1(&q1, &u).unwrap().score;
            let rr = ((top_p - top_q) / top_p).max(0.0);
            prop_assert!(m1 >= rr - 1e-7, "LP mrr {m1} below sampled {rr}");
        }
    }

    /// Witness regret of a tuple inside Q is always zero.
    #[test]
    fn member_regret_zero(pts in arb_points(4, 2..10)) {
        let q: Vec<Point> = pts.iter().take(3).cloned().collect();
        for p in &q {
            prop_assert!(max_regret_lp(p, &q) < 1e-9);
        }
    }

    /// Every sampled top-1 tuple must be classified happy.
    #[test]
    fn sampled_top1_is_happy(pts in arb_points(3, 3..10), seed in 0u64..200) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for u in sample_utilities(&mut rng, 3, 32) {
            let id = top1(&pts, &u).unwrap().id;
            let p = pts.iter().find(|p| p.id() == id).unwrap();
            prop_assert!(is_happy_point(p, &pts));
        }
    }

    /// Regret is within [0, 1] for arbitrary witnesses.
    #[test]
    fn regret_in_unit_interval(pts in arb_points(2, 2..15)) {
        let q: Vec<Point> = pts.iter().take(2).cloned().collect();
        for p in &pts {
            let rr = max_regret_lp(p, &q);
            prop_assert!((0.0..=1.0).contains(&rr));
        }
    }
}
