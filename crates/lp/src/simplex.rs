//! Dense two-phase simplex.
//!
//! Solves `maximize c·x subject to A x {≤,=,≥} b, x ≥ 0` for small dense
//! systems. Phase 1 minimises the sum of artificial variables to find a
//! basic feasible solution; phase 2 optimises the real objective. Bland's
//! rule (smallest-index entering/leaving) prevents cycling; the problem
//! sizes here (tens of variables) make its slower convergence irrelevant.

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// A single linear constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        Self {
            coeffs,
            relation,
            rhs,
        }
    }
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub value: f64,
}

/// Numerical tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

/// A maximisation LP over nonnegative structural variables.
#[derive(Debug, Clone)]
pub struct Simplex {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Simplex {
    /// Creates a problem `maximize objective · x` with `x ≥ 0` and no
    /// constraints yet.
    ///
    /// Panics if `objective` is empty.
    pub fn maximize(objective: Vec<f64>) -> Self {
        assert!(!objective.is_empty(), "objective must have variables");
        Self {
            num_vars: objective.len(),
            objective,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint; coefficient vectors shorter than the variable
    /// count are zero-padded.
    ///
    /// Panics if more coefficients than variables are supplied.
    pub fn constraint(mut self, mut coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        assert!(
            coeffs.len() <= self.num_vars,
            "constraint has more coefficients than variables"
        );
        coeffs.resize(self.num_vars, 0.0);
        self.constraints
            .push(Constraint::new(coeffs, relation, rhs));
        self
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve()
    }
}

/// Internal simplex tableau.
///
/// Layout: `cols = num_vars structural + num_slack + num_artificial + 1
/// (rhs)`. One row per constraint plus one objective row (kept separately).
struct Tableau {
    rows: Vec<Vec<f64>>,
    /// Basis: for each constraint row, the index of its basic column.
    basis: Vec<usize>,
    num_vars: usize,
    /// Total structural + slack columns (artificials start here).
    non_artificial: usize,
    num_cols: usize,
    objective: Vec<f64>,
}

impl Tableau {
    fn build(lp: &Simplex) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Normalise rows to nonnegative rhs, count slacks/artificials.
        let mut norm: Vec<(Vec<f64>, Relation, f64)> = lp
            .constraints
            .iter()
            .map(|c| {
                if c.rhs < 0.0 {
                    let coeffs = c.coeffs.iter().map(|v| -v).collect();
                    let rel = match c.relation {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    };
                    (coeffs, rel, -c.rhs)
                } else {
                    (c.coeffs.clone(), c.relation, c.rhs)
                }
            })
            .collect();

        let num_slack = norm
            .iter()
            .filter(|(_, rel, _)| !matches!(rel, Relation::Eq))
            .count();
        let num_art = norm
            .iter()
            .filter(|(_, rel, _)| !matches!(rel, Relation::Le))
            .count();
        let non_artificial = n + num_slack;
        let num_cols = non_artificial + num_art + 1; // + rhs

        let mut rows = vec![vec![0.0; num_cols]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = n;
        let mut art_at = non_artificial;

        for (i, (coeffs, rel, rhs)) in norm.drain(..).enumerate() {
            rows[i][..n].copy_from_slice(&coeffs);
            rows[i][num_cols - 1] = rhs;
            match rel {
                Relation::Le => {
                    rows[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Relation::Ge => {
                    rows[i][slack_at] = -1.0; // surplus
                    slack_at += 1;
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
                Relation::Eq => {
                    rows[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }

        Self {
            rows,
            basis,
            num_vars: n,
            non_artificial,
            num_cols,
            objective: lp.objective.clone(),
        }
    }

    fn solve(mut self) -> LpOutcome {
        let has_artificials = self.num_cols - 1 > self.non_artificial;
        if has_artificials {
            // Phase 1: minimise the sum of artificials, i.e. maximise the
            // negated sum. Objective row expressed over the current basis.
            let mut obj = vec![0.0; self.num_cols];
            obj[self.non_artificial..self.num_cols - 1].fill(-1.0);
            // Price out basic artificial columns.
            let mut zrow = obj.clone();
            for (row, &b) in self.basis.iter().enumerate() {
                if b >= self.non_artificial {
                    let coef = zrow[b];
                    if coef != 0.0 {
                        for (z, &a) in zrow.iter_mut().zip(&self.rows[row]) {
                            *z -= coef * a;
                        }
                    }
                }
            }
            match self.run_simplex(&mut zrow, self.num_cols - 1) {
                SimplexRun::Unbounded => {
                    // Phase-1 objective is bounded by 0; cannot happen.
                    unreachable!("phase-1 objective is bounded above by zero")
                }
                SimplexRun::Optimal => {}
            }
            // Objective value of phase 1 = −(sum of artificials).
            let p1 = -zrow[self.num_cols - 1];
            if p1.abs() > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive remaining artificials out of the basis where possible.
            for row in 0..self.rows.len() {
                if self.basis[row] >= self.non_artificial {
                    if let Some(col) =
                        (0..self.non_artificial).find(|&c| self.rows[row][c].abs() > TOL)
                    {
                        self.pivot(row, col);
                    }
                    // If no pivot column exists the row is all-zero
                    // (redundant constraint) and can stay as is.
                }
            }
        }

        // Phase 2: maximise the real objective over non-artificial columns.
        let mut zrow = vec![0.0; self.num_cols];
        for (i, &c) in self.objective.iter().enumerate() {
            zrow[i] = c;
        }
        // Price out the basic columns.
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.num_cols && zrow[b].abs() > 0.0 {
                let coef = zrow[b];
                for (z, &a) in zrow.iter_mut().zip(&self.rows[row]) {
                    *z -= coef * a;
                }
            }
        }
        match self.run_simplex(&mut zrow, self.non_artificial) {
            SimplexRun::Unbounded => return LpOutcome::Unbounded,
            SimplexRun::Optimal => {}
        }

        let mut x = vec![0.0; self.num_vars];
        for (row, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.rows[row][self.num_cols - 1];
            }
        }
        let value = self
            .objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum();
        LpOutcome::Optimal(LpSolution { x, value })
    }

    /// Runs simplex iterations on the current tableau with the given
    /// objective row, considering entering columns `< col_limit`.
    fn run_simplex(&mut self, zrow: &mut [f64], col_limit: usize) -> SimplexRun {
        loop {
            // Bland's rule: smallest-index column with positive reduced cost.
            let Some(enter) = (0..col_limit).find(|&c| zrow[c] > TOL) else {
                return SimplexRun::Optimal;
            };
            // Ratio test; Bland: among ties, smallest basis index leaves.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for row in 0..self.rows.len() {
                let a = self.rows[row][enter];
                if a > TOL {
                    let ratio = self.rows[row][self.num_cols - 1] / a;
                    if ratio < best - TOL
                        || (ratio < best + TOL
                            && leave.is_some_and(|l| self.basis[row] < self.basis[l]))
                    {
                        best = ratio;
                        leave = Some(row);
                    }
                }
            }
            let Some(leave) = leave else {
                return SimplexRun::Unbounded;
            };
            self.pivot(leave, enter);
            // Update the objective row.
            let coef = zrow[enter];
            if coef.abs() > 0.0 {
                for (z, &a) in zrow.iter_mut().zip(&self.rows[leave]) {
                    *z -= coef * a;
                }
            }
        }
    }

    /// Pivots so that column `col` becomes basic in row `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col];
        debug_assert!(pivot.abs() > TOL, "pivot too small: {pivot}");
        let inv = 1.0 / pivot;
        for v in &mut self.rows[row] {
            *v *= inv;
        }
        for r in 0..self.rows.len() {
            if r != row {
                let factor = self.rows[r][col];
                if factor.abs() > 0.0 {
                    for c in 0..self.num_cols {
                        self.rows[r][c] -= factor * self.rows[row][c];
                    }
                }
            }
        }
        self.basis[row] = col;
    }
}

enum SimplexRun {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(outcome: LpOutcome) -> LpSolution {
        match outcome {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_two_variable() {
        // max 3x + 5y s.t. x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → x=2, y=6, z=36.
        let sol = optimal(
            Simplex::maximize(vec![3.0, 5.0])
                .constraint(vec![1.0, 0.0], Relation::Le, 4.0)
                .constraint(vec![0.0, 2.0], Relation::Le, 12.0)
                .constraint(vec![3.0, 2.0], Relation::Le, 18.0)
                .solve(),
        );
        assert!((sol.value - 36.0).abs() < 1e-7);
        assert!((sol.x[0] - 2.0).abs() < 1e-7);
        assert!((sol.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraint_requires_phase1() {
        // max x + y s.t. x + y = 1, x ≤ 0.3 → y = 0.7, z = 1.
        let sol = optimal(
            Simplex::maximize(vec![1.0, 1.0])
                .constraint(vec![1.0, 1.0], Relation::Eq, 1.0)
                .constraint(vec![1.0, 0.0], Relation::Le, 0.3)
                .solve(),
        );
        assert!((sol.value - 1.0).abs() < 1e-7);
        assert!((sol.x[0] + sol.x[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraints() {
        // min x + 2y s.t. x + y ≥ 3, y ≥ 1 (as max of negative).
        let sol = optimal(
            Simplex::maximize(vec![-1.0, -2.0])
                .constraint(vec![1.0, 1.0], Relation::Ge, 3.0)
                .constraint(vec![0.0, 1.0], Relation::Ge, 1.0)
                .solve(),
        );
        // Optimal: y = 1, x = 2 → objective −4.
        assert!((sol.value + 4.0).abs() < 1e-7, "value {}", sol.value);
    }

    #[test]
    fn infeasible_detected() {
        let out = Simplex::maximize(vec![1.0])
            .constraint(vec![1.0], Relation::Le, 1.0)
            .constraint(vec![1.0], Relation::Ge, 2.0)
            .solve();
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let out = Simplex::maximize(vec![1.0, 0.0])
            .constraint(vec![0.0, 1.0], Relation::Le, 1.0)
            .solve();
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // x ≥ 0 with constraint −x ≤ −2 ⇔ x ≥ 2; max −x → x = 2.
        let sol = optimal(
            Simplex::maximize(vec![-1.0])
                .constraint(vec![-1.0], Relation::Le, -2.0)
                .solve(),
        );
        assert!((sol.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic degeneracy: multiple constraints active at the origin.
        let sol = optimal(
            Simplex::maximize(vec![0.75, -150.0, 0.02, -6.0])
                .constraint(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0)
                .constraint(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0)
                .constraint(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0)
                .solve(),
        );
        // Known optimum of Beale's cycling example: 0.05.
        assert!((sol.value - 0.05).abs() < 1e-6, "value {}", sol.value);
    }

    #[test]
    fn zero_padded_coefficients() {
        let sol = optimal(
            Simplex::maximize(vec![1.0, 1.0, 1.0])
                .constraint(vec![1.0], Relation::Le, 5.0) // padded to (1,0,0)
                .constraint(vec![0.0, 1.0, 1.0], Relation::Le, 3.0)
                .solve(),
        );
        assert!((sol.value - 8.0).abs() < 1e-7);
    }

    #[test]
    fn redundant_equalities() {
        // x + y = 1 stated twice: phase 1 must cope with the redundant row.
        let sol = optimal(
            Simplex::maximize(vec![1.0, 0.0])
                .constraint(vec![1.0, 1.0], Relation::Eq, 1.0)
                .constraint(vec![1.0, 1.0], Relation::Eq, 1.0)
                .solve(),
        );
        assert!((sol.value - 1.0).abs() < 1e-7);
    }

    #[test]
    fn random_lps_satisfy_constraints() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        let mut solved = 0;
        for _ in 0..200 {
            let n = rng.gen_range(2..5);
            let m = rng.gen_range(1..6);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut lp = Simplex::maximize(obj.clone());
            let mut cons = Vec::new();
            for _ in 0..m {
                let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let rhs = rng.gen_range(0.0..2.0);
                cons.push((coeffs.clone(), rhs));
                lp = lp.constraint(coeffs, Relation::Le, rhs);
            }
            // Keep the region bounded.
            lp = lp.constraint(vec![1.0; n], Relation::Le, 10.0);
            if let LpOutcome::Optimal(sol) = lp.solve() {
                solved += 1;
                for (coeffs, rhs) in cons {
                    let lhs: f64 = coeffs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
                    assert!(lhs <= rhs + 1e-6, "violated: {lhs} > {rhs}");
                }
                assert!(sol.x.iter().all(|&v| v >= -1e-9));
            }
        }
        assert!(solved > 150, "too few solvable random LPs: {solved}");
    }

    #[test]
    #[should_panic(expected = "objective must have variables")]
    fn empty_objective_panics() {
        let _ = Simplex::maximize(vec![]);
    }
}
