//! Linear programming substrate.
//!
//! The greedy k-RMS baselines (GREEDY [22], GEOGREEDY [23], GREEDY* [11])
//! need exact maximum-regret-ratio computations, which reduce to small
//! dense linear programs over the utility space (d + 1 variables,
//! |Q| + 1 constraints). No LP crate is available offline, so this crate
//! implements a classic **two-phase dense simplex** with Bland's pivoting
//! rule (guaranteeing termination), plus the k-RMS-specific LP
//! formulations on top of it:
//!
//! * [`regret::max_regret_lp`] — the exact worst-case 1-regret ratio of a
//!   set `Q` against a witness tuple `p` (the LP of Nanongkai et al.,
//!   PVLDB 2010).
//! * [`regret::mrr1_exact`] — exact `mrr_1(Q)` over a database by
//!   maximising the witness LP over all (skyline) tuples.
//! * [`regret::is_happy_point`] — whether a tuple is the top-1 for *some*
//!   utility vector, i.e. a vertex of the upper convex hull. This is the
//!   predicate GEOGREEDY uses to prune candidates; solving it as an LP
//!   avoids building a d-dimensional convex hull (see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regret;
mod simplex;

pub use simplex::{Constraint, LpOutcome, LpSolution, Relation, Simplex};
