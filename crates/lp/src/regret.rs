//! Regret-ratio computations as linear programs.
//!
//! For `k = 1` the maximum regret ratio of a set `Q` against a witness
//! tuple `p` has an exact LP characterisation (Nanongkai et al., PVLDB
//! 2010). Normalising `⟨u, p⟩ = 1` (the regret ratio is scale-invariant):
//!
//! ```text
//! maximize   x
//! subject to ⟨u, q⟩ ≤ 1 − x          for every q ∈ Q
//!            ⟨u, p⟩ = 1
//!            u ≥ 0, x ≥ 0
//! ```
//!
//! The optimum equals `max_u max(0, 1 − ω(u, Q) / ⟨u, p⟩)` restricted to
//! utilities that score `p` positively; maximising over all witnesses
//! `p ∈ P` yields the exact `mrr_1(Q)`.

use crate::simplex::{LpOutcome, Relation, Simplex};
use rms_geom::Point;

/// Exact worst-case 1-regret ratio of `Q` against the witness tuple `p`:
/// `max_u (1 − ω(u,Q)/⟨u,p⟩)` clamped to `[0, 1]`.
///
/// Returns 0 when `p ∈ Q` by identity of coordinates (some `q` matches `p`
/// on every attribute) or when no utility makes `p` beat all of `Q`.
pub fn max_regret_lp(p: &Point, q_set: &[Point]) -> f64 {
    let d = p.dim();
    debug_assert!(q_set.iter().all(|q| q.dim() == d));
    // Variables: u[0..d], x. Objective: maximize x.
    let mut objective = vec![0.0; d + 1];
    objective[d] = 1.0;
    let mut lp = Simplex::maximize(objective)
        .constraint(
            p.coords()
                .iter()
                .copied()
                .chain(std::iter::once(0.0))
                .collect(),
            Relation::Eq,
            1.0,
        )
        // x ≤ 1 keeps the program bounded even for empty Q.
        .constraint(
            std::iter::repeat_n(0.0, d)
                .chain(std::iter::once(1.0))
                .collect(),
            Relation::Le,
            1.0,
        );
    for q in q_set {
        // ⟨u, q⟩ + x ≤ 1
        let coeffs: Vec<f64> = q
            .coords()
            .iter()
            .copied()
            .chain(std::iter::once(1.0))
            .collect();
        lp = lp.constraint(coeffs, Relation::Le, 1.0);
    }
    match lp.solve() {
        LpOutcome::Optimal(sol) => sol.value.clamp(0.0, 1.0),
        // Infeasible: no nonnegative u with ⟨u,p⟩ = 1 (p = 0) — regret 0.
        LpOutcome::Infeasible => 0.0,
        LpOutcome::Unbounded => unreachable!("x ≤ 1 bounds the objective"),
    }
}

/// Exact maximum 1-regret ratio `mrr_1(Q)` of `Q` over the database
/// `points`, computed with one witness LP per tuple.
///
/// Callers typically pass only the skyline of `P`, since the maximum is
/// always attained at a skyline tuple.
pub fn mrr1_exact(points: &[Point], q_set: &[Point]) -> f64 {
    points
        .iter()
        .map(|p| max_regret_lp(p, q_set))
        .fold(0.0, f64::max)
}

/// Like [`mrr1_exact`], but also returns the witness tuple attaining the
/// maximum (ties broken by first occurrence). `None` on an empty database.
pub fn mrr1_witness(points: &[Point], q_set: &[Point]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in points.iter().enumerate() {
        let rr = max_regret_lp(p, q_set);
        if best.is_none_or(|(_, b)| rr > b) {
            best = Some((i, rr));
        }
    }
    best
}

/// Whether `p` is a *happy point*: the top-1 tuple for at least one
/// nonnegative utility vector, i.e. a vertex of the upper convex hull of
/// the database. GEOGREEDY restricts its candidate set to happy points.
///
/// LP formulation: maximize `x` s.t. `⟨u, p − q⟩ ≥ x` for all other `q`,
/// `Σ u_i = 1`, `u ≥ 0`. `p` is happy iff the optimum is `≥ −tol`
/// (strictly positive means uniquely optimal for some direction; zero
/// means ties, which we accept, matching the paper's consistent
/// tie-breaking).
pub fn is_happy_point(p: &Point, others: &[Point]) -> bool {
    let d = p.dim();
    // Variables: u[0..d], x (x is a *shifted* slack: x' = x + 1 ≥ 0 so that
    // slightly negative optima remain representable). We use x' ∈ [0, 2].
    let mut objective = vec![0.0; d + 1];
    objective[d] = 1.0;
    let mut lp = Simplex::maximize(objective)
        .constraint(
            std::iter::repeat_n(1.0, d)
                .chain(std::iter::once(0.0))
                .collect(),
            Relation::Eq,
            1.0,
        )
        .constraint(
            std::iter::repeat_n(0.0, d)
                .chain(std::iter::once(1.0))
                .collect(),
            Relation::Le,
            2.0,
        );
    for q in others {
        if q.id() == p.id() {
            continue;
        }
        // ⟨u, p − q⟩ − (x' − 1) ≥ 0  ⇔  ⟨u, q − p⟩ + x' ≤ 1
        let coeffs: Vec<f64> = q
            .coords()
            .iter()
            .zip(p.coords())
            .map(|(qc, pc)| qc - pc)
            .chain(std::iter::once(1.0))
            .collect();
        lp = lp.constraint(coeffs, Relation::Le, 1.0);
    }
    match lp.solve() {
        LpOutcome::Optimal(sol) => sol.value - 1.0 >= -1e-7,
        LpOutcome::Infeasible => false,
        LpOutcome::Unbounded => unreachable!("x' ≤ 2 bounds the objective"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_geom::{sample_utilities, top1, Utility};

    fn fig1() -> Vec<Point> {
        [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ]
        .iter()
        .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
        .collect()
    }

    #[test]
    fn regret_zero_when_p_in_q() {
        let db = fig1();
        let q = vec![db[0].clone(), db[3].clone()];
        assert_eq!(max_regret_lp(&db[0], &q), 0.0);
    }

    #[test]
    fn paper_example_mrr_q1() {
        // Example 1: mrr_1 of Q1 = {p3, p4} is attained at u = (0, 1) with
        // 1 − 0.5/1.0 = 0.5 (for k=1 the witness is p1 with y=1.0).
        let db = fig1();
        let q1 = vec![db[2].clone(), db[3].clone()];
        let mrr = mrr1_exact(&db, &q1);
        assert!((mrr - 0.5).abs() < 1e-6, "mrr {mrr}");
    }

    #[test]
    fn paper_example_zero_regret_set() {
        // Example 1: Q2 = {p1, p2, p4} is a (1,0)-regret set… for k=2 in
        // the paper; for k=1 the skyline also contains p3 and p7, so check
        // the true k=1 zero-regret property of the full skyline instead.
        let db = fig1();
        let sky: Vec<Point> = [1, 2, 3, 4, 7].iter().map(|&i| db[i - 1].clone()).collect();
        let mrr = mrr1_exact(&db, &sky);
        assert!(mrr < 1e-7, "skyline must have zero 1-regret, got {mrr}");
    }

    #[test]
    fn lp_matches_sampling_estimate() {
        // The LP's exact mrr must upper-bound (and closely match) a
        // Monte-Carlo estimate over many utilities.
        use rand::{rngs::StdRng, SeedableRng};
        let db = fig1();
        let q = vec![db[0].clone(), db[3].clone()]; // {p1, p4}
        let exact = mrr1_exact(&db, &q);
        let mut rng = StdRng::seed_from_u64(5);
        let est = sample_utilities(&mut rng, 2, 20_000)
            .iter()
            .map(|u| {
                let top_p = top1(&db, u).unwrap().score;
                let top_q = top1(&q, u).unwrap().score;
                ((top_p - top_q) / top_p).max(0.0)
            })
            .fold(0.0, f64::max);
        assert!(exact >= est - 1e-9, "exact {exact} < estimate {est}");
        assert!(exact - est < 0.02, "exact {exact} far from estimate {est}");
    }

    #[test]
    fn witness_is_argmax() {
        let db = fig1();
        let q = vec![db[3].clone()]; // {p4}
        let (idx, rr) = mrr1_witness(&db, &q).unwrap();
        assert!(rr > 0.0);
        let brute = mrr1_exact(&db, &q);
        assert!((rr - brute).abs() < 1e-9);
        // Witness should be p1 (the best y-tuple, regret 1 − 0.1/1.0 = 0.9).
        assert_eq!(db[idx].id(), 1);
        assert!((rr - 0.9).abs() < 1e-6);
    }

    #[test]
    fn happy_points_are_exactly_hull_vertices() {
        let db = fig1();
        // Upper-hull vertices in Fig. 1: p1 (0.2,1), p2 (0.6,0.8),
        // p4 (1,0.1). p3 (0.7,0.5) is on the skyline but below the
        // p2–p4 segment: at x=0.7, segment y = 0.8 − 0.7/0.4*(0.7−0.6)
        // = 0.625 > 0.5 ⇒ p3 is never top-1. p7 (0.3,0.9) is below the
        // p1–p2 segment (y = 0.95 at x=0.3).
        let happy: Vec<u64> = db
            .iter()
            .filter(|p| is_happy_point(p, &db))
            .map(|p| p.id())
            .collect();
        assert_eq!(happy, vec![1, 2, 4]);
    }

    #[test]
    fn happy_point_agrees_with_sampled_top1() {
        use rand::{rngs::StdRng, SeedableRng};
        let db = fig1();
        let mut rng = StdRng::seed_from_u64(11);
        let mut top_ids: Vec<u64> = sample_utilities(&mut rng, 2, 5000)
            .iter()
            .map(|u| top1(&db, u).unwrap().id)
            .collect();
        top_ids.sort_unstable();
        top_ids.dedup();
        for p in &db {
            if top_ids.contains(&p.id()) {
                assert!(is_happy_point(p, &db), "sampled top-1 {} not happy", p.id());
            }
        }
    }

    #[test]
    fn empty_q_has_full_regret() {
        let db = fig1();
        // With Q empty the LP maximum is x = 1 (clamped): total regret.
        assert_eq!(max_regret_lp(&db[0], &[]), 1.0);
    }

    #[test]
    fn basis_utilities_regret_consistency() {
        // For Q = {p4} and the y-axis utility, regret = 1 − 0.1/1.0 = 0.9;
        // LP max must be ≥ that.
        let db = fig1();
        let q = vec![db[3].clone()];
        let u = Utility::basis(2, 1);
        let top_p = top1(&db, &u).unwrap().score;
        let top_q = top1(&q, &u).unwrap().score;
        let rr = 1.0 - top_q / top_p;
        assert!(max_regret_lp(&db[0], &q) >= rr - 1e-9);
    }
}
