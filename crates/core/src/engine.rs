//! The batch update engine: amortised, sharded maintenance for streams
//! of tuple operations.
//!
//! The paper's maintenance loop (Algorithms 3–4) re-balances after
//! *every* operation: each insert/delete recomputes the affected top-k
//! results, mutates the set system one membership at a time, and runs
//! `STABILIZE` + `UPDATE-M` before the next operation may proceed. For a
//! batch of `B` operations this pays `B` stabilisation passes and — when
//! operations overlap in the utilities they touch — recomputes the same
//! top-k results up to `B` times.
//!
//! [`FdRms::apply_batch`] instead applies a whole batch in five phases:
//!
//! 1. **Validate & normalise** — the operation stream is checked against
//!    the live database (errors reject the batch *before* any mutation)
//!    and folded to its net effect: a tuple inserted and deleted within
//!    the batch touches nothing, an update whose attributes equal the
//!    stored tuple's is dropped.
//! 2. **Tuple index** — all kd-tree mutations are applied up front, so
//!    every later query sees the post-batch database.
//! 3. **Sharded recompute** — the affected utilities (the deleted and
//!    updated tuples' memberships ∪ the cone-tree hits of the written
//!    tuples) are partitioned into shards; `std::thread::scope` workers
//!    bring each utility to its post-batch state **once**, no matter how
//!    many operations touched it. A utility that lost an exact top-k
//!    member pays one branch-and-bound *requery* (amortised buffers via
//!    [`KdTree::top_k_approx_many`](rms_index::KdTree::top_k_approx_many))
//!    — the sequential path pays that per deletion.
//!    Every other affected utility updates *incrementally*, exactly like
//!    the sequential insertion path but batched: merge the cone hits into
//!    the stored top-k, recompute `τ`, scan for evictions only when `τ`
//!    rose. Workers emit membership *deltas*, not full `Φ` sets.
//! 4. **Cover transaction** — the deltas feed the set cover inside a
//!    [`begin_batch`](rms_setcover::DynamicSetCover::begin_batch)
//!    / [`commit`](rms_setcover::DynamicSetCover::commit) transaction:
//!    additions are applied before removals (so no utility transiently
//!    loses coverage) and `STABILIZE` runs once at commit, followed by
//!    one bulk cone-tree threshold repair
//!    ([`ConeTree::set_thresholds`](rms_index::ConeTree::set_thresholds)).
//! 5. **Rebalance** — `UPDATE-M` (Algorithm 4) runs once to steer the
//!    solution back to size `r`.
//!
//! The win grows with the batch size and with how expensive maintenance
//! is (deep `k`, wide ε-band, large `r` ⇒ more per-op recomputation to
//! amortise); at feather-weight settings both disciplines are bounded by
//! the shared per-written-tuple cone probe and batching only breaks
//! even. On the bench workload (`rms-bench --bin batch`, single core)
//! batches of 1 000 mixed ops run ~1.4× the sequential loop's
//! throughput, rising to ~2.4× at `k = 5, r = 100, ε = 0.1`; shard
//! parallelism adds on top on multi-core hosts.
//!
//! Because the per-utility states are canonical — fully determined by the
//! final database — the batched path reaches exactly the state that
//! [`FdRms::check_invariants`] certifies for the sequential path: same
//! top-k results, same thresholds, same set system, and a stable cover of
//! the same universe. The *solution* (which stable cover you get) may
//! differ from the sequential path's, as stable covers are not unique;
//! both carry the same `O(log m)` quality guarantee (Theorem 1).
//!
//! Single-operation batches are routed to the classic per-op path, so
//! [`FdRms::insert`], [`FdRms::delete`], and [`FdRms::update`] behave
//! exactly as before this engine existed.

use crate::algorithm::{FdRms, TopKState};
use crate::builder::FdRmsError;
use rms_geom::{Point, PointId, RankedPoint, Utility};
use rms_index::KdTree;
use rms_setcover::ElemId;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Minimum number of affected utilities a shard worker should own;
/// batches touching fewer than two shards' worth run inline.
const MIN_UTILITIES_PER_SHARD: usize = 16;

/// A single database operation in a batch (Section II-B's `Δ_t`, plus the
/// update composite the paper models as delete-then-insert).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `Δ_t = 〈p, +〉`: insert a fresh tuple.
    Insert(Point),
    /// `Δ_t = 〈p, −〉`: delete a live tuple by id.
    Delete(PointId),
    /// Replace the attributes of a live tuple (the id is kept). Updates
    /// whose attributes equal the stored tuple's are no-ops.
    Update(Point),
}

impl Op {
    /// The tuple id this operation targets.
    pub fn id(&self) -> PointId {
        match self {
            Op::Insert(p) | Op::Update(p) => p.id(),
            Op::Delete(id) => *id,
        }
    }
}

/// Per-batch instrumentation returned by [`FdRms::apply_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchReport {
    /// Operations in the submitted batch.
    pub ops: usize,
    /// Net tuples inserted (live at batch end, absent before).
    pub inserted: usize,
    /// Net tuples deleted (live before, absent at batch end).
    pub deleted: usize,
    /// Net tuples whose attributes changed.
    pub updated: usize,
    /// Updates dropped because their attributes matched the stored tuple.
    pub noop_updates: usize,
    /// Distinct utility vectors whose top-k state was recomputed.
    pub affected_utilities: usize,
    /// Affected utilities that needed a full tuple-index requery (they
    /// lost an exact top-k member); the rest updated incrementally
    /// without touching the index.
    pub requeried_utilities: usize,
    /// Shard workers used for the recompute (0 when nothing was
    /// recomputed, 1 when the batch ran inline).
    pub shards: usize,
    /// Memberships added to surviving sets (`Φ` admissions).
    pub membership_additions: u64,
    /// Memberships removed from surviving sets (`Φ` evictions).
    pub membership_removals: u64,
    /// Element moves the deferred `STABILIZE` pass performed at commit.
    pub stabilize_moves: u64,
    /// Universe size `m` after the batch.
    pub m: usize,
    /// Solution size `|Q|` after the batch.
    pub result_size: usize,
}

/// Cumulative roll-up of [`BatchReport`]s, for callers that apply many
/// batches and publish aggregate figures (the serving layer's snapshot
/// stats). [`BatchRollup::absorb`] folds one report in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchRollup {
    /// Batches absorbed.
    pub batches: u64,
    /// Total operations across absorbed batches.
    pub ops: u64,
    /// Net tuples inserted.
    pub inserted: u64,
    /// Net tuples deleted.
    pub deleted: u64,
    /// Net tuples updated.
    pub updated: u64,
    /// Updates dropped as attribute no-ops.
    pub noop_updates: u64,
    /// Total utility recomputations.
    pub affected_utilities: u64,
    /// Total full tuple-index requeries.
    pub requeried_utilities: u64,
    /// Total `Φ` admissions into surviving sets.
    pub membership_additions: u64,
    /// Total `Φ` evictions from surviving sets.
    pub membership_removals: u64,
    /// Total deferred-STABILIZE element moves.
    pub stabilize_moves: u64,
    /// Largest single batch absorbed (operation count).
    pub max_batch_ops: usize,
}

impl BatchRollup {
    /// Folds one batch's report into the aggregate.
    pub fn absorb(&mut self, r: &BatchReport) {
        self.batches += 1;
        self.ops += r.ops as u64;
        self.inserted += r.inserted as u64;
        self.deleted += r.deleted as u64;
        self.updated += r.updated as u64;
        self.noop_updates += r.noop_updates as u64;
        self.affected_utilities += r.affected_utilities as u64;
        self.requeried_utilities += r.requeried_utilities as u64;
        self.membership_additions += r.membership_additions;
        self.membership_removals += r.membership_removals;
        self.stabilize_moves += r.stabilize_moves;
        self.max_batch_ops = self.max_batch_ops.max(r.ops);
    }

    /// Folds another roll-up into this one (counters sum, high-water
    /// marks take the max) — the sharded serving layer aggregates one
    /// roll-up per shard into the published aggregate snapshot.
    pub fn merge(&mut self, other: &BatchRollup) {
        self.batches += other.batches;
        self.ops += other.ops;
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        self.updated += other.updated;
        self.noop_updates += other.noop_updates;
        self.affected_utilities += other.affected_utilities;
        self.requeried_utilities += other.requeried_utilities;
        self.membership_additions += other.membership_additions;
        self.membership_removals += other.membership_removals;
        self.stabilize_moves += other.stabilize_moves;
        self.max_batch_ops = self.max_batch_ops.max(other.max_batch_ops);
    }
}

/// One affected utility's recomputed state, produced by a shard worker:
/// the new top-k/τ plus the membership *deltas* against the pre-batch
/// set system (materialising the full `Φ` would cost `O(|Φ|)` per
/// utility where the sequential path pays `O(1)` per op in the common
/// no-threshold-change case).
struct UtilityRec {
    /// Index into the utility pool.
    idx: usize,
    /// New exact top-k against the post-batch database.
    exact: Vec<RankedPoint>,
    /// New admission threshold `τ = (1 − ε)·ω_k` (0 while `n < k`).
    tau: f64,
    /// Tuples entering `Φ` (tuples that are not yet members).
    adds: Vec<PointId>,
    /// Live tuples leaving `Φ` (current members scoring below the new
    /// τ); never contains deleted tuples — their set removal already
    /// drops every membership.
    removals: Vec<PointId>,
}

/// Shared read-only state for the shard workers (everything they need is
/// immutable during the recompute phase, so `std::thread::scope` workers
/// borrow it freely).
struct RecomputeCtx<'a> {
    kd: &'a KdTree,
    utilities: &'a [Utility],
    topk: &'a [TopKState],
    points: &'a std::collections::HashMap<PointId, Point>,
    cover: &'a rms_setcover::DynamicSetCover,
    /// Utilities that lost an exact top-k member and need a full
    /// tuple-index requery; all other affected utilities update
    /// incrementally from their stored top-k plus the cone hits.
    requery: &'a HashSet<usize>,
    /// Per-utility lists of written tuples whose score reaches the
    /// pre-batch threshold (from `ConeTree::affected_hits_many`).
    hits: &'a std::collections::HashMap<usize, Vec<PointId>>,
    /// Per-utility lists of updated member tuples (their new attributes
    /// may have dropped them below an unchanged threshold).
    moved: &'a std::collections::HashMap<usize, Vec<PointId>>,
    /// Tuples deleted by the batch (excluded from eviction deltas).
    dead: &'a HashSet<PointId>,
    k: usize,
    eps: f64,
}

/// Recomputes one shard of affected utilities against the (post-batch)
/// database.
///
/// Requery utilities (an exact top-k member was deleted or updated away)
/// pay one branch-and-bound query each, with amortised buffers via
/// `top_k_approx_many` — once per *batch*, where the sequential path
/// pays once per deletion touching the utility. Incremental utilities
/// mirror the sequential insertion path, batched: merge the cone hits
/// into the stored exact top-k, recompute τ, and scan the membership for
/// evictions *only when τ rose* — plus a rescore of just the updated
/// members, whose new attributes may fall below an unchanged τ.
fn recompute_shard(ctx: &RecomputeCtx<'_>, idxs: &[usize]) -> Vec<UtilityRec> {
    let requery_idxs: Vec<usize> = idxs
        .iter()
        .copied()
        .filter(|i| ctx.requery.contains(i))
        .collect();
    let mut requeried = ctx
        .kd
        .top_k_approx_many(
            requery_idxs.iter().map(|&i| &ctx.utilities[i]),
            ctx.k,
            ctx.eps,
        )
        .into_iter()
        .zip(&requery_idxs)
        .map(|((phi, omega), &idx)| {
            // Deltas against the current membership.
            let tau = omega.map_or(0.0, |w| (1.0 - ctx.eps) * w);
            let adds: Vec<PointId> = phi
                .iter()
                .map(|rp| rp.id)
                .filter(|&pid| !ctx.cover.set_contains(pid, idx as ElemId))
                .collect();
            let new_set: HashSet<PointId> = phi.iter().map(|rp| rp.id).collect();
            let mut removals: Vec<PointId> = ctx
                .cover
                .sets_containing(idx as ElemId)
                .map(|sets| {
                    sets.iter()
                        .copied()
                        .filter(|pid| !new_set.contains(pid) && !ctx.dead.contains(pid))
                        .collect()
                })
                .unwrap_or_default();
            removals.sort_unstable();
            let mut exact = phi;
            exact.truncate(ctx.k);
            UtilityRec {
                idx,
                exact,
                tau,
                adds,
                removals,
            }
        });

    let mut out = Vec::with_capacity(idxs.len());
    for &idx in idxs {
        if ctx.requery.contains(&idx) {
            out.push(requeried.next().expect("one rec per requery utility"));
            continue;
        }
        let u = &ctx.utilities[idx];
        let st = &ctx.topk[idx];
        let tau_old = st.tau;
        // Merge the hits into the stored exact top-k. Hits are written
        // tuples clearing the old threshold — the only possible new
        // entrants (a threshold can only rise here, and any tuple
        // entering the exact top-k must clear the old τ). Updated tuples
        // in the old exact top-k are requery class, so the stored
        // entries are all live with unchanged attributes.
        let mut exact = st.exact.clone();
        let empty = Vec::new();
        let hits = ctx.hits.get(&idx).unwrap_or(&empty);
        let mut scored_hits: Vec<RankedPoint> = hits
            .iter()
            .map(|pid| RankedPoint {
                id: *pid,
                score: u.score(&ctx.points[pid]),
            })
            .collect();
        scored_hits.sort_unstable_by(|a, b| {
            if crate::algorithm::rank_before(a.score, a.id, b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        for rp in &scored_hits {
            let enters = exact.len() < ctx.k
                || crate::algorithm::rank_before(rp.score, rp.id, &exact[exact.len() - 1]);
            if enters {
                let pos =
                    exact.partition_point(|e| crate::algorithm::rank_before(e.score, e.id, rp));
                exact.insert(pos, rp.clone());
                exact.truncate(ctx.k);
            }
        }
        let tau = if exact.len() < ctx.k {
            0.0
        } else {
            (1.0 - ctx.eps) * exact[ctx.k - 1].score
        };
        debug_assert!(tau >= tau_old - 1e-12, "incremental τ fell");

        // Admissions: hits clearing the new threshold that are not yet
        // members (a hit below the risen τ sat only in the old band).
        let adds: Vec<PointId> = scored_hits
            .iter()
            .take_while(|rp| rp.score >= tau)
            .map(|rp| rp.id)
            .filter(|&pid| !ctx.cover.set_contains(pid, idx as ElemId))
            .collect();

        // Evictions: when τ rose, any member may have fallen below it;
        // otherwise only updated members can have dropped out.
        let mut removals: Vec<PointId> = Vec::new();
        if tau > tau_old {
            if let Some(sets) = ctx.cover.sets_containing(idx as ElemId) {
                for &pid in sets {
                    if let Some(p) = ctx.points.get(&pid) {
                        if u.score(p) < tau {
                            removals.push(pid);
                        }
                    }
                }
            }
            removals.sort_unstable();
        } else if let Some(moved) = ctx.moved.get(&idx) {
            for &pid in moved {
                if let Some(p) = ctx.points.get(&pid) {
                    if u.score(p) < tau {
                        removals.push(pid);
                    }
                }
            }
        }
        out.push(UtilityRec {
            idx,
            exact,
            tau,
            adds,
            removals,
        });
    }
    out
}

impl FdRms {
    /// Applies a batch of operations atomically-on-error and re-balances
    /// the result once at the end.
    ///
    /// Operations apply in order, so `[Insert(p), Delete(p.id())]` is
    /// valid and nets out to nothing. If any operation is invalid against
    /// the state the preceding operations produce (duplicate insert,
    /// unknown delete/update, wrong dimensionality), the error is
    /// returned and **no** mutation is applied.
    ///
    /// A batch of one routes to the classic per-operation path; larger
    /// batches take the sharded, deferred-stabilisation path described in
    /// the [module docs](crate::engine).
    ///
    /// ```
    /// use fdrms::{FdRms, Op};
    /// use rms_geom::Point;
    ///
    /// let points: Vec<Point> = (0..100)
    ///     .map(|i| Point::new(i, vec![(i as f64) / 100.0, 1.0 - (i as f64) / 100.0]).unwrap())
    ///     .collect();
    /// let mut fd = FdRms::builder(2).r(4).max_utilities(128).build(points).unwrap();
    /// let report = fd
    ///     .apply_batch(vec![
    ///         Op::Insert(Point::new(500, vec![0.9, 0.9]).unwrap()),
    ///         Op::Delete(0),
    ///         Op::Update(Point::new(1, vec![0.5, 0.6]).unwrap()),
    ///     ])
    ///     .unwrap();
    /// assert_eq!((report.inserted, report.deleted, report.updated), (1, 1, 1));
    /// assert!(fd.result().len() <= 4);
    /// ```
    pub fn apply_batch(&mut self, ops: Vec<Op>) -> Result<BatchReport, FdRmsError> {
        if ops.len() == 1 {
            let op = ops.into_iter().next().expect("length checked");
            return self.apply_single(op);
        }
        self.apply_batch_inner(&ops)
    }

    /// [`FdRms::apply_batch`] over borrowed operations, for callers that
    /// must retain the batch (the serving layer keeps it to replay
    /// atomically rejected batches per-op). The batched path never
    /// needed ownership — validation clones each written tuple into the
    /// overlay anyway — so this costs nothing extra; only the single-op
    /// routing clones its one operation.
    pub fn apply_batch_slice(&mut self, ops: &[Op]) -> Result<BatchReport, FdRmsError> {
        if ops.len() == 1 {
            return self.apply_single(ops[0].clone());
        }
        self.apply_batch_inner(ops)
    }

    fn apply_batch_inner(&mut self, ops: &[Op]) -> Result<BatchReport, FdRmsError> {
        let mut report = BatchReport {
            ops: ops.len(),
            ..BatchReport::default()
        };

        // ------------------------------------------------------------
        // Phase 1: validate against the rolling overlay; no mutation
        // happens until the whole batch has passed.
        // ------------------------------------------------------------
        let mut overlay: BTreeMap<PointId, Option<Point>> = BTreeMap::new();
        let mut op_count = 0u64;
        for op in ops {
            let live = |id: &PointId, overlay: &BTreeMap<PointId, Option<Point>>| {
                overlay
                    .get(id)
                    .map_or_else(|| self.points.contains_key(id), Option::is_some)
            };
            match op {
                Op::Insert(p) => {
                    if p.dim() != self.d {
                        return Err(FdRmsError::DimensionMismatch {
                            expected: self.d,
                            got: p.dim(),
                        });
                    }
                    if live(&p.id(), &overlay) {
                        return Err(FdRmsError::DuplicateId(p.id()));
                    }
                    overlay.insert(p.id(), Some(p.clone()));
                    op_count += 1;
                }
                Op::Delete(id) => {
                    if !live(id, &overlay) {
                        return Err(FdRmsError::UnknownId(*id));
                    }
                    overlay.insert(*id, None);
                    op_count += 1;
                }
                Op::Update(p) => {
                    // Dimension before id-existence, matching `Op::Insert`:
                    // the error a malformed op yields must not depend on
                    // the verb.
                    if p.dim() != self.d {
                        return Err(FdRmsError::DimensionMismatch {
                            expected: self.d,
                            got: p.dim(),
                        });
                    }
                    let stored = match overlay.get(&p.id()) {
                        Some(o) => o.as_ref(),
                        None => self.points.get(&p.id()),
                    };
                    let Some(stored) = stored else {
                        return Err(FdRmsError::UnknownId(p.id()));
                    };
                    if stored.coords() == p.coords() {
                        report.noop_updates += 1;
                    } else {
                        overlay.insert(p.id(), Some(p.clone()));
                        // An update is a delete + an insert (Section II-B).
                        op_count += 2;
                    }
                }
            }
        }

        // Net effect versus the pre-batch database. `overlay` is a
        // BTreeMap, so all downstream iteration is id-ordered and the
        // batch is deterministic regardless of thread count.
        let mut net_insert: Vec<Point> = Vec::new();
        let mut net_update: Vec<Point> = Vec::new();
        let mut net_delete: Vec<PointId> = Vec::new();
        for (id, fin) in &overlay {
            match (fin, self.points.get(id)) {
                (Some(p), None) => net_insert.push(p.clone()),
                (Some(p), Some(old)) => {
                    if old.coords() != p.coords() {
                        net_update.push(p.clone());
                    }
                }
                (None, Some(_)) => net_delete.push(*id),
                // Inserted and deleted within the batch: transient, no
                // effect on the final state.
                (None, None) => {}
            }
        }
        self.ops += op_count;
        self.stats.batches += 1;
        report.inserted = net_insert.len();
        report.updated = net_update.len();
        report.deleted = net_delete.len();
        if net_insert.is_empty() && net_update.is_empty() && net_delete.is_empty() {
            report.m = self.m;
            report.result_size = self.cover.solution_size();
            return Ok(report);
        }

        // ------------------------------------------------------------
        // Phase 2: affected utilities, then all tuple-index mutations.
        //
        // A utility's state can only change if (a) it loses a pre-batch
        // `Φ` member — then it appears in that tuple's membership list —
        // or (b) it admits a written tuple — then the tuple's score
        // reaches its pre-batch threshold and the batched cone probe
        // reports it (a threshold can only have risen if some written
        // tuple already cleared the pre-batch value). The union is a
        // sound over-approximation; over-reported utilities recompute to
        // their unchanged state.
        // ------------------------------------------------------------
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        let dead_or_moved: HashSet<PointId> = net_delete
            .iter()
            .copied()
            .chain(net_update.iter().map(Point::id))
            .collect();
        for id in &net_delete {
            if let Some(members) = self.cover.members(*id) {
                affected.extend(members.iter().map(|&u| u as usize));
            }
        }
        // Updated members additionally feed per-utility "moved" lists:
        // their new attributes may fall below an unchanged threshold, so
        // the incremental path must rescore exactly them. (`net_update`
        // iterates in id order — the lists are deterministic.)
        let mut moved_members: std::collections::HashMap<usize, Vec<PointId>> =
            std::collections::HashMap::new();
        for p in &net_update {
            if let Some(members) = self.cover.members(p.id()) {
                for &u in members {
                    affected.insert(u as usize);
                    moved_members.entry(u as usize).or_default().push(p.id());
                }
            }
        }
        // Cone-tree probes for all written tuples (individually pruned,
        // shared traversal buffers), keeping the per-utility hit lists
        // for the incremental update path. Hit indices are relative to
        // the `net_insert ++ net_update` order.
        let written: Vec<&Point> = net_insert.iter().chain(net_update.iter()).collect();
        let mut hit_lists: std::collections::HashMap<usize, Vec<PointId>> =
            std::collections::HashMap::new();
        for (idx, hits) in self.cone.affected_hits_many(written.iter().copied()) {
            affected.insert(idx);
            hit_lists.insert(idx, hits.into_iter().map(|i| written[i].id()).collect());
        }
        // Utilities that lost an exact top-k member must requery the
        // tuple index; everything else updates incrementally.
        let requery: HashSet<usize> = affected
            .iter()
            .copied()
            .filter(|&i| {
                self.topk[i]
                    .exact
                    .iter()
                    .any(|e| dead_or_moved.contains(&e.id))
            })
            .collect();

        // All mutations go through the deferred-delete path so the lazy
        // rebuild is decided once per batch — after the inserts, so a
        // triggered rebuild packs the post-batch database.
        for id in &net_delete {
            self.kd.delete_deferred(*id).expect("validated live");
            self.points.remove(id);
        }
        for p in &net_update {
            self.kd.delete_deferred(p.id()).expect("validated live");
            self.kd.insert(p.clone()).expect("id just freed");
            self.points.insert(p.id(), p.clone());
        }
        for p in &net_insert {
            self.kd.insert(p.clone()).expect("validated fresh");
            self.points.insert(p.id(), p.clone());
        }
        self.kd.maybe_rebuild();

        // ------------------------------------------------------------
        // Phase 3: recompute every affected utility once, sharded.
        // ------------------------------------------------------------
        let idxs: Vec<usize> = affected.iter().copied().collect();
        let dead_ids: HashSet<PointId> = net_delete.iter().copied().collect();
        report.affected_utilities = idxs.len();
        report.requeried_utilities = requery.len();
        self.stats.affected_utilities += idxs.len() as u64;
        let recs: Vec<UtilityRec> = if self.points.is_empty() {
            Vec::new()
        } else {
            self.stats.topk_requeries += requery.len() as u64;
            let ctx = RecomputeCtx {
                kd: &self.kd,
                utilities: &self.utilities,
                topk: &self.topk,
                points: &self.points,
                cover: &self.cover,
                requery: &requery,
                hits: &hit_lists,
                moved: &moved_members,
                dead: &dead_ids,
                k: self.k,
                eps: self.eps,
            };
            let shards = self
                .batch_threads
                .max(1)
                .min(idxs.len().div_ceil(MIN_UTILITIES_PER_SHARD))
                .max(1);
            report.shards = shards;
            if shards == 1 {
                recompute_shard(&ctx, &idxs)
            } else {
                let ctx = &ctx;
                let chunk = idxs.len().div_ceil(shards);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = idxs
                        .chunks(chunk)
                        .map(|c| scope.spawn(move || recompute_shard(ctx, c)))
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                })
            }
        };

        // ------------------------------------------------------------
        // Phase 4: one set-cover transaction over the membership deltas.
        // ------------------------------------------------------------
        let new_ids: HashSet<PointId> = net_insert.iter().map(Point::id).collect();
        self.cover.begin_batch();
        // (a) Register the new tuples' sets, with their full post-batch
        // memberships, before any removal: utilities never transiently
        // lose their last covering set.
        let mut new_memberships: BTreeMap<PointId, Vec<ElemId>> =
            net_insert.iter().map(|p| (p.id(), Vec::new())).collect();
        for r in &recs {
            for pid in &r.adds {
                if new_ids.contains(pid) {
                    new_memberships
                        .get_mut(pid)
                        .expect("Φ members are live tuples")
                        .push(r.idx as ElemId);
                }
            }
        }
        for p in &net_insert {
            self.cover
                .insert_set(p.id(), new_memberships.remove(&p.id()).unwrap_or_default())
                .expect("validated fresh ids");
        }
        // (b) Admissions into surviving sets, then (c) evictions.
        for r in &recs {
            let u = r.idx as ElemId;
            for pid in &r.adds {
                if !new_ids.contains(pid) {
                    self.cover
                        .add_to_set(u, *pid)
                        .expect("surviving sets exist");
                    report.membership_additions += 1;
                }
            }
            for pid in &r.removals {
                let kept = self
                    .cover
                    .remove_from_set(u, *pid)
                    .expect("surviving sets exist");
                debug_assert!(
                    kept || r.idx >= self.m,
                    "universe element lost its last set mid-batch"
                );
                report.membership_removals += 1;
            }
        }
        // (d) Retire the deleted tuples' sets; orphaned elements are
        // reassigned, and drops only happen when the database emptied.
        for id in &net_delete {
            let dropped = self
                .cover
                .remove_set(*id)
                .expect("set registered at insert");
            for u in dropped {
                debug_assert!(self.points.is_empty(), "drop with nonempty database");
                self.pending.insert(u);
            }
        }
        // (e) Commit: one STABILIZE pass over the accumulated worklist.
        report.stabilize_moves = self.cover.commit();
        self.stats.evictions += report.membership_removals;
        self.stats.admissions += report.membership_additions;

        // New top-k states and one bulk threshold repair on the cone tree.
        let taus: Vec<(usize, f64)> = recs.iter().map(|r| (r.idx, r.tau)).collect();
        for r in recs {
            self.topk[r.idx] = TopKState {
                exact: r.exact,
                tau: r.tau,
            };
        }
        self.cone.set_thresholds(taus);

        // ------------------------------------------------------------
        // Phase 5: rebalance once.
        // ------------------------------------------------------------
        if self.points.is_empty() {
            for i in 0..self.cap_m {
                self.topk[i] = TopKState::default();
            }
            self.cone.set_thresholds((0..self.cap_m).map(|i| (i, 0.0)));
        } else {
            self.readmit_pending();
            if self.cover.solution_size() != self.r {
                self.update_m();
            }
        }
        report.m = self.m;
        report.result_size = self.cover.solution_size();
        Ok(report)
    }

    /// Routes a one-operation batch to the classic per-op maintenance
    /// path (Algorithm 3), derived report included.
    fn apply_single(&mut self, op: Op) -> Result<BatchReport, FdRmsError> {
        let before_stats = self.stats;
        let before_moves = self.cover.stabilize_moves();
        let mut report = BatchReport {
            ops: 1,
            ..BatchReport::default()
        };
        match op {
            Op::Insert(p) => {
                self.insert_one(&p)?;
                report.inserted = 1;
            }
            Op::Delete(id) => {
                self.delete_one(id)?;
                report.deleted = 1;
            }
            Op::Update(p) => {
                if self.update_one(&p)? {
                    report.updated = 1;
                } else {
                    report.noop_updates = 1;
                }
            }
        }
        report.shards = 1;
        report.affected_utilities =
            (self.stats.affected_utilities - before_stats.affected_utilities) as usize;
        report.requeried_utilities =
            (self.stats.topk_requeries - before_stats.topk_requeries) as usize;
        report.membership_additions = self.stats.admissions - before_stats.admissions;
        report.membership_removals = self.stats.evictions - before_stats.evictions;
        report.stabilize_moves = self.cover.stabilize_moves() - before_moves;
        report.m = self.m;
        report.result_size = self.cover.solution_size();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    fn builder(d: usize) -> crate::FdRmsBuilder {
        FdRms::builder(d).r(4).max_utilities(128).seed(5)
    }

    /// Random op stream over a live-id tracker: inserts of fresh ids,
    /// deletes and updates of live ids.
    fn random_ops(
        rng: &mut StdRng,
        live: &mut Vec<PointId>,
        next: &mut PointId,
        n: usize,
        d: usize,
    ) -> Vec<Op> {
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let coords: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
            match rng.gen_range(0..4) {
                0 | 1 => {
                    ops.push(Op::Insert(Point::new_unchecked(*next, coords)));
                    live.push(*next);
                    *next += 1;
                }
                2 if !live.is_empty() => {
                    let idx = rng.gen_range(0..live.len());
                    ops.push(Op::Delete(live.swap_remove(idx)));
                }
                _ if !live.is_empty() => {
                    let id = live[rng.gen_range(0..live.len())];
                    ops.push(Op::Update(Point::new_unchecked(id, coords)));
                }
                _ => {
                    ops.push(Op::Insert(Point::new_unchecked(*next, coords)));
                    live.push(*next);
                    *next += 1;
                }
            }
        }
        ops
    }

    #[test]
    fn batch_reaches_canonical_state() {
        let pts = random_points(1, 120, 3);
        let mut fd = builder(3).build(pts.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut live: Vec<PointId> = pts.iter().map(|p| p.id()).collect();
        let mut next = 10_000u64;
        for round in 0..6 {
            let ops = random_ops(&mut rng, &mut live, &mut next, 50, 3);
            let report = fd.apply_batch(ops).unwrap();
            assert!(report.result_size <= 4);
            fd.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(fd.len(), live.len(), "round {round}");
        }
    }

    #[test]
    fn batch_matches_sequential_database_and_invariants() {
        let pts = random_points(3, 80, 3);
        let mut seq = builder(3).build(pts.clone()).unwrap();
        let mut bat = builder(3).build(pts.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut live: Vec<PointId> = pts.iter().map(|p| p.id()).collect();
        let mut next = 10_000u64;
        let ops = random_ops(&mut rng, &mut live, &mut next, 120, 3);
        for op in &ops {
            match op.clone() {
                Op::Insert(p) => seq.insert(p).unwrap(),
                Op::Delete(id) => seq.delete(id).unwrap(),
                Op::Update(p) => seq.update(p).unwrap(),
            }
        }
        bat.apply_batch(ops).unwrap();
        seq.check_invariants().unwrap();
        bat.check_invariants().unwrap();
        assert_eq!(seq.len(), bat.len());
        assert_eq!(seq.result().len(), bat.result().len());
    }

    #[test]
    fn thread_counts_agree() {
        let pts = random_points(5, 100, 3);
        let mut one = builder(3).batch_threads(1).build(pts.clone()).unwrap();
        let mut many = builder(3).batch_threads(8).build(pts.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut live: Vec<PointId> = pts.iter().map(|p| p.id()).collect();
        let mut next = 50_000u64;
        let ops = random_ops(&mut rng, &mut live, &mut next, 150, 3);
        let r1 = one.apply_batch(ops.clone()).unwrap();
        let r2 = many.apply_batch(ops).unwrap();
        one.check_invariants().unwrap();
        many.check_invariants().unwrap();
        assert_eq!(one.result_ids(), many.result_ids());
        assert_eq!(r1.affected_utilities, r2.affected_utilities);
        assert_eq!(r1.membership_additions, r2.membership_additions);
        assert_eq!(r1.membership_removals, r2.membership_removals);
        assert!(r2.shards >= r1.shards);
    }

    #[test]
    fn failed_batch_mutates_nothing() {
        let pts = random_points(7, 40, 2);
        let mut fd = builder(2).build(pts).unwrap();
        let before_ids = fd.result_ids();
        let before_ops = fd.operations();
        // Fails on the last op: id 9999 is not live.
        let err = fd
            .apply_batch(vec![
                Op::Insert(Point::new_unchecked(1_000, vec![0.7, 0.7])),
                Op::Delete(0),
                Op::Delete(9_999),
            ])
            .unwrap_err();
        assert_eq!(err, FdRmsError::UnknownId(9_999));
        assert_eq!(fd.result_ids(), before_ids);
        assert_eq!(fd.operations(), before_ops);
        assert_eq!(fd.len(), 40);
        fd.check_invariants().unwrap();

        // In-batch duplicate insert and dimension errors are also atomic.
        let err = fd
            .apply_batch(vec![
                Op::Insert(Point::new_unchecked(2_000, vec![0.1, 0.2])),
                Op::Insert(Point::new_unchecked(2_000, vec![0.3, 0.4])),
            ])
            .unwrap_err();
        assert_eq!(err, FdRmsError::DuplicateId(2_000));
        let err = fd
            .apply_batch(vec![
                Op::Delete(1),
                Op::Update(Point::new_unchecked(2, vec![0.1])),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            FdRmsError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(fd.len(), 40);
        fd.check_invariants().unwrap();
    }

    #[test]
    fn validation_precedence_is_uniform_across_verbs() {
        // A mixed bad op — wrong dimension AND unknown/duplicate id —
        // must yield the same error class regardless of verb: dimension
        // is checked first, on the batched and the single-op path alike.
        let pts = random_points(15, 30, 2);
        let mut fd = builder(2).build(pts).unwrap();
        let dim_err = FdRmsError::DimensionMismatch {
            expected: 2,
            got: 3,
        };
        // Unknown id + wrong dimension.
        let bad_unknown = Point::new_unchecked(9_999, vec![0.1, 0.2, 0.3]);
        // Live id (update) / duplicate id (insert) + wrong dimension.
        let bad_live = Point::new_unchecked(0, vec![0.1, 0.2, 0.3]);
        for op in [
            Op::Insert(bad_unknown.clone()),
            Op::Insert(bad_live.clone()),
            Op::Update(bad_unknown),
            Op::Update(bad_live),
        ] {
            // Batched path (a companion op forces the multi-op route).
            assert_eq!(
                fd.apply_batch(vec![Op::Delete(1), op.clone()]).unwrap_err(),
                dim_err,
                "batched {op:?}"
            );
            // Single-op path.
            assert_eq!(
                fd.apply_batch(vec![op.clone()]).unwrap_err(),
                dim_err,
                "single {op:?}"
            );
        }
        assert_eq!(fd.len(), 30, "failed validation must not mutate");
        fd.check_invariants().unwrap();
    }

    #[test]
    fn transient_tuples_are_normalised_away() {
        let pts = random_points(9, 50, 2);
        let mut fd = builder(2).build(pts).unwrap();
        let report = fd
            .apply_batch(vec![
                Op::Insert(Point::new_unchecked(100, vec![0.99, 0.99])),
                Op::Update(Point::new_unchecked(100, vec![0.98, 0.97])),
                Op::Delete(100),
                Op::Insert(Point::new_unchecked(101, vec![0.5, 0.5])),
            ])
            .unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 0);
        assert_eq!(report.updated, 0);
        assert!(fd.contains(101));
        assert!(!fd.contains(100));
        fd.check_invariants().unwrap();
    }

    #[test]
    fn in_batch_delete_then_reinsert_is_an_update() {
        let pts = random_points(10, 50, 2);
        let mut fd = builder(2).build(pts).unwrap();
        let report = fd
            .apply_batch(vec![
                Op::Delete(3),
                Op::Insert(Point::new_unchecked(3, vec![1.0, 1.0])),
                Op::Insert(Point::new_unchecked(777, vec![0.2, 0.9])),
            ])
            .unwrap();
        assert_eq!(report.updated, 1);
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 0);
        fd.check_invariants().unwrap();
        assert!(fd.result_ids().contains(&3), "dominating update must win");
    }

    #[test]
    fn noop_updates_short_circuit() {
        let pts = random_points(11, 30, 2);
        let mut fd = builder(2).build(pts.clone()).unwrap();
        let requeries_before = fd.stats().topk_requeries;
        // Batched no-op updates.
        let report = fd
            .apply_batch(vec![Op::Update(pts[0].clone()), Op::Update(pts[1].clone())])
            .unwrap();
        assert_eq!(report.noop_updates, 2);
        assert_eq!(report.affected_utilities, 0);
        // Single-op routed no-op update.
        fd.update(pts[2].clone()).unwrap();
        assert_eq!(fd.stats().topk_requeries, requeries_before);
        assert_eq!(fd.operations(), 0, "no-ops do not count as operations");
        fd.check_invariants().unwrap();
    }

    #[test]
    fn batch_drains_to_empty_and_refills() {
        let pts = random_points(13, 25, 2);
        let mut fd = builder(2).build(pts.clone()).unwrap();
        let drain: Vec<Op> = pts.iter().map(|p| Op::Delete(p.id())).collect();
        let report = fd.apply_batch(drain).unwrap();
        assert_eq!(report.deleted, 25);
        assert!(fd.is_empty());
        assert!(fd.result().is_empty());
        fd.check_invariants().unwrap();
        let refill: Vec<Op> = pts.iter().map(|p| Op::Insert(p.clone())).collect();
        fd.apply_batch(refill).unwrap();
        fd.check_invariants().unwrap();
        assert_eq!(fd.len(), 25);
        assert!(!fd.result().is_empty());
    }

    #[test]
    fn batch_into_empty_instance() {
        let mut fd = builder(2).build(Vec::new()).unwrap();
        let ops: Vec<Op> = (0..30)
            .map(|i| {
                Op::Insert(Point::new_unchecked(
                    i,
                    vec![(i as f64) / 30.0, 1.0 - (i as f64) / 30.0],
                ))
            })
            .collect();
        let report = fd.apply_batch(ops).unwrap();
        assert_eq!(report.inserted, 30);
        fd.check_invariants().unwrap();
        assert!(!fd.result().is_empty());
        assert!(fd.result().len() <= 4);
    }

    #[test]
    fn empty_batch_is_noop() {
        let pts = random_points(15, 20, 2);
        let mut fd = builder(2).build(pts).unwrap();
        let before = fd.result_ids();
        let report = fd.apply_batch(Vec::new()).unwrap();
        assert_eq!(report.ops, 0);
        assert_eq!(fd.result_ids(), before);
        fd.check_invariants().unwrap();
    }

    #[test]
    fn report_counters_are_consistent() {
        let pts = random_points(17, 90, 3);
        let mut fd = builder(3).build(pts).unwrap();
        let mut rng = StdRng::seed_from_u64(18);
        let ops: Vec<Op> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    Op::Insert(Point::new_unchecked(
                        1_000 + i,
                        (0..3).map(|_| rng.gen()).collect(),
                    ))
                } else {
                    Op::Delete(i / 2)
                }
            })
            .collect();
        let report = fd.apply_batch(ops).unwrap();
        assert_eq!(report.ops, 40);
        assert_eq!(report.inserted, 20);
        assert_eq!(report.deleted, 20);
        assert!(report.affected_utilities > 0);
        assert!(report.shards >= 1);
        assert_eq!(report.result_size, fd.result().len());
        assert_eq!(report.m, fd.m());
        assert_eq!(fd.stats().batches, 1);
        assert_eq!(fd.operations(), 40);
    }

    #[test]
    fn op_accessors() {
        let p = Point::new_unchecked(7, vec![0.1, 0.2]);
        assert_eq!(Op::Insert(p.clone()).id(), 7);
        assert_eq!(Op::Update(p).id(), 7);
        assert_eq!(Op::Delete(9).id(), 9);
    }
}
