//! The FD-RMS maintenance algorithm (Algorithms 2–4 of the paper).

use crate::builder::{FdRmsBuilder, FdRmsError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::{with_basis_prefix, Point, PointId, RankedPoint, Utility};
use rms_index::{ConeTree, KdTree};
use rms_setcover::{DynamicSetCover, ElemId};
use std::collections::{BTreeSet, HashMap};

/// Per-utility top-k maintenance state.
///
/// `exact` holds the exact top-k ranking (descending score, id-ascending
/// tie-break), `tau = (1 − ε)·ω_k` is the admission threshold of the
/// ε-approximate result `Φ_{k,ε}`; while fewer than `k` tuples exist the
/// threshold is 0 and `Φ` is the whole database.
#[derive(Debug, Clone, Default)]
pub(crate) struct TopKState {
    pub(crate) exact: Vec<RankedPoint>,
    pub(crate) tau: f64,
}

impl TopKState {
    fn recompute_tau(&mut self, k: usize, eps: f64) {
        self.tau = if self.exact.len() < k {
            0.0
        } else {
            (1.0 - eps) * self.exact[k - 1].score
        };
    }
}

/// Descending-score, ascending-id ordering used by the exact top-k lists.
#[inline]
pub(crate) fn rank_before(a_score: f64, a_id: PointId, b: &RankedPoint) -> bool {
    match a_score.partial_cmp(&b.score).expect("finite scores") {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a_id < b.id,
    }
}

/// Fully dynamic k-RMS maintenance (see the crate docs for the scheme).
///
/// Single-tuple mutations ([`FdRms::insert`], [`FdRms::delete`],
/// [`FdRms::update`]) are routed through the batch update engine in
/// [`crate::engine`] as one-operation batches; multi-operation batches go
/// through [`FdRms::apply_batch`], which shards the affected utility
/// recomputation across threads and defers set-cover stabilisation to one
/// pass per batch.
#[derive(Debug)]
pub struct FdRms {
    pub(crate) d: usize,
    pub(crate) k: usize,
    pub(crate) r: usize,
    pub(crate) eps: f64,
    /// Upper bound `M` on the universe size.
    pub(crate) cap_m: usize,
    /// Current number of utility vectors in the set-cover universe.
    pub(crate) m: usize,
    pub(crate) utilities: Vec<Utility>,
    pub(crate) topk: Vec<TopKState>,
    pub(crate) kd: KdTree,
    pub(crate) cone: ConeTree,
    pub(crate) cover: DynamicSetCover,
    pub(crate) points: HashMap<PointId, Point>,
    /// Universe indices `< m` that were dropped as uncoverable (only
    /// possible while the database is empty); re-admitted on insertion.
    pub(crate) pending: BTreeSet<ElemId>,
    /// Operation counter (diagnostics).
    pub(crate) ops: u64,
    /// Per-structure instrumentation.
    pub(crate) stats: UpdateStats,
    /// Worker-thread budget for [`FdRms::apply_batch`] shard recomputes.
    pub(crate) batch_threads: usize,
}

/// Cumulative instrumentation counters exposed for the ablation benches
/// and for production observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Multi-operation batches applied through the engine's batched path
    /// (single-operation batches are routed to the classic per-op path
    /// and do not count).
    pub batches: u64,
    /// Total utility vectors whose top-k result changed (`Σ u(Δ_t)` in the
    /// paper's complexity analysis).
    pub affected_utilities: u64,
    /// Total tuples evicted from some `Φ_{k,ε}` because a threshold rose.
    pub evictions: u64,
    /// Total tuples admitted into some `Φ_{k,ε}` because a threshold fell.
    pub admissions: u64,
    /// Exact top-k re-queries issued against the tuple index.
    pub topk_requeries: u64,
    /// Times UPDATE-M grew the universe.
    pub m_grow_steps: u64,
    /// Times UPDATE-M shrank the universe.
    pub m_shrink_steps: u64,
}

impl FdRms {
    /// Starts building an FD-RMS instance over `d`-dimensional tuples.
    pub fn builder(d: usize) -> FdRmsBuilder {
        FdRmsBuilder::new(d)
    }

    // ------------------------------------------------------------------
    // Algorithm 2: INITIALIZATION
    // ------------------------------------------------------------------

    pub(crate) fn initialize(cfg: &FdRmsBuilder, initial: Vec<Point>) -> Result<Self, FdRmsError> {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let utilities = with_basis_prefix(&mut rng, cfg.d, cfg.max_utilities);
        let points: HashMap<_, _> = initial.iter().map(|p| (p.id(), p.clone())).collect();
        let mut memberships: HashMap<PointId, Vec<ElemId>> =
            initial.iter().map(|p| (p.id(), Vec::new())).collect();
        let kd = KdTree::build(cfg.d, initial).map_err(|e| match e {
            rms_index::KdTreeError::DuplicateId(id) => FdRmsError::DuplicateId(id),
            rms_index::KdTreeError::DimensionMismatch { expected, got } => {
                FdRmsError::DimensionMismatch { expected, got }
            }
            rms_index::KdTreeError::UnknownId(id) => FdRmsError::UnknownId(id),
        })?;
        let cone = ConeTree::build(utilities.clone());
        let mut fd = Self {
            d: cfg.d,
            k: cfg.k,
            r: cfg.r,
            eps: cfg.epsilon,
            cap_m: cfg.max_utilities,
            m: cfg.r,
            utilities,
            topk: vec![TopKState::default(); cfg.max_utilities],
            kd,
            cone,
            cover: DynamicSetCover::new(cfg.level_base),
            points,
            pending: BTreeSet::new(),
            ops: 0,
            stats: UpdateStats::default(),
            batch_threads: cfg.batch_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            }),
        };

        // Compute Φ_{k,ε}(u_i, P0) for every i ∈ [1, M] and build the full
        // membership (tuple → utilities it approximates).
        for i in 0..fd.cap_m {
            let (phi, _omega) = fd.kd.top_k_approx(&fd.utilities[i], fd.k, fd.eps);
            let exact_len = fd.k.min(phi.len());
            fd.topk[i].exact = phi[..exact_len].to_vec();
            fd.topk[i].recompute_tau(fd.k, fd.eps);
            fd.cone.set_threshold(i, fd.topk[i].tau);
            for rp in &phi {
                memberships
                    .get_mut(&rp.id)
                    .expect("Φ members are live tuples")
                    .push(i as ElemId);
            }
        }
        for (pid, members) in memberships {
            fd.cover
                .insert_set(pid, members)
                .expect("fresh tuple ids are unique");
        }

        // Binary search m ∈ [r, M] so that the greedy cover has size r
        // (Lines 3–14). |C| grows with m; we keep the largest probe whose
        // cover size does not exceed r.
        if fd.points.is_empty() {
            fd.m = cfg.r;
            fd.cover.reset_universe(std::iter::empty());
            fd.pending = (0..cfg.r as ElemId).collect();
            return Ok(fd);
        }
        let (mut lo, mut hi) = (cfg.r, cfg.max_utilities);
        let mut best_m = cfg.r;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            fd.cover.reset_universe(0..mid as ElemId);
            fd.cover.greedy().expect("every utility has a top-1 tuple");
            let size = fd.cover.solution_size();
            if size < fd.r {
                best_m = mid;
                lo = mid + 1;
            } else if size > fd.r {
                hi = mid - 1;
            } else {
                best_m = mid;
                break;
            }
        }
        if fd.cover.universe_size() != best_m {
            fd.cover.reset_universe(0..best_m as ElemId);
            fd.cover.greedy().expect("every utility has a top-1 tuple");
        }
        fd.m = best_m;
        Ok(fd)
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// The current k-RMS result `Q_t` (tuples whose sets form the cover),
    /// sorted by id.
    pub fn result(&self) -> Vec<Point> {
        let mut out: Vec<Point> = self
            .cover
            .solution()
            .map(|pid| self.points[&pid].clone())
            .collect();
        out.sort_unstable_by_key(Point::id);
        out
    }

    /// Ids of the current result.
    pub fn result_ids(&self) -> Vec<PointId> {
        let mut out: Vec<PointId> = self.cover.solution().collect();
        out.sort_unstable();
        out
    }

    /// Number of live tuples `n_t`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The configured dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The rank depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The result size budget `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The top-k approximation factor ε.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// The current universe size `m` (number of utility vectors the cover
    /// is defined over).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The upper bound `M` on `m`.
    pub fn max_utilities(&self) -> usize {
        self.cap_m
    }

    /// Whether tuple `id` is live.
    pub fn contains(&self, id: PointId) -> bool {
        self.points.contains_key(&id)
    }

    /// A copy of the live database, sorted by id. Snapshot-extraction
    /// hook for the serving layer (regret estimation needs the full point
    /// set); `O(n)` — call per published snapshot, not per operation.
    pub fn live_points(&self) -> Vec<Point> {
        let mut out: Vec<Point> = self.points.values().cloned().collect();
        out.sort_unstable_by_key(Point::id);
        out
    }

    /// Number of operations applied since construction.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    /// Cumulative STABILIZE element moves (ablation instrumentation).
    pub fn stabilize_moves(&self) -> u64 {
        self.cover.stabilize_moves()
    }

    /// Cumulative instrumentation counters.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Replaces the attributes of a live tuple: the paper models an
    /// update as a deletion followed by an insertion (Section II-B), and
    /// so does this method. The tuple keeps its id. When the new
    /// attributes equal the stored tuple's, the call short-circuits to a
    /// no-op instead of paying the delete+insert cycle.
    pub fn update(&mut self, p: Point) -> Result<(), FdRmsError> {
        self.apply_batch(vec![crate::engine::Op::Update(p)])
            .map(|_| ())
    }

    /// The classic single-tuple update path (delete + insert), with the
    /// equal-attributes short-circuit. Returns `false` when the update was
    /// a no-op.
    pub(crate) fn update_one(&mut self, p: &Point) -> Result<bool, FdRmsError> {
        // Dimension before id-existence, the uniform precedence across
        // every verb and both the single-op and batched paths.
        if p.dim() != self.d {
            return Err(FdRmsError::DimensionMismatch {
                expected: self.d,
                got: p.dim(),
            });
        }
        let Some(stored) = self.points.get(&p.id()) else {
            return Err(FdRmsError::UnknownId(p.id()));
        };
        if stored.coords() == p.coords() {
            return Ok(false);
        }
        self.delete_one(p.id()).expect("checked live above");
        self.insert_one(p).expect("id just freed");
        Ok(true)
    }

    /// Solves the **min-size** variant referenced in the related work
    /// ([3], [19]): the smallest subset whose maximum k-regret ratio is at
    /// most ε (with respect to the full sampled net of `M` utility
    /// vectors, not just the tuned prefix `m`). Runs greedy set cover on
    /// a clone of the maintained system, so the dynamic state is
    /// untouched. Cost is one greedy pass — `O(r'·n)` — so call it on
    /// demand, not per update.
    pub fn min_size_result(&self) -> Vec<Point> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut cover = self.cover.clone();
        cover.reset_universe(0..self.cap_m as ElemId);
        cover.greedy().expect("every utility has a top-1 tuple");
        let mut out: Vec<Point> = cover
            .solution()
            .map(|pid| self.points[&pid].clone())
            .collect();
        out.sort_unstable_by_key(Point::id);
        out
    }

    // ------------------------------------------------------------------
    // Algorithm 3: UPDATE — insertion
    // ------------------------------------------------------------------

    /// Applies `Δ_t = 〈p, +〉` and re-balances the result to size `r`.
    pub fn insert(&mut self, p: Point) -> Result<(), FdRmsError> {
        self.apply_batch(vec![crate::engine::Op::Insert(p)])
            .map(|_| ())
    }

    /// The classic single-insert path (Algorithm 3, insertion).
    pub(crate) fn insert_one(&mut self, p: &Point) -> Result<(), FdRmsError> {
        if p.dim() != self.d {
            return Err(FdRmsError::DimensionMismatch {
                expected: self.d,
                got: p.dim(),
            });
        }
        if self.points.contains_key(&p.id()) {
            return Err(FdRmsError::DuplicateId(p.id()));
        }
        self.ops += 1;
        let pid = p.id();
        self.kd.insert(p.clone()).expect("id vetted above");
        self.points.insert(pid, p.clone());

        // Utilities whose ε-approximate top-k admits p (the cone tree
        // prunes the scan; thresholds are 0 while fewer than k tuples
        // exist, so those utilities always appear).
        let affected = self.cone.affected_by(p);
        self.stats.affected_utilities += affected.len() as u64;

        // p joins Φ_{k,ε}(u_i) for every affected i: register S(p) first
        // so evicted utilities can be reassigned into it.
        self.cover
            .insert_set(pid, affected.iter().map(|&i| i as ElemId))
            .expect("id vetted above");

        for &i in &affected {
            let score = self.utilities[i].score(p);
            let k = self.k;
            let st = &mut self.topk[i];
            // Does p enter the exact top-k?
            let enters =
                st.exact.len() < k || rank_before(score, pid, &st.exact[st.exact.len() - 1]);
            if enters {
                let pos = st.exact.partition_point(|e| {
                    rank_before(e.score, e.id, &RankedPoint { id: pid, score })
                });
                st.exact.insert(pos, RankedPoint { id: pid, score });
                st.exact.truncate(k);
                let old_tau = st.tau;
                st.recompute_tau(k, self.eps);
                let new_tau = st.tau;
                if new_tau > old_tau {
                    // ω_k increased: evict Φ members that fell below the
                    // new threshold (the "series of deletions" of the
                    // insertion path, Lines 5–8 of Algorithm 3).
                    let members: Vec<PointId> = self
                        .cover
                        .sets_containing(i as ElemId)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    for q_id in members {
                        if q_id == pid {
                            continue;
                        }
                        let q_score = self.utilities[i].score(&self.points[&q_id]);
                        if q_score < new_tau {
                            self.stats.evictions += 1;
                            let kept = self
                                .cover
                                .remove_from_set(i as ElemId, q_id)
                                .expect("member sets exist");
                            debug_assert!(
                                kept || i >= self.m,
                                "universe element lost its last set during insert"
                            );
                        }
                    }
                    self.cone.set_threshold(i, new_tau);
                }
            }
        }

        // Re-admit any pending universe elements now that coverage exists.
        self.readmit_pending();

        if self.cover.solution_size() != self.r {
            self.update_m();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Algorithm 3: UPDATE — deletion
    // ------------------------------------------------------------------

    /// Applies `Δ_t = 〈p, −〉` and re-balances the result to size `r`.
    pub fn delete(&mut self, pid: PointId) -> Result<(), FdRmsError> {
        self.apply_batch(vec![crate::engine::Op::Delete(pid)])
            .map(|_| ())
    }

    /// The classic single-delete path (Algorithm 3, deletion).
    pub(crate) fn delete_one(&mut self, pid: PointId) -> Result<(), FdRmsError> {
        let Some(_p) = self.points.remove(&pid) else {
            return Err(FdRmsError::UnknownId(pid));
        };
        self.ops += 1;
        self.kd.delete(pid).expect("points map and kd agree");

        // Utilities whose Φ contained p — exactly the members of S(p).
        let affected: Vec<usize> = self
            .cover
            .members(pid)
            .map(|m| m.iter().map(|&u| u as usize).collect())
            .unwrap_or_default();
        self.stats.affected_utilities += affected.len() as u64;

        for &i in &affected {
            let was_exact = self.topk[i].exact.iter().any(|e| e.id == pid);
            if !was_exact {
                // p sat only in the ε-band: Φ loses p (handled by the set
                // removal below); thresholds are unchanged.
                continue;
            }
            // ω_k may drop: recompute the exact top-k from the tree and
            // admit the tuples that now clear the lower threshold (the
            // "series of insertions" of the deletion path, Lines 9–12).
            self.stats.topk_requeries += 1;
            let exact = self.kd.top_k(&self.utilities[i], self.k);
            let st = &mut self.topk[i];
            st.exact = exact;
            st.recompute_tau(self.k, self.eps);
            let new_tau = st.tau;
            let entrants = self.kd.above_threshold(&self.utilities[i], new_tau);
            for rp in entrants {
                if !self.cover.set_contains(rp.id, i as ElemId) {
                    self.stats.admissions += 1;
                    self.cover
                        .add_to_set(i as ElemId, rp.id)
                        .expect("entrant tuples are live");
                }
            }
            self.cone.set_threshold(i, new_tau);
        }

        // Remove S(p); covered utilities are reassigned to the sets that
        // now contain them. Drops only happen when the database emptied.
        let dropped = self
            .cover
            .remove_set(pid)
            .expect("set registered at insert");
        for u in dropped {
            debug_assert!(self.points.is_empty(), "drop with nonempty database");
            self.pending.insert(u);
        }
        if self.points.is_empty() {
            for i in 0..self.cap_m {
                self.topk[i] = TopKState::default();
                self.cone.set_threshold(i, 0.0);
            }
            return Ok(());
        }

        if self.cover.solution_size() != self.r {
            self.update_m();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Algorithm 4: UPDATE-M
    // ------------------------------------------------------------------

    /// Grows or shrinks the universe one utility vector at a time until
    /// the cover size returns to `r` (or the bounds `r ≤ m ≤ M` bind).
    pub(crate) fn update_m(&mut self) {
        if self.points.is_empty() {
            return;
        }
        if self.cover.solution_size() < self.r {
            while self.m < self.cap_m && self.cover.solution_size() < self.r {
                let u = self.m as ElemId;
                self.m += 1;
                self.stats.m_grow_steps += 1;
                self.admit(u);
            }
        } else if self.cover.solution_size() > self.r {
            while self.cover.solution_size() > self.r && self.m > self.r {
                self.m -= 1;
                self.stats.m_shrink_steps += 1;
                let u = self.m as ElemId;
                if self.pending.remove(&u) {
                    continue;
                }
                self.cover
                    .remove_element(u)
                    .expect("universe elements ≤ m are admitted or pending");
            }
        }
    }

    /// Adds utility index `u` to the set-cover universe (its memberships
    /// are maintained for all `M` vectors, so admission is just an element
    /// insertion).
    fn admit(&mut self, u: ElemId) {
        match self.cover.insert_element(u) {
            Ok(()) => {}
            Err(rms_setcover::CoverError::UncoverableElement(_)) => {
                // Database must be empty for a top-k result to be empty;
                // remember the element for later.
                self.pending.insert(u);
            }
            Err(e) => unreachable!("admit({u}): {e}"),
        }
    }

    /// Re-admits pending universe elements whose coverage returned.
    pub(crate) fn readmit_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let m = self.m as ElemId;
        let candidates: Vec<ElemId> = self.pending.range(..m).copied().collect();
        for u in candidates {
            if self.cover.sets_containing(u).is_some_and(|s| !s.is_empty()) {
                self.pending.remove(&u);
                self.admit(u);
            }
        }
    }

    // ------------------------------------------------------------------
    // Verification
    // ------------------------------------------------------------------

    /// Exhaustive internal-consistency check for tests: top-k states match
    /// brute-force recomputation, memberships match Φ, the cover is
    /// stable, and the universe is `{0..m} \ pending`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let all: Vec<Point> = self.points.values().cloned().collect();
        for i in 0..self.cap_m {
            let u = &self.utilities[i];
            let want_exact = rms_geom::top_k(&all, u, self.k);
            if self.topk[i].exact != want_exact {
                return Err(format!("utility {i}: exact top-k out of date"));
            }
            let want_tau = if want_exact.len() < self.k {
                0.0
            } else {
                (1.0 - self.eps) * want_exact[self.k - 1].score
            };
            if (self.topk[i].tau - want_tau).abs() > 1e-9 {
                return Err(format!(
                    "utility {i}: tau {} != {want_tau}",
                    self.topk[i].tau
                ));
            }
            // Membership = Φ_{k,ε}.
            let want_phi: std::collections::HashSet<PointId> =
                rms_geom::top_k_approx(&all, u, self.k, self.eps)
                    .into_iter()
                    .map(|rp| rp.id)
                    .collect();
            for p in &all {
                let has = self.cover.set_contains(p.id(), i as ElemId);
                let want = want_phi.contains(&p.id());
                if has != want {
                    return Err(format!(
                        "utility {i}, tuple {}: membership {has}, want {want}",
                        p.id()
                    ));
                }
            }
        }
        // Universe book-keeping.
        let want_universe = self.m - self.pending.range(..self.m as ElemId).count();
        if self.cover.universe_size() != want_universe {
            return Err(format!(
                "universe size {} != m − pending = {want_universe}",
                self.cover.universe_size()
            ));
        }
        if !self.points.is_empty() && !self.pending.is_empty() {
            return Err("pending elements with nonempty database".into());
        }
        self.cover.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn fig1_points() -> Vec<Point> {
        [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ]
        .iter()
        .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
        .collect()
    }

    fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    #[test]
    fn example3_shape_on_fig1() {
        // The paper's Example 3 runs RMS(1, 3) on the Fig. 1 data with
        // m up to 9 and gets Q0 = {p1, p2, p4}. Our sampled utilities
        // differ, but the result must be 3 skyline tuples with near-zero
        // 1-regret.
        let fd = FdRms::builder(2)
            .k(1)
            .r(3)
            .epsilon(0.002)
            .max_utilities(64)
            .seed(1)
            .build(fig1_points())
            .unwrap();
        let q = fd.result();
        assert!(q.len() <= 3);
        fd.check_invariants().unwrap();
        let mrr = rms_eval::max_regret_ratio(&fig1_points(), &q, 1, 10_000, 9);
        assert!(mrr < 0.1, "mrr {mrr}");
    }

    #[test]
    fn initialization_respects_r() {
        let pts = random_points(3, 300, 3);
        for r in [3, 5, 10] {
            let fd = FdRms::builder(3)
                .r(r)
                .max_utilities(512)
                .build(pts.clone())
                .unwrap();
            assert!(fd.result().len() <= r, "r={r}");
            fd.check_invariants().unwrap();
        }
    }

    #[test]
    fn insert_maintains_invariants() {
        let pts = random_points(5, 120, 3);
        let mut fd = FdRms::builder(3)
            .r(5)
            .max_utilities(256)
            .build(pts)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..40 {
            let p = Point::new_unchecked(1000 + i, (0..3).map(|_| rng.gen()).collect());
            fd.insert(p).unwrap();
            if i % 10 == 0 {
                fd.check_invariants().unwrap();
            }
        }
        fd.check_invariants().unwrap();
        assert_eq!(fd.len(), 160);
        assert!(fd.result().len() <= 5);
    }

    #[test]
    fn delete_maintains_invariants() {
        let pts = random_points(7, 150, 3);
        let mut fd = FdRms::builder(3)
            .r(5)
            .max_utilities(256)
            .build(pts.clone())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut live: Vec<PointId> = pts.iter().map(|p| p.id()).collect();
        for i in 0..60 {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            fd.delete(id).unwrap();
            if i % 15 == 0 {
                fd.check_invariants().unwrap();
            }
        }
        fd.check_invariants().unwrap();
        assert_eq!(fd.len(), 90);
    }

    #[test]
    fn mixed_workload_quality_tracks_recompute() {
        // After many updates, the maintained result must stay close (in
        // mrr) to a from-scratch rebuild with identical parameters.
        let pts = random_points(11, 200, 3);
        let mut fd = FdRms::builder(3)
            .r(8)
            .epsilon(0.05)
            .max_utilities(512)
            .seed(3)
            .build(pts.clone())
            .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut live = pts;
        let mut next_id = 10_000u64;
        for _ in 0..120 {
            if live.len() < 20 || rng.gen_bool(0.55) {
                let p = Point::new_unchecked(next_id, (0..3).map(|_| rng.gen()).collect());
                next_id += 1;
                live.push(p.clone());
                fd.insert(p).unwrap();
            } else {
                let idx = rng.gen_range(0..live.len());
                let id = live.swap_remove(idx).id();
                fd.delete(id).unwrap();
            }
        }
        fd.check_invariants().unwrap();
        let maintained = fd.result();
        let rebuilt = FdRms::builder(3)
            .r(8)
            .epsilon(0.05)
            .max_utilities(512)
            .seed(3)
            .build(live.clone())
            .unwrap()
            .result();
        let est = rms_eval::RegretEstimator::new(3, 20_000, 5);
        let mrr_maint = est.mrr(&live, &maintained, 1);
        let mrr_rebuild = est.mrr(&live, &rebuilt, 1);
        assert!(
            mrr_maint <= mrr_rebuild + 0.1,
            "maintained {mrr_maint} vs rebuilt {mrr_rebuild}"
        );
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let pts = random_points(21, 30, 2);
        let mut fd = FdRms::builder(2)
            .r(3)
            .max_utilities(64)
            .build(pts.clone())
            .unwrap();
        for p in &pts {
            fd.delete(p.id()).unwrap();
        }
        assert!(fd.is_empty());
        assert!(fd.result().is_empty());
        fd.check_invariants().unwrap();
        // Refill.
        for p in &pts {
            fd.insert(p.clone()).unwrap();
        }
        fd.check_invariants().unwrap();
        assert_eq!(fd.len(), 30);
        assert!(!fd.result().is_empty());
        assert!(fd.result().len() <= 3);
    }

    #[test]
    fn update_errors() {
        let pts = random_points(31, 20, 2);
        let mut fd = FdRms::builder(2)
            .r(3)
            .max_utilities(64)
            .build(pts.clone())
            .unwrap();
        assert_eq!(
            fd.insert(pts[0].clone()),
            Err(FdRmsError::DuplicateId(pts[0].id()))
        );
        assert_eq!(fd.delete(999), Err(FdRmsError::UnknownId(999)));
        assert_eq!(
            fd.insert(Point::new_unchecked(500, vec![0.1, 0.2, 0.3])),
            Err(FdRmsError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        );
        assert_eq!(fd.operations(), 0);
    }

    #[test]
    fn k_greater_than_one() {
        let pts = random_points(41, 150, 3);
        let mut fd = FdRms::builder(3)
            .k(3)
            .r(6)
            .epsilon(0.05)
            .max_utilities(256)
            .build(pts)
            .unwrap();
        fd.check_invariants().unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..30 {
            let p = Point::new_unchecked(5000 + i, (0..3).map(|_| rng.gen()).collect());
            fd.insert(p).unwrap();
        }
        for id in 0..30u64 {
            fd.delete(id).unwrap();
        }
        fd.check_invariants().unwrap();
        assert!(fd.result().len() <= 6);
    }

    #[test]
    fn update_replaces_attributes_in_place() {
        let pts = random_points(61, 80, 2);
        let mut fd = FdRms::builder(2).r(3).max_utilities(64).build(pts).unwrap();
        // Update tuple 0 to dominate everything: it must enter the result.
        fd.update(Point::new_unchecked(0, vec![1.0, 1.0])).unwrap();
        fd.check_invariants().unwrap();
        assert!(fd.result_ids().contains(&0));
        assert_eq!(fd.len(), 80);
        // Unknown id and wrong dimension are rejected.
        assert_eq!(
            fd.update(Point::new_unchecked(9999, vec![0.5, 0.5])),
            Err(FdRmsError::UnknownId(9999))
        );
        assert_eq!(
            fd.update(Point::new_unchecked(0, vec![0.5])),
            Err(FdRmsError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn stats_accumulate() {
        let pts = random_points(71, 100, 3);
        let mut fd = FdRms::builder(3)
            .r(4)
            .max_utilities(128)
            .build(pts)
            .unwrap();
        assert_eq!(fd.stats(), UpdateStats::default());
        let mut rng = StdRng::seed_from_u64(72);
        for i in 0..20 {
            fd.insert(Point::new_unchecked(
                1000 + i,
                (0..3).map(|_| rng.gen()).collect(),
            ))
            .unwrap();
            fd.delete(i).unwrap();
        }
        let s = fd.stats();
        assert!(s.affected_utilities > 0);
        assert!(s.topk_requeries > 0);
    }

    #[test]
    fn min_size_result_has_eps_quality() {
        let pts = random_points(81, 150, 3);
        let eps = 0.08;
        let fd = FdRms::builder(3)
            .r(3)
            .epsilon(eps)
            .max_utilities(256)
            .build(pts.clone())
            .unwrap();
        let q = fd.min_size_result();
        assert!(!q.is_empty());
        // Quality over the sampled net: by construction the set covers all
        // M utilities within eps; the Monte-Carlo estimate over *fresh*
        // directions should be near eps (allow net-resolution slack).
        let mrr = rms_eval::max_regret_ratio(&pts, &q, 1, 5_000, 9);
        assert!(mrr < eps + 0.1, "min-size mrr {mrr}");
        // The maintained (size-capped) state is untouched.
        fd.check_invariants().unwrap();
        assert!(fd.result().len() <= 3);
    }

    #[test]
    fn result_is_subset_of_live_points() {
        let pts = random_points(51, 100, 2);
        let mut fd = FdRms::builder(2)
            .r(4)
            .max_utilities(128)
            .build(pts)
            .unwrap();
        for id in 0..50u64 {
            fd.delete(id).unwrap();
            for p in fd.result() {
                assert!(fd.contains(p.id()));
            }
        }
    }

    #[test]
    fn empty_initialization() {
        let mut fd = FdRms::builder(2)
            .r(2)
            .max_utilities(32)
            .build(Vec::new())
            .unwrap();
        assert!(fd.is_empty());
        assert!(fd.result().is_empty());
        fd.insert(Point::new_unchecked(0, vec![0.5, 0.5])).unwrap();
        fd.insert(Point::new_unchecked(1, vec![0.9, 0.1])).unwrap();
        fd.check_invariants().unwrap();
        assert_eq!(fd.result().len().min(2), fd.result().len());
        assert!(!fd.result().is_empty());
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
