//! # FD-RMS — a fully dynamic algorithm for k-regret minimizing sets
//!
//! From-scratch implementation of the primary contribution of Wang, Li,
//! Wong, Tan: *"A Fully Dynamic Algorithm for k-Regret Minimizing Sets"*
//! (ICDE 2021). Given a database `P ⊂ R^d_+`, a rank depth `k`, and a size
//! budget `r`, FD-RMS maintains — under arbitrary tuple insertions and
//! deletions — a subset `Q ⊆ P`, `|Q| ≤ r`, whose maximum k-regret ratio
//! is provably close to optimal (Theorem 2: `Q` is a
//! `(k, O(ε*_{k,r'} + δ))`-regret set with `r' = O(r / log m)` and
//! `δ = O(m^{-1/(d−1)})`, with high probability).
//!
//! ## How it works (Section III)
//!
//! 1. Draw `M` utility vectors — the first `d` are the standard basis, the
//!    rest uniform on the positive unit sphere — and maintain the
//!    ε-approximate top-k result `Φ_{k,ε}(u_i, P_t)` of each under every
//!    update, using a k-d tree over tuples (TI) and a cone tree over
//!    utilities (UI).
//! 2. Transpose those results into a set system: tuple `p` covers utility
//!    `u` iff `p ∈ Φ_{k,ε}(u, P_t)`. A set-cover solution over the first
//!    `m ≤ M` utilities, maintained *stably* (crate `rms-setcover`), is
//!    the k-RMS answer; `m` is tuned (binary search at build time,
//!    incremental afterwards — Algorithms 2 and 4) so the solution size is
//!    exactly `r`.
//!
//! ## Example
//!
//! ```
//! use fdrms::FdRms;
//! use rms_geom::Point;
//!
//! let points: Vec<Point> = (0..200)
//!     .map(|i| {
//!         let x = (i as f64) / 200.0;
//!         Point::new(i, vec![x, 1.0 - x]).unwrap()
//!     })
//!     .collect();
//! let mut fd = FdRms::builder(2)
//!     .k(1)
//!     .r(5)
//!     .epsilon(0.02)
//!     .max_utilities(256)
//!     .seed(7)
//!     .build(points)
//!     .unwrap();
//! assert!(fd.result().len() <= 5);
//!
//! fd.insert(Point::new(1000, vec![0.99, 0.99]).unwrap()).unwrap();
//! fd.delete(0).unwrap();
//! assert!(fd.result().len() <= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod builder;
pub mod engine;

pub use algorithm::{FdRms, UpdateStats};
pub use builder::{FdRmsBuilder, FdRmsError};
pub use engine::{BatchReport, BatchRollup, Op};
