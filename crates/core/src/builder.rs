//! Configuration and validation for constructing [`FdRms`].

use crate::algorithm::FdRms;
use rms_geom::{Point, PointId};
use rms_setcover::LevelBase;

/// Errors raised by FD-RMS construction and updates.
#[derive(Debug, Clone, PartialEq)]
pub enum FdRmsError {
    /// A configuration parameter is out of range.
    InvalidParameter(String),
    /// Insertion of a tuple id that is already live.
    DuplicateId(PointId),
    /// Deletion of a tuple id that is not live.
    UnknownId(PointId),
    /// A tuple's dimensionality does not match the structure's.
    DimensionMismatch {
        /// Configured dimensionality.
        expected: usize,
        /// Offending tuple's dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for FdRmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdRmsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            FdRmsError::DuplicateId(id) => write!(f, "tuple {id} already present"),
            FdRmsError::UnknownId(id) => write!(f, "tuple {id} not present"),
            FdRmsError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimension {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for FdRmsError {}

/// Builder for [`FdRms`] (the two tunables of the paper are `epsilon` and
/// `max_utilities`; Section III-C discusses how to choose them).
#[derive(Debug, Clone, Copy)]
pub struct FdRmsBuilder {
    pub(crate) d: usize,
    pub(crate) k: usize,
    pub(crate) r: usize,
    pub(crate) epsilon: f64,
    pub(crate) max_utilities: usize,
    pub(crate) seed: u64,
    pub(crate) level_base: LevelBase,
    pub(crate) batch_threads: Option<usize>,
}

impl FdRmsBuilder {
    pub(crate) fn new(d: usize) -> Self {
        Self {
            d,
            k: 1,
            r: d.max(1),
            epsilon: 0.02,
            max_utilities: 1 << 12,
            seed: 42,
            level_base: LevelBase::TWO,
            batch_threads: None,
        }
    }

    /// Rank depth `k` of the regret definition (default 1, i.e. the
    /// r-regret query).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Result size budget `r` (Definition 1 requires `r ≥ d`).
    pub fn r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Approximation factor ε of the maintained top-k results. Larger ε ⇒
    /// denser set system ⇒ larger `m` ⇒ slower but higher-quality results
    /// (Fig. 5 of the paper).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Upper bound `M` on the number of sampled utility vectors (the
    /// paper sweeps `2^10 … 2^20`).
    pub fn max_utilities(mut self, m: usize) -> Self {
        self.max_utilities = m;
        self
    }

    /// RNG seed for utility sampling (results are deterministic per seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Base of the set-cover level hierarchy (paper footnote 2; default 2).
    pub fn level_base(mut self, base: f64) -> Self {
        self.level_base = LevelBase::new(base);
        self
    }

    /// Worker-thread budget for the batch update engine's sharded top-k
    /// recomputation ([`FdRms::apply_batch`]). Defaults to the machine's
    /// available parallelism; `1` forces fully sequential batches.
    pub fn batch_threads(mut self, threads: usize) -> Self {
        self.batch_threads = Some(threads);
        self
    }

    /// Validates the configuration and runs Algorithm 2 (INITIALIZATION)
    /// on `initial`.
    pub fn build(self, initial: Vec<Point>) -> Result<FdRms, FdRmsError> {
        if self.d == 0 {
            return Err(FdRmsError::InvalidParameter("d must be positive".into()));
        }
        if self.k == 0 {
            return Err(FdRmsError::InvalidParameter("k must be positive".into()));
        }
        if self.r < self.d {
            return Err(FdRmsError::InvalidParameter(format!(
                "r = {} must be at least d = {} (Definition 1)",
                self.r, self.d
            )));
        }
        if !(0.0..1.0).contains(&self.epsilon) || self.epsilon <= 0.0 {
            return Err(FdRmsError::InvalidParameter(format!(
                "epsilon = {} must lie in (0, 1)",
                self.epsilon
            )));
        }
        if self.batch_threads == Some(0) {
            return Err(FdRmsError::InvalidParameter(
                "batch_threads must be positive".into(),
            ));
        }
        if self.max_utilities <= self.r {
            return Err(FdRmsError::InvalidParameter(format!(
                "max_utilities = {} must exceed r = {}",
                self.max_utilities, self.r
            )));
        }
        for p in &initial {
            if p.dim() != self.d {
                return Err(FdRmsError::DimensionMismatch {
                    expected: self.d,
                    got: p.dim(),
                });
            }
        }
        FdRms::initialize(&self, initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_validation() {
        let p = |d| Point::new_unchecked(0, vec![0.5; d]);
        assert!(matches!(
            FdRms::builder(0).build(vec![]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(2).k(0).build(vec![p(2)]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(3).r(2).build(vec![p(3)]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(2).epsilon(0.0).build(vec![p(2)]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(2).epsilon(1.0).build(vec![p(2)]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(2).r(10).max_utilities(10).build(vec![p(2)]),
            Err(FdRmsError::InvalidParameter(_))
        ));
        assert!(matches!(
            FdRms::builder(2).build(vec![p(3)]),
            Err(FdRmsError::DimensionMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn error_display() {
        assert!(FdRmsError::DuplicateId(3).to_string().contains("3"));
        assert!(FdRmsError::UnknownId(4).to_string().contains("not present"));
        assert!(FdRmsError::InvalidParameter("x".into())
            .to_string()
            .contains("x"));
        assert!(FdRmsError::DimensionMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains("dimension"));
    }
}
