//! Greedy-family baselines: GREEDY, GEOGREEDY, GREEDY*.

use crate::StaticRms;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::Point;
use rms_lp::regret::{is_happy_point, max_regret_lp};

/// GREEDY for 1-RMS (Nanongkai et al., PVLDB 2010).
///
/// Starts from the tuple that is best for the "diagonal" utility and
/// repeatedly adds the *witness* tuple whose worst-case regret against the
/// current result is largest, computed exactly with one LP per candidate
/// per round. Terminates early when the maximum regret reaches zero.
#[derive(Debug, Clone, Default)]
pub struct Greedy;

impl Greedy {
    /// Shared greedy loop: restricted to `candidates` as both witnesses
    /// and additions.
    fn run(candidates: &[Point], r: usize) -> Vec<Point> {
        if candidates.is_empty() || r == 0 {
            return Vec::new();
        }
        // Seed with the best tuple for the all-ones direction (any fixed
        // direction works; the diagonal is the conventional choice).
        let seed = candidates
            .iter()
            .max_by(|a, b| {
                let sa: f64 = a.coords().iter().sum();
                let sb: f64 = b.coords().iter().sum();
                sa.partial_cmp(&sb)
                    .expect("finite")
                    .then_with(|| b.id().cmp(&a.id()))
            })
            .expect("nonempty");
        let mut q = vec![seed.clone()];
        while q.len() < r {
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in candidates.iter().enumerate() {
                if q.iter().any(|s| s.id() == p.id()) {
                    continue;
                }
                let rr = max_regret_lp(p, &q);
                if best.is_none_or(|(_, b)| rr > b) {
                    best = Some((i, rr));
                }
            }
            match best {
                Some((i, rr)) if rr > 1e-9 => q.push(candidates[i].clone()),
                _ => break, // zero regret or no candidates left
            }
        }
        q
    }
}

impl StaticRms for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        Self::run(skyline, r)
    }
}

/// GEOGREEDY for 1-RMS (Peng & Wong, ICDE 2014).
///
/// Identical greedy loop, but candidates are pruned to the *happy points*
/// — tuples that are top-1 for at least one utility vector, i.e. vertices
/// of the upper convex hull. Only happy points can ever be the max-regret
/// witness or reduce regret when added, so the pruning is lossless while
/// shrinking the per-round LP count. The original uses an explicit convex
/// hull; we decide the same predicate with one LP per tuple (DESIGN.md
/// §2), which also reproduces the original's poor scaling in `d` (the
/// pruning step itself becomes the bottleneck, cf. Fig. 8).
#[derive(Debug, Clone, Default)]
pub struct GeoGreedy;

impl StaticRms for GeoGreedy {
    fn name(&self) -> &'static str {
        "GeoGreedy"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        let happy: Vec<Point> = skyline
            .iter()
            .filter(|p| is_happy_point(p, skyline))
            .cloned()
            .collect();
        Greedy::run(&happy, r)
    }
}

/// GREEDY* for k-RMS (Chester et al., PVLDB 2014).
///
/// The exact k-regret greedy is intractable, so Chester et al. randomize:
/// sample a pool of utility vectors, and at each round add the top-1 tuple
/// of the sampled vector whose current k-regret ratio is worst. We follow
/// that scheme with a deterministic seed; the pool size trades accuracy
/// for the LP-free evaluation that makes `k > 1` feasible at all.
#[derive(Debug, Clone)]
pub struct GreedyStar {
    /// Number of sampled utility vectors.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GreedyStar {
    fn default() -> Self {
        Self {
            samples: 2000,
            seed: 0xC4E57E12,
        }
    }
}

impl StaticRms for GreedyStar {
    fn name(&self) -> &'static str {
        "Greedy*"
    }

    fn supports_k(&self, _k: usize) -> bool {
        true
    }

    fn compute(&self, _skyline: &[Point], full: &[Point], k: usize, r: usize) -> Vec<Point> {
        if full.is_empty() || r == 0 {
            return Vec::new();
        }
        let d = full[0].dim();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let utils = rms_geom::with_basis_prefix(&mut rng, d, self.samples.max(d));

        // Precompute ω_k(u, P) and the top-1 tuple per sampled utility.
        let mut omega_k = Vec::with_capacity(utils.len());
        let mut top1_idx = Vec::with_capacity(utils.len());
        for u in &utils {
            let ranked = rms_geom::top_k(full, u, k);
            omega_k.push(ranked.last().map_or(0.0, |r| r.score));
            let t1 = rms_geom::top1(full, u).expect("nonempty");
            top1_idx.push(full.iter().position(|p| p.id() == t1.id).expect("live"));
        }

        // best_q[u] = ω(u, Q), updated incrementally as Q grows.
        let mut best_q = vec![f64::NEG_INFINITY; utils.len()];
        let mut q: Vec<Point> = Vec::with_capacity(r);
        let mut in_q = std::collections::HashSet::new();
        while q.len() < r {
            // Worst sampled utility under the current Q.
            let mut worst: Option<(usize, f64)> = None;
            for (i, u) in utils.iter().enumerate() {
                let _ = u;
                let rr = if omega_k[i] <= 0.0 {
                    0.0
                } else {
                    (1.0 - best_q[i] / omega_k[i]).max(0.0)
                };
                if worst.is_none_or(|(_, w)| rr > w) {
                    worst = Some((i, rr));
                }
            }
            let Some((wi, rr)) = worst else { break };
            if rr <= 1e-12 {
                break;
            }
            let cand = &full[top1_idx[wi]];
            if !in_q.insert(cand.id()) {
                // The worst utility's top-1 is already chosen (its regret
                // is 0 by construction then) — numerical corner; stop.
                break;
            }
            q.push(cand.clone());
            for (i, u) in utils.iter().enumerate() {
                let s = u.score(cand);
                if s > best_q[i] {
                    best_q[i] = s;
                }
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_eval::RegretEstimator;
    use rms_skyline::skyline;

    fn fig1() -> Vec<Point> {
        [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ]
        .iter()
        .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
        .collect()
    }

    fn random_db(seed: u64, n: usize, d: usize) -> Vec<Point> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    #[test]
    fn greedy_zero_regret_with_enough_budget() {
        let db = fig1();
        let sky = skyline(&db);
        // The upper hull has 3 vertices (p1, p2, p4): r = 3 suffices for
        // zero 1-regret.
        let q = Greedy.compute(&sky, &db, 1, 3);
        let est = RegretEstimator::new(2, 10_000, 3);
        assert!(est.mrr(&db, &q, 1) < 1e-6);
    }

    #[test]
    fn greedy_result_shrinks_regret_monotonically() {
        let db = random_db(5, 200, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 1);
        let mut prev = 1.0;
        for r in [3, 6, 12] {
            let q = Greedy.compute(&sky, &db, 1, r);
            assert!(q.len() <= r);
            let mrr = est.mrr(&db, &q, 1);
            assert!(mrr <= prev + 1e-9, "r={r}: {mrr} > {prev}");
            prev = mrr;
        }
    }

    #[test]
    fn geogreedy_matches_greedy_quality() {
        let db = random_db(7, 150, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 2);
        let qg = Greedy.compute(&sky, &db, 1, 8);
        let qgeo = GeoGreedy.compute(&sky, &db, 1, 8);
        let mg = est.mrr(&db, &qg, 1);
        let mgeo = est.mrr(&db, &qgeo, 1);
        // Happy-point pruning is lossless for 1-RMS greedy.
        assert!((mg - mgeo).abs() < 0.02, "Greedy {mg} vs GeoGreedy {mgeo}");
    }

    #[test]
    fn geogreedy_prunes_non_vertices() {
        let db = fig1();
        let sky = skyline(&db);
        let q = GeoGreedy.compute(&sky, &db, 1, 5);
        // Only 3 hull vertices exist; the result cannot exceed them.
        assert!(q.len() <= 3);
        for p in &q {
            assert!([1u64, 2, 4].contains(&p.id()), "non-vertex {}", p.id());
        }
    }

    #[test]
    fn greedy_star_handles_k_above_one() {
        let db = random_db(9, 200, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 4);
        let algo = GreedyStar {
            samples: 500,
            seed: 1,
        };
        for k in [1, 2, 4] {
            let q = algo.compute(&sky, &db, k, 10);
            assert!(q.len() <= 10, "k={k}");
            let mrr = est.mrr(&db, &q, k);
            assert!(mrr < 0.25, "k={k}: mrr {mrr}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(Greedy.compute(&[], &[], 1, 5).is_empty());
        assert!(GeoGreedy.compute(&[], &[], 1, 5).is_empty());
        assert!(GreedyStar::default().compute(&[], &[], 2, 5).is_empty());
        let one = vec![Point::new_unchecked(0, vec![0.5, 0.5])];
        assert_eq!(Greedy.compute(&one, &one, 1, 3).len(), 1);
        assert!(Greedy.compute(&one, &one, 1, 0).is_empty());
    }

    #[test]
    fn supports_k_flags() {
        assert!(Greedy.supports_k(1) && !Greedy.supports_k(2));
        assert!(GeoGreedy.supports_k(1) && !GeoGreedy.supports_k(3));
        assert!(GreedyStar::default().supports_k(5));
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Greedy.name(),
            GeoGreedy.name(),
            GreedyStar::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
