//! Dynamic adapter: re-runs a static algorithm on skyline changes.

use crate::StaticRms;
use rms_geom::{Point, PointId};
use rms_skyline::{DynamicSkyline, SkylineDelta, SkylineError};

/// Wraps a static k-RMS algorithm into the dynamic protocol of the
/// paper's experiments: maintain the skyline incrementally, and recompute
/// the k-RMS result from scratch *only* when an operation changes the
/// skyline (operations on non-skyline tuples leave the result untouched —
/// Section II-B).
///
/// For fair comparison the paper measures only the k-RMS recomputation
/// time and "ignored the time for skyline maintenance"; the adapter keeps
/// the two phases separate so the bench harness can do the same.
#[derive(Debug)]
pub struct DynamicAdapter<A: StaticRms> {
    algo: A,
    k: usize,
    r: usize,
    skyline: DynamicSkyline,
    cached: Vec<Point>,
    recomputes: u64,
}

impl<A: StaticRms> DynamicAdapter<A> {
    /// Builds the adapter over an initial database and computes the first
    /// result.
    pub fn new(algo: A, k: usize, r: usize, initial: Vec<Point>) -> Result<Self, SkylineError> {
        assert!(
            algo.supports_k(k),
            "{} does not support k = {k}",
            algo.name()
        );
        let skyline = DynamicSkyline::new(initial)?;
        let mut s = Self {
            algo,
            k,
            r,
            skyline,
            cached: Vec::new(),
            recomputes: 0,
        };
        s.recompute();
        Ok(s)
    }

    /// The wrapped algorithm's name.
    pub fn name(&self) -> &'static str {
        self.algo.name()
    }

    /// The current k-RMS result.
    pub fn result(&self) -> &[Point] {
        &self.cached
    }

    /// Number of from-scratch recomputations so far.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.skyline.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.skyline.is_empty()
    }

    /// Size of the current skyline.
    pub fn skyline_len(&self) -> usize {
        self.skyline.skyline_len()
    }

    /// Applies an insertion. Returns `true` when the k-RMS result was
    /// recomputed (i.e. the skyline changed).
    pub fn insert(&mut self, p: Point) -> Result<bool, SkylineError> {
        match self.skyline.insert(p)? {
            SkylineDelta::Changed => {
                self.recompute();
                Ok(true)
            }
            SkylineDelta::Unchanged => Ok(false),
        }
    }

    /// Applies a deletion. Returns `true` when the result was recomputed.
    pub fn delete(&mut self, id: PointId) -> Result<bool, SkylineError> {
        match self.skyline.delete(id)? {
            SkylineDelta::Changed => {
                self.recompute();
                Ok(true)
            }
            SkylineDelta::Unchanged => Ok(false),
        }
    }

    /// Skyline-only insertion: updates the skyline but defers the k-RMS
    /// recomputation. Returns `true` when [`DynamicAdapter::recompute`]
    /// must be called. The bench harness uses this split to time only the
    /// k-RMS computation, as the paper's measurements do.
    pub fn insert_lazy(&mut self, p: Point) -> Result<bool, SkylineError> {
        Ok(matches!(self.skyline.insert(p)?, SkylineDelta::Changed))
    }

    /// Skyline-only deletion; see [`DynamicAdapter::insert_lazy`].
    pub fn delete_lazy(&mut self, id: PointId) -> Result<bool, SkylineError> {
        Ok(matches!(self.skyline.delete(id)?, SkylineDelta::Changed))
    }

    /// Forces a from-scratch recomputation (timed by the bench harness).
    pub fn recompute(&mut self) {
        let sky = self.skyline.skyline_points();
        let full = self.skyline.all_points();
        self.cached = self.algo.compute(&sky, &full, self.k, self.r);
        self.recomputes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Greedy;

    fn pt(id: u64, coords: &[f64]) -> Point {
        Point::new_unchecked(id, coords.to_vec())
    }

    #[test]
    fn recomputes_only_on_skyline_change() {
        let initial = vec![pt(0, &[0.9, 0.9]), pt(1, &[0.5, 0.5])];
        let mut ad = DynamicAdapter::new(Greedy, 1, 2, initial).unwrap();
        assert_eq!(ad.recomputes(), 1);
        // Dominated insert: no recompute.
        assert!(!ad.insert(pt(2, &[0.1, 0.1])).unwrap());
        assert_eq!(ad.recomputes(), 1);
        // Skyline-changing insert: recompute.
        assert!(ad.insert(pt(3, &[0.95, 0.95])).unwrap());
        assert_eq!(ad.recomputes(), 2);
        // Deleting a dominated tuple: no recompute.
        assert!(!ad.delete(2).unwrap());
        // Deleting the skyline tuple: recompute.
        assert!(ad.delete(3).unwrap());
        assert_eq!(ad.recomputes(), 3);
    }

    #[test]
    fn result_tracks_database() {
        let initial = vec![pt(0, &[1.0, 0.0]), pt(1, &[0.0, 1.0]), pt(2, &[0.6, 0.6])];
        let mut ad = DynamicAdapter::new(Greedy, 1, 3, initial).unwrap();
        assert!(!ad.result().is_empty());
        ad.delete(0).unwrap();
        ad.delete(1).unwrap();
        ad.delete(2).unwrap();
        assert!(ad.result().is_empty());
        assert!(ad.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not support k = 2")]
    fn unsupported_k_panics() {
        let _ = DynamicAdapter::new(Greedy, 2, 3, vec![pt(0, &[0.5, 0.5])]);
    }

    #[test]
    fn errors_propagate() {
        let mut ad = DynamicAdapter::new(Greedy, 1, 2, vec![pt(0, &[0.5, 0.5])]).unwrap();
        assert!(ad.insert(pt(0, &[0.4, 0.4])).is_err());
        assert!(ad.delete(99).is_err());
    }
}
