//! The hitting-set baseline (HS).

use crate::StaticRms;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::{with_basis_prefix, Point};

/// HS (Agarwal et al., SEA 2017; Kumar & Sintos, ALENEX 2018).
///
/// The min-size k-RMS is transformed into a hitting-set instance: sample
/// utility vectors, and for a quality target ε let each tuple `p` "hit"
/// the vectors whose ε-approximate top-k contains `p`; the smallest
/// hitting set (equivalently, set cover on the transposed system, solved
/// greedily) is a `(k, ε)`-regret set. Following Section IV-A, the
/// size-budget adaptation binary-searches ε in `(0, 1)` for the smallest
/// value whose greedy cover fits `r`.
///
/// This is the *static* ancestor of FD-RMS's transform — the paper's
/// experiments show it matching FD-RMS's quality while being orders of
/// magnitude slower, because every database update recomputes everything.
#[derive(Debug, Clone)]
pub struct HittingSet {
    /// Number of sampled utility vectors.
    pub samples: usize,
    /// Binary-search resolution on ε.
    pub eps_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HittingSet {
    fn default() -> Self {
        Self {
            samples: 1500,
            eps_steps: 20,
            seed: 0x45,
        }
    }
}

impl HittingSet {
    /// Greedy cover of the sampled vectors by tuples within quality ε;
    /// `None` when more than `r` tuples are needed.
    fn try_cover(
        &self,
        full: &[Point],
        omegas: &[f64],
        scores: &[Vec<f64>],
        eps: f64,
        r: usize,
    ) -> Option<Vec<usize>> {
        let n_u = omegas.len();
        let mut uncovered = vec![true; n_u];
        let mut remaining = n_u;
        let mut chosen: Vec<usize> = Vec::new();
        while remaining > 0 {
            if chosen.len() == r {
                return None;
            }
            let mut best: Option<(usize, usize)> = None;
            for (i, row) in scores.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                let gain = (0..n_u)
                    .filter(|&j| uncovered[j] && row[j] >= (1.0 - eps) * omegas[j])
                    .count();
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            let (row, gain) = best?;
            if gain == 0 {
                return None;
            }
            for j in 0..n_u {
                if uncovered[j] && scores[row][j] >= (1.0 - eps) * omegas[j] {
                    uncovered[j] = false;
                    remaining -= 1;
                }
            }
            chosen.push(row);
        }
        let _ = full;
        Some(chosen)
    }
}

impl StaticRms for HittingSet {
    fn name(&self) -> &'static str {
        "HS"
    }

    fn supports_k(&self, _k: usize) -> bool {
        true
    }

    fn compute(&self, skyline: &[Point], full: &[Point], k: usize, r: usize) -> Vec<Point> {
        // Candidate tuples: skyline suffices for k = 1; the ω_k reference
        // always uses the full database (the paper stresses HS "must
        // consider all tuples … to validate that the maximum k-regret
        // ratio is at most ε when k > 1").
        let candidates = if k == 1 { skyline } else { full };
        if candidates.is_empty() || r == 0 {
            return Vec::new();
        }
        let d = candidates[0].dim();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dirs = with_basis_prefix(&mut rng, d, self.samples.max(d));

        // ω_k per sampled direction over the FULL database.
        let omegas: Vec<f64> = dirs
            .iter()
            .map(|u| rms_geom::kth_score(full, u, k.min(full.len())).unwrap_or(0.0))
            .collect();
        // Candidate × direction score matrix.
        let scores: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| dirs.iter().map(|u| u.score(p)).collect())
            .collect();

        // Binary search ε ∈ (0, 1): smaller ε is harder; find the
        // smallest feasible one.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut best: Option<Vec<usize>> = self.try_cover(full, &omegas, &scores, 1.0, r);
        for _ in 0..self.eps_steps {
            let mid = 0.5 * (lo + hi);
            match self.try_cover(full, &omegas, &scores, mid, r) {
                Some(rows) => {
                    best = Some(rows);
                    hi = mid;
                }
                None => {
                    lo = mid;
                }
            }
        }
        best.map(|rows| rows.into_iter().map(|i| candidates[i].clone()).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_eval::RegretEstimator;
    use rms_skyline::skyline;

    fn random_db(seed: u64, n: usize, d: usize) -> Vec<Point> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    #[test]
    fn hs_fits_budget_with_quality() {
        let db = random_db(1, 250, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 1);
        for r in [5, 10, 20] {
            let q = HittingSet::default().compute(&sky, &db, 1, r);
            assert!(q.len() <= r);
            let mrr = est.mrr(&db, &q, 1);
            assert!(mrr < 0.2, "r={r}: mrr {mrr}");
        }
    }

    #[test]
    fn hs_supports_k_above_one() {
        let db = random_db(2, 200, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 1);
        for k in [2, 4] {
            let q = HittingSet::default().compute(&sky, &db, k, 10);
            assert!(q.len() <= 10);
            let mrr = est.mrr(&db, &q, k);
            assert!(mrr < 0.2, "k={k}: mrr {mrr}");
        }
    }

    #[test]
    fn hs_quality_improves_with_r() {
        let db = random_db(3, 200, 4);
        let sky = skyline(&db);
        let est = RegretEstimator::new(4, 5_000, 2);
        let m_small = est.mrr(&db, &HittingSet::default().compute(&sky, &db, 1, 4), 1);
        let m_large = est.mrr(&db, &HittingSet::default().compute(&sky, &db, 1, 24), 1);
        assert!(m_large <= m_small + 0.02, "{m_large} > {m_small}");
    }

    #[test]
    fn hs_empty() {
        assert!(HittingSet::default().compute(&[], &[], 1, 5).is_empty());
        assert!(HittingSet::default().supports_k(4));
    }
}
