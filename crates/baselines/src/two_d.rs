//! Exact 1-RMS for two-dimensional databases.
//!
//! The paper's related-work taxonomy lists "dynamic programming algorithms
//! for k-RMS on two-dimensional data" ([4], [10], [11]) as the first class
//! of exact methods: 1-RMS is polynomial when `d = 2`. This module
//! implements the classic angular sweep formulation:
//!
//! For `d = 2` every utility vector is `u(θ) = (cos θ, sin θ)`,
//! `θ ∈ [0, π/2]`. For a fixed quality target ε, each tuple `p` satisfies
//! `rr(u(θ), {p}) ≤ ε` on a *contiguous* arc of angles (the predicate
//! `⟨u(θ), p⟩ ≥ (1 − ε)·ω(u(θ), P)` has at most one feasible interval
//! because both sides are single-crossing along the sweep). A set `Q` is a
//! `(1, ε)`-regret set iff its arcs cover `[0, π/2]`, so the smallest `Q`
//! for a given ε is a minimum interval cover — solvable greedily — and
//! the optimal ε for a budget `r` is found by binary search on ε.
//!
//! The arcs are evaluated on a dense angular grid rather than through
//! algebraic breakpoint computation; the grid resolution bounds the error
//! (window `π/2 / resolution`), which the tests size appropriately. This
//! gives an *effectively exact* reference for 2-D experiments and lets
//! integration tests compare FD-RMS against the true optimum.

use crate::StaticRms;
use rms_geom::Point;

/// Exact (grid-resolution-bounded) 1-RMS for `d = 2` via angular sweep +
/// interval covering + binary search on ε.
#[derive(Debug, Clone)]
pub struct TwoDSweep {
    /// Number of angular grid steps over `[0, π/2]`.
    pub resolution: usize,
    /// Binary-search iterations on ε.
    pub eps_steps: usize,
}

impl Default for TwoDSweep {
    fn default() -> Self {
        Self {
            resolution: 4096,
            eps_steps: 40,
        }
    }
}

impl TwoDSweep {
    /// The per-angle maxima `ω(u(θ), P)` over the grid.
    fn envelope(&self, points: &[Point]) -> Vec<f64> {
        let mut env = vec![0.0f64; self.resolution + 1];
        for (g, e) in env.iter_mut().enumerate() {
            let theta = std::f64::consts::FRAC_PI_2 * g as f64 / self.resolution as f64;
            let (c, s) = (theta.cos(), theta.sin());
            for p in points {
                let score = c * p.coord(0) + s * p.coord(1);
                if score > *e {
                    *e = score;
                }
            }
        }
        env
    }

    /// For quality `eps`, the arc `[lo, hi]` (grid indices, inclusive) on
    /// which `p` is an ε-approximate top-1, or `None` if empty.
    fn arc(&self, p: &Point, env: &[f64], eps: f64) -> Option<(usize, usize)> {
        let mut lo = None;
        let mut hi = None;
        for (g, &e) in env.iter().enumerate() {
            let theta = std::f64::consts::FRAC_PI_2 * g as f64 / self.resolution as f64;
            let score = theta.cos() * p.coord(0) + theta.sin() * p.coord(1);
            if score >= (1.0 - eps) * e - 1e-12 {
                if lo.is_none() {
                    lo = Some(g);
                }
                hi = Some(g);
            } else if lo.is_some() {
                break; // single-crossing: the feasible arc is contiguous
            }
        }
        lo.zip(hi)
    }

    /// Minimum number of arcs covering the whole grid, greedily; returns
    /// the chosen tuple indices or `None` if the grid cannot be covered.
    fn min_cover(arcs: &[(usize, usize)], grid_end: usize) -> Option<Vec<usize>> {
        let mut chosen = Vec::new();
        let mut covered_to: isize = -1;
        while covered_to < grid_end as isize {
            // Among arcs starting at or before covered_to + 1, take the one
            // reaching farthest.
            let need = (covered_to + 1) as usize;
            let best = arcs
                .iter()
                .enumerate()
                .filter(|(_, &(lo, _))| lo <= need)
                .max_by_key(|(_, &(_, hi))| hi);
            match best {
                Some((i, &(_, hi))) if hi as isize > covered_to => {
                    chosen.push(i);
                    covered_to = hi as isize;
                }
                _ => return None,
            }
        }
        Some(chosen)
    }

    /// The minimum-size `(1, eps)`-regret set for fixed ε (2-D only).
    pub fn min_size(&self, points: &[Point], eps: f64) -> Option<Vec<Point>> {
        if points.is_empty() {
            return Some(Vec::new());
        }
        assert!(points.iter().all(|p| p.dim() == 2), "TwoDSweep needs d = 2");
        let env = self.envelope(points);
        let mut owners = Vec::new();
        let mut arcs = Vec::new();
        for (i, p) in points.iter().enumerate() {
            if let Some(arc) = self.arc(p, &env, eps) {
                owners.push(i);
                arcs.push(arc);
            }
        }
        let chosen = Self::min_cover(&arcs, self.resolution)?;
        Some(
            chosen
                .into_iter()
                .map(|i| points[owners[i]].clone())
                .collect(),
        )
    }

    /// The optimal (up to grid/binary-search resolution) maximum regret
    /// ratio attainable with `r` tuples, and a witnessing subset.
    pub fn optimal(&self, points: &[Point], r: usize) -> (f64, Vec<Point>) {
        if points.is_empty() || r == 0 {
            return (if points.is_empty() { 0.0 } else { 1.0 }, Vec::new());
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut best: Option<(f64, Vec<Point>)> = None;
        for _ in 0..self.eps_steps {
            let mid = 0.5 * (lo + hi);
            match self.min_size(points, mid) {
                Some(q) if q.len() <= r => {
                    best = Some((mid, q));
                    hi = mid;
                }
                _ => lo = mid,
            }
        }
        best.unwrap_or_else(|| {
            let q = self
                .min_size(points, 1.0)
                .expect("eps = 1 covers trivially");
            (1.0, q.into_iter().take(r).collect())
        })
    }
}

impl StaticRms for TwoDSweep {
    fn name(&self) -> &'static str {
        "2D-Sweep"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        self.optimal(skyline, r).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_eval::RegretEstimator;
    use rms_skyline::skyline;

    fn fig1() -> Vec<Point> {
        [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ]
        .iter()
        .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
        .collect()
    }

    #[test]
    fn paper_example2_exact_optimum() {
        // Example 2: RMS(2,2) has Q* = {p1, p4} with ε* ≈ 0.05. For k = 1
        // on the same data the optimal 2-subset is also {p1, p4}: the
        // extreme tuples on both axes. Verify the sweep finds a 2-subset
        // with near-optimal 1-regret.
        let db = fig1();
        let (eps, q) = TwoDSweep::default().optimal(&db, 2);
        assert_eq!(q.len(), 2);
        let est = RegretEstimator::new(2, 50_000, 1);
        let mrr = est.mrr(&db, &q, 1);
        assert!(
            (mrr - eps).abs() < 0.01,
            "sweep eps {eps} vs measured {mrr}"
        );
        // Brute-force all 2-subsets to confirm optimality.
        let mut best = 1.0f64;
        for i in 0..db.len() {
            for j in i + 1..db.len() {
                let cand = vec![db[i].clone(), db[j].clone()];
                best = best.min(est.mrr(&db, &cand, 1));
            }
        }
        assert!(mrr <= best + 0.01, "sweep {mrr} vs brute {best}");
    }

    #[test]
    fn full_skyline_has_zero_optimum() {
        let db = fig1();
        let sky = skyline(&db);
        let (eps, q) = TwoDSweep::default().optimal(&db, sky.len());
        assert!(eps < 1e-6, "eps {eps}");
        assert!(q.len() <= sky.len());
    }

    #[test]
    fn min_size_monotone_in_eps() {
        let db = fig1();
        let sweep = TwoDSweep::default();
        let mut prev = usize::MAX;
        for eps in [0.0, 0.02, 0.05, 0.2, 0.5] {
            let q = sweep.min_size(&db, eps).unwrap();
            assert!(q.len() <= prev, "eps {eps}: {} > {prev}", q.len());
            prev = q.len();
        }
        assert_eq!(sweep.min_size(&db, 0.9999).unwrap().len(), 1);
    }

    #[test]
    fn beats_or_matches_greedy() {
        use crate::Greedy;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let db: Vec<Point> = (0..200)
            .map(|i| Point::new_unchecked(i, vec![rng.gen(), rng.gen()]))
            .collect();
        let sky = skyline(&db);
        let est = RegretEstimator::new(2, 20_000, 5);
        for r in [2, 4, 8] {
            let exact = est.mrr(&db, &TwoDSweep::default().compute(&sky, &db, 1, r), 1);
            let greedy = est.mrr(&db, &Greedy.compute(&sky, &db, 1, r), 1);
            assert!(
                exact <= greedy + 0.01,
                "r={r}: exact {exact} > greedy {greedy}"
            );
        }
    }

    #[test]
    fn empty_and_edge() {
        let sweep = TwoDSweep::default();
        assert!(sweep.compute(&[], &[], 1, 3).is_empty());
        let one = vec![Point::new_unchecked(0, vec![0.5, 0.5])];
        assert_eq!(sweep.compute(&one, &one, 1, 3).len(), 1);
        let (eps, q) = sweep.optimal(&one, 0);
        assert_eq!(eps, 1.0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "needs d = 2")]
    fn rejects_higher_dimensions() {
        let db = vec![Point::new_unchecked(0, vec![0.1, 0.2, 0.3])];
        let _ = TwoDSweep::default().min_size(&db, 0.1);
    }
}
