//! ε-kernel-based baselines: EPS-KERNEL and SPHERE.

use crate::StaticRms;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::{with_basis_prefix, Point, Utility};

/// Per-direction extreme-tuple collection: for each direction, take the
/// top-k tuples; the union (deduplicated) is a coreset approximating all
/// directional extrema — the practical ε-kernel construction of Agarwal
/// et al. (the direction count plays the role of `1/δ^{(d−1)/2}`).
fn directional_coreset(full: &[Point], dirs: &[Utility], k: usize) -> Vec<Point> {
    let mut picked: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for u in dirs {
        for rp in rms_geom::top_k(full, u, k) {
            picked.insert(rp.id);
        }
    }
    full.iter()
        .filter(|p| picked.contains(&p.id()))
        .cloned()
        .collect()
}

/// ε-KERNEL (Agarwal et al. [2]; used for k-RMS in [3], [10], [19]).
///
/// The min-size formulation returns the smallest coreset whose maximum
/// k-regret is at most ε; following Section IV-A we adapt it to the
/// size-budget formulation by binary searching the direction count (a
/// monotone proxy for 1/ε) so the coreset size is as large as possible
/// without exceeding `r`.
#[derive(Debug, Clone)]
pub struct EpsKernel {
    /// Maximum number of sampled directions tried by the binary search.
    pub max_directions: usize,
    /// RNG seed for direction sampling.
    pub seed: u64,
}

impl Default for EpsKernel {
    fn default() -> Self {
        Self {
            max_directions: 4096,
            seed: 0xE9,
        }
    }
}

impl StaticRms for EpsKernel {
    fn name(&self) -> &'static str {
        "eps-Kernel"
    }

    fn supports_k(&self, _k: usize) -> bool {
        true
    }

    fn compute(&self, skyline: &[Point], full: &[Point], k: usize, r: usize) -> Vec<Point> {
        // For k = 1 the kernel can be built on the skyline; k > 1 needs
        // the full database (the paper notes this cost in Fig. 7).
        let base = if k == 1 { skyline } else { full };
        if base.is_empty() || r == 0 {
            return Vec::new();
        }
        let d = base[0].dim();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = with_basis_prefix(&mut rng, d, self.max_directions.max(d));
        // Binary search the largest direction count whose coreset fits r.
        let (mut lo, mut hi) = (1usize, pool.len());
        let mut best: Vec<Point> = directional_coreset(base, &pool[..d.min(pool.len())], k)
            .into_iter()
            .take(r)
            .collect();
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let coreset = directional_coreset(base, &pool[..mid], k);
            if coreset.len() <= r {
                best = coreset;
                lo = mid + 1;
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1;
            }
        }
        best
    }
}

/// SPHERE (Xie et al., SIGMOD 2018): "a combination of ε-kernel and
/// GREEDY" for 1-RMS with a restriction-free bound.
///
/// Construction: the `d` basis-direction extremes are always kept; the
/// remaining budget is filled with the extreme tuples of `r − d`
/// well-spread directions (farthest-point sampling on the direction pool
/// stands in for the original's structured sphere partition — same
/// coverage intent, see DESIGN.md §2), then deduplicated and topped up
/// greedily on the worst uncovered sampled direction.
#[derive(Debug, Clone)]
pub struct Sphere {
    /// Size of the direction pool.
    pub pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Sphere {
    fn default() -> Self {
        Self {
            pool: 2000,
            seed: 0x5B,
        }
    }
}

impl StaticRms for Sphere {
    fn name(&self) -> &'static str {
        "Sphere"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        if skyline.is_empty() || r == 0 {
            return Vec::new();
        }
        let d = skyline[0].dim();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pool = with_basis_prefix(&mut rng, d, self.pool.max(d));

        let mut chosen: Vec<Point> = Vec::with_capacity(r);
        let mut chosen_ids = std::collections::HashSet::new();
        let add = |p: &Point, chosen: &mut Vec<Point>, ids: &mut std::collections::HashSet<u64>| {
            if chosen.len() < r && ids.insert(p.id()) {
                chosen.push(p.clone());
            }
        };

        // 1. Basis extremes.
        for u in pool.iter().take(d) {
            if let Some(t) = rms_geom::top1(skyline, u) {
                let p = skyline.iter().find(|p| p.id() == t.id).expect("live");
                add(p, &mut chosen, &mut chosen_ids);
            }
        }

        // 2. Farthest-point-sampled directions fill the budget.
        let mut picked_dirs: Vec<usize> = vec![0];
        while chosen.len() < r && picked_dirs.len() < pool.len() {
            // Farthest direction from everything picked so far.
            let next = (0..pool.len())
                .filter(|i| !picked_dirs.contains(i))
                .max_by(|&a, &b| {
                    let da = picked_dirs
                        .iter()
                        .map(|&p| pool[a].distance(&pool[p]))
                        .fold(f64::INFINITY, f64::min);
                    let db = picked_dirs
                        .iter()
                        .map(|&p| pool[b].distance(&pool[p]))
                        .fold(f64::INFINITY, f64::min);
                    da.partial_cmp(&db).expect("finite")
                });
            let Some(next) = next else { break };
            picked_dirs.push(next);
            if let Some(t) = rms_geom::top1(skyline, &pool[next]) {
                let p = skyline.iter().find(|p| p.id() == t.id).expect("live");
                add(p, &mut chosen, &mut chosen_ids);
            }
        }

        // 3. Greedy top-up on the worst sampled direction (the GREEDY
        // ingredient of SPHERE).
        while chosen.len() < r {
            let mut worst: Option<(&Utility, f64)> = None;
            for u in &pool {
                let omega = rms_geom::top1(skyline, u).map_or(0.0, |t| t.score);
                let best_q = chosen
                    .iter()
                    .map(|p| u.score(p))
                    .fold(f64::NEG_INFINITY, f64::max);
                let rr = if omega <= 0.0 {
                    0.0
                } else {
                    (1.0 - best_q / omega).max(0.0)
                };
                if worst.is_none_or(|(_, w)| rr > w) {
                    worst = Some((u, rr));
                }
            }
            match worst {
                Some((u, rr)) if rr > 1e-12 => {
                    let t = rms_geom::top1(skyline, u).expect("nonempty");
                    let p = skyline.iter().find(|p| p.id() == t.id).expect("live");
                    if chosen_ids.insert(p.id()) {
                        chosen.push(p.clone());
                    } else {
                        break; // already chosen ⇒ regret is stale-zero
                    }
                }
                _ => break,
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_eval::RegretEstimator;
    use rms_skyline::skyline;

    fn random_db(seed: u64, n: usize, d: usize) -> Vec<Point> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    #[test]
    fn kernel_fits_budget_and_has_quality() {
        let db = random_db(1, 300, 4);
        let sky = skyline(&db);
        let est = RegretEstimator::new(4, 5_000, 3);
        for r in [8, 16, 32] {
            let q = EpsKernel::default().compute(&sky, &db, 1, r);
            assert!(q.len() <= r, "r={r}, got {}", q.len());
            let mrr = est.mrr(&db, &q, 1);
            assert!(mrr < 0.4, "r={r}: mrr {mrr}");
        }
    }

    #[test]
    fn kernel_supports_k() {
        let db = random_db(2, 200, 3);
        let sky = skyline(&db);
        let q = EpsKernel::default().compute(&sky, &db, 3, 12);
        assert!(q.len() <= 12);
        let est = RegretEstimator::new(3, 5_000, 3);
        assert!(est.mrr(&db, &q, 3) < 0.3);
    }

    #[test]
    fn kernel_larger_budget_not_worse() {
        let db = random_db(3, 250, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 3);
        let small = est.mrr(&db, &EpsKernel::default().compute(&sky, &db, 1, 5), 1);
        let large = est.mrr(&db, &EpsKernel::default().compute(&sky, &db, 1, 30), 1);
        assert!(large <= small + 0.02, "{large} > {small}");
    }

    #[test]
    fn sphere_includes_basis_extremes() {
        let db = random_db(4, 200, 3);
        let sky = skyline(&db);
        let q = Sphere::default().compute(&sky, &db, 1, 10);
        assert!(q.len() <= 10);
        // Each basis direction's best tuple must be in Q.
        for i in 0..3 {
            let u = Utility::basis(3, i);
            let best = rms_geom::top1(&sky, &u).unwrap();
            assert!(
                q.iter().any(|p| p.id() == best.id),
                "basis extreme {i} missing"
            );
        }
    }

    #[test]
    fn sphere_quality_close_to_greedy() {
        let db = random_db(5, 200, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 6);
        let qs = Sphere::default().compute(&sky, &db, 1, 12);
        let mrr = est.mrr(&db, &qs, 1);
        assert!(mrr < 0.12, "Sphere mrr {mrr}");
    }

    #[test]
    fn empty_and_edge() {
        assert!(EpsKernel::default().compute(&[], &[], 1, 5).is_empty());
        assert!(Sphere::default().compute(&[], &[], 1, 5).is_empty());
        let one = vec![Point::new_unchecked(0, vec![0.4, 0.6])];
        assert_eq!(Sphere::default().compute(&one, &one, 1, 4).len(), 1);
        assert_eq!(EpsKernel::default().compute(&one, &one, 1, 4).len(), 1);
    }
}
