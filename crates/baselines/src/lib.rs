//! Static k-RMS baselines (Section IV-A of the paper).
//!
//! Clean-room Rust implementations of every algorithm FD-RMS is compared
//! against, plus [`DynamicAdapter`] — the harness that makes a static
//! algorithm "dynamic" the way the paper's experiments do: *"they re-run
//! from scratch to compute the up-to-date k-RMS result once the skyline
//! is updated by any insertion or deletion."*
//!
//! | name | paper ref | k > 1? | notes |
//! |------|-----------|--------|-------|
//! | [`Greedy`] | Nanongkai et al. PVLDB'10 [22] | no | adds the max-regret witness each round (exact LP regret) |
//! | [`GreedyStar`] | Chester et al. PVLDB'14 [11] | yes | randomized greedy over sampled utilities |
//! | [`GeoGreedy`] | Peng & Wong ICDE'14 [23] | no | Greedy restricted to happy points (LP hull-vertex test; see DESIGN.md §2) |
//! | [`DmmRrms`] | Asudeh et al. SIGMOD'17 [4] | no | discretized matrix min-max via threshold binary search + set cover |
//! | [`DmmGreedy`] | Asudeh et al. SIGMOD'17 [4] | no | greedy on the discretized regret matrix |
//! | [`EpsKernel`] | Agarwal et al. [2,3,10] | yes | direction-net extreme-point coreset, ε binary-searched to fit `r` |
//! | [`HittingSet`] | Agarwal et al. SEA'17 / Kumar & Sintos ALENEX'18 [3,19] | yes | sampled-utility set cover, ε binary-searched to fit `r` |
//! | [`Sphere`] | Xie et al. SIGMOD'18 [32] | no | basis + spread directions + greedy fill |
//! | [`TwoDSweep`] | the d = 2 exact family [4], [10], [11] | no | angular sweep + interval cover; effectively optimal for d = 2 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod dmm;
mod greedy;
mod kernel;
mod sampled;
mod two_d;

pub use adapter::DynamicAdapter;
pub use dmm::{DmmGreedy, DmmRrms};
pub use greedy::{GeoGreedy, Greedy, GreedyStar};
pub use kernel::{EpsKernel, Sphere};
pub use sampled::HittingSet;
pub use two_d::TwoDSweep;

use rms_geom::Point;

/// A static k-RMS algorithm: given the database (and its skyline), return
/// a result of at most `r` tuples.
pub trait StaticRms {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Whether the algorithm supports rank depths `k > 1`.
    fn supports_k(&self, k: usize) -> bool;

    /// Computes a k-RMS result of size at most `r`.
    ///
    /// `skyline` is the Pareto-optimal subset of `full`; 1-RMS algorithms
    /// work on it exclusively, while `k > 1` algorithms must examine
    /// `full` (the k-th ranked tuple need not be on the skyline).
    fn compute(&self, skyline: &[Point], full: &[Point], k: usize, r: usize) -> Vec<Point>;
}
