//! Discretized matrix min-max baselines (Asudeh et al., SIGMOD 2017).
//!
//! Both algorithms discretize the utility space into `N` sampled
//! directions and work on the regret matrix `R[p][u] = 1 −
//! ⟨u, p⟩ / ω(u, P)` over the skyline. Selecting `r` rows to minimise
//! `max_u min_{p ∈ Q} R[p][u]` is the discretized 1-RMS.
//!
//! * [`DmmRrms`] binary-searches the optimal threshold among the matrix
//!   entries; feasibility of a threshold `ε` is a set-cover question
//!   ("can `r` tuples cover every direction within regret `ε`?") answered
//!   greedily.
//! * [`DmmGreedy`] greedily adds the row that most reduces the current
//!   max-min column regret.
//!
//! The paper observes both suffer at `d > 7` (the discretization becomes
//! too sparse) and at `r ≥ 50`; the matrix of `|skyline| × N` entries is
//! also the memory hog the paper reports. Our implementation keeps those
//! characteristics.

use crate::StaticRms;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::{with_basis_prefix, Point};

/// Builds the regret matrix: `mat[row][col] = rr(u_col, {p_row})` over the
/// candidate tuples, plus each column's top-score for normalisation.
fn regret_matrix(candidates: &[Point], n_dirs: usize, seed: u64) -> Vec<Vec<f64>> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let d = candidates[0].dim();
    let mut rng = StdRng::seed_from_u64(seed);
    let dirs = with_basis_prefix(&mut rng, d, n_dirs.max(d));
    let mut omega = vec![0.0f64; dirs.len()];
    let mut scores = vec![vec![0.0f64; dirs.len()]; candidates.len()];
    for (j, u) in dirs.iter().enumerate() {
        for (i, p) in candidates.iter().enumerate() {
            let s = u.score(p);
            scores[i][j] = s;
            if s > omega[j] {
                omega[j] = s;
            }
        }
    }
    for row in &mut scores {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = if omega[j] <= 0.0 {
                0.0
            } else {
                (1.0 - *cell / omega[j]).max(0.0)
            };
        }
    }
    scores
}

/// Greedy set cover feasibility: can `r` rows bring every column within
/// `eps`? Returns the chosen row indices when feasible.
fn cover_within(mat: &[Vec<f64>], eps: f64, r: usize) -> Option<Vec<usize>> {
    let n_cols = mat.first().map_or(0, Vec::len);
    let mut uncovered: Vec<bool> = vec![true; n_cols];
    let mut remaining = n_cols;
    let mut chosen = Vec::new();
    while remaining > 0 {
        if chosen.len() == r {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (row, gain)
        for (i, row) in mat.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let gain = row
                .iter()
                .zip(uncovered.iter())
                .filter(|(&v, &u)| u && v <= eps)
                .count();
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let (row, gain) = best?;
        if gain == 0 {
            return None;
        }
        for (j, u) in uncovered.iter_mut().enumerate() {
            if *u && mat[row][j] <= eps {
                *u = false;
                remaining -= 1;
            }
        }
        chosen.push(row);
    }
    Some(chosen)
}

/// DMM-RRMS: optimal threshold on the discretized matrix via binary search
/// over the distinct matrix entries.
#[derive(Debug, Clone)]
pub struct DmmRrms {
    /// Number of discretized directions `N`.
    pub directions: usize,
    /// RNG seed for direction sampling.
    pub seed: u64,
}

impl Default for DmmRrms {
    fn default() -> Self {
        Self {
            directions: 1000,
            seed: 0xD33,
        }
    }
}

impl StaticRms for DmmRrms {
    fn name(&self) -> &'static str {
        "DMM-RRMS"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        if skyline.is_empty() || r == 0 {
            return Vec::new();
        }
        let mat = regret_matrix(skyline, self.directions, self.seed);
        // Candidate thresholds: all distinct matrix values (the optimum is
        // always attained at one of them).
        let mut values: Vec<f64> = mat.iter().flatten().copied().collect();
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        // Binary search the smallest feasible threshold.
        let (mut lo, mut hi) = (0usize, values.len() - 1);
        let mut best: Option<Vec<usize>> = None;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            match cover_within(&mat, values[mid], r) {
                Some(rows) => {
                    best = Some(rows);
                    if mid == 0 {
                        break;
                    }
                    hi = mid - 1;
                }
                None => {
                    lo = mid + 1;
                }
            }
        }
        best.map(|rows| rows.into_iter().map(|i| skyline[i].clone()).collect())
            .unwrap_or_else(|| skyline.iter().take(r).cloned().collect())
    }
}

/// DMM-GREEDY: greedy row selection on the discretized matrix.
#[derive(Debug, Clone)]
pub struct DmmGreedy {
    /// Number of discretized directions `N`.
    pub directions: usize,
    /// RNG seed for direction sampling.
    pub seed: u64,
}

impl Default for DmmGreedy {
    fn default() -> Self {
        Self {
            directions: 1000,
            seed: 0xD33,
        }
    }
}

impl StaticRms for DmmGreedy {
    fn name(&self) -> &'static str {
        "DMM-Greedy"
    }

    fn supports_k(&self, k: usize) -> bool {
        k == 1
    }

    fn compute(&self, skyline: &[Point], _full: &[Point], _k: usize, r: usize) -> Vec<Point> {
        if skyline.is_empty() || r == 0 {
            return Vec::new();
        }
        let mat = regret_matrix(skyline, self.directions, self.seed);
        let n_cols = mat[0].len();
        // col_min[j] = min over chosen rows of mat[row][j].
        let mut col_min = vec![f64::INFINITY; n_cols];
        let mut chosen: Vec<usize> = Vec::with_capacity(r);
        for _ in 0..r.min(mat.len()) {
            // Pick the row minimising the resulting max over columns.
            let mut best: Option<(usize, f64)> = None;
            for (i, row) in mat.iter().enumerate() {
                if chosen.contains(&i) {
                    continue;
                }
                let new_max = row
                    .iter()
                    .zip(col_min.iter())
                    .map(|(&v, &m)| v.min(m))
                    .fold(0.0f64, f64::max);
                if best.is_none_or(|(_, b)| new_max < b) {
                    best = Some((i, new_max));
                }
            }
            let Some((row, _)) = best else { break };
            for (j, m) in col_min.iter_mut().enumerate() {
                *m = m.min(mat[row][j]);
            }
            chosen.push(row);
            if col_min.iter().all(|&m| m <= 1e-12) {
                break;
            }
        }
        chosen.into_iter().map(|i| skyline[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_eval::RegretEstimator;
    use rms_skyline::skyline;

    fn random_db(seed: u64, n: usize, d: usize) -> Vec<Point> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
            .collect()
    }

    #[test]
    fn matrix_entries_are_regrets() {
        let db = random_db(1, 40, 3);
        let mat = regret_matrix(&db, 100, 7);
        assert_eq!(mat.len(), 40);
        for row in &mat {
            assert_eq!(row.len(), 100);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Every column has some tuple with zero regret (the top-1).
        let n_cols = mat[0].len();
        for j in 0..n_cols {
            let best = mat.iter().map(|r| r[j]).fold(f64::INFINITY, f64::min);
            assert!(best < 1e-9, "column {j}: best {best}");
        }
    }

    #[test]
    fn cover_within_respects_budget() {
        let mat = vec![
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ];
        assert!(cover_within(&mat, 0.01, 2).is_none());
        assert_eq!(cover_within(&mat, 0.01, 3).unwrap().len(), 3);
        assert!(cover_within(&mat, 0.6, 1).is_some());
    }

    #[test]
    fn dmm_rrms_quality() {
        let db = random_db(3, 150, 3);
        let sky = skyline(&db);
        let q = DmmRrms {
            directions: 300,
            seed: 5,
        }
        .compute(&sky, &db, 1, 10);
        assert!(q.len() <= 10);
        let est = RegretEstimator::new(3, 5_000, 2);
        let mrr = est.mrr(&db, &q, 1);
        assert!(mrr < 0.15, "mrr {mrr}");
    }

    #[test]
    fn dmm_greedy_quality_and_monotonicity() {
        let db = random_db(4, 150, 3);
        let sky = skyline(&db);
        let est = RegretEstimator::new(3, 5_000, 2);
        let algo = DmmGreedy {
            directions: 300,
            seed: 5,
        };
        let mut prev = 1.0f64;
        for r in [2, 5, 10] {
            let q = algo.compute(&sky, &db, 1, r);
            assert!(q.len() <= r);
            let mrr = est.mrr(&db, &q, 1);
            assert!(mrr <= prev + 0.02, "r={r}");
            prev = mrr;
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(DmmRrms::default().compute(&[], &[], 1, 5).is_empty());
        assert!(DmmGreedy::default().compute(&[], &[], 1, 5).is_empty());
    }

    #[test]
    fn k_support() {
        assert!(!DmmRrms::default().supports_k(2));
        assert!(!DmmGreedy::default().supports_k(2));
    }
}
