//! Loopback round-trip of the TCP line protocol, including
//! malformed-input error replies and graceful shutdown.
//!
//! The first two tests speak raw v1 byte sequences (no `HELLO`) against
//! the v2 server — they *are* the back-compat pin: every v1 verb and
//! reply must stay byte-identical. The later tests cover the v2 verbs
//! (`HELLO`/`BATCH`/`SUBSCRIBE`/`METRICS`), both raw and through the
//! typed `rms-client`.

use fdrms::FdRms;
use rms_client::{ClientOp, RmsClient};
use rms_geom::Point;
use rms_serve::{RmsServer, RmsService, ServeConfig, ShardedRmsService};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }
}

/// Extracts `key=value` fields from an `OK key=… key=…` reply.
fn field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
}

/// Reads a full `METRICS` reply — the `OK metrics lines=N` header plus
/// exactly N raw exposition lines — and returns the exposition body.
fn fetch_metrics(client: &mut Client) -> String {
    let header = client.roundtrip("METRICS");
    assert!(header.starts_with("OK metrics lines="), "{header}");
    let n: usize = field(&header, "lines").unwrap().parse().unwrap();
    let mut body = String::new();
    for _ in 0..n {
        let mut line = String::new();
        assert!(client.reader.read_line(&mut line).unwrap() > 0, "body EOF");
        body.push_str(&line);
    }
    body
}

/// Distinct metric family names, read off the `# TYPE` comment lines.
fn families(body: &str) -> std::collections::BTreeSet<String> {
    body.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

/// Sums every sample of `name` across all label sets. Histogram series
/// (`_bucket`/`_sum`/`_count`) are distinct names to this helper.
fn family_total(body: &str, name: &str) -> f64 {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (series, value) = l.rsplit_once(' ')?;
            let base = series.split('{').next().unwrap();
            (base == name).then(|| value.parse::<f64>().unwrap())
        })
        .sum()
}

#[test]
fn loopback_protocol_round_trip() {
    let d = 2;
    let initial: Vec<Point> = (0..50)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / 50.0, 1.0 - (i as f64) / 50.0]))
        .collect();
    let service = RmsService::start(
        FdRms::builder(d).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr);

    // Reads work immediately off the epoch-0 snapshot.
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epoch="), "{reply}");
    assert_eq!(field(&reply, "n"), Some("50"));

    // Mutations are acknowledged at enqueue time…
    assert_eq!(client.roundtrip("INSERT 5000 0.9 0.9"), "OK queued");
    assert_eq!(client.roundtrip("DELETE 0"), "OK queued");
    assert_eq!(client.roundtrip("UPDATE 1 0.5 0.6"), "OK queued");
    // …and an invalid op (unknown id) is accepted here but rejected by
    // engine validation, visible in STATS.
    assert_eq!(client.roundtrip("DELETE 99999"), "OK queued");

    // Await visibility: ops_applied=3, ops_rejected=1.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let reply = client.roundtrip("STATS");
        assert!(reply.starts_with("OK "), "{reply}");
        if field(&reply, "ops_applied") == Some("3") && field(&reply, "ops_rejected") == Some("1") {
            break reply;
        }
        assert!(
            Instant::now() < deadline,
            "ops never became visible: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(field(&stats, "n"), Some("50")); // 50 + 1 − 1
    let epoch: u64 = field(&stats, "epoch").unwrap().parse().unwrap();
    assert!(epoch >= 1);

    // Malformed input never kills the connection: each bad line gets an
    // ERR reply and the next request still works.
    for bad in [
        "FROB",
        "INSERT",
        "INSERT 1 0.5",
        "INSERT x 0.5 0.5",
        "INSERT 2 0.5 nope",
        "INSERT 2 -1 0.5",
        "DELETE",
        "DELETE 1 2",
        "QUERY now",
    ] {
        let reply = client.roundtrip(bad);
        assert!(reply.starts_with("ERR "), "`{bad}` → {reply}");
    }
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epoch="), "{reply}");

    // A second concurrent connection shares the same service.
    let mut other = Client::connect(addr);
    assert!(other.roundtrip("STATS").starts_with("OK "));

    // Graceful shutdown: the queue drains and the engine comes back.
    assert_eq!(client.roundtrip("SHUTDOWN"), "OK shutting down");
    let fds = server.join().expect("server thread");
    let [fd] = fds.as_slice() else {
        panic!("single backend returns one engine");
    };
    assert!(fd.contains(5000));
    assert!(!fd.contains(0));
    fd.check_invariants().unwrap();
}

#[test]
fn loopback_round_trip_sharded() {
    let d = 2;
    let initial: Vec<Point> = (0..60)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / 60.0, 1.0 - (i as f64) / 60.0]))
        .collect();
    let service = rms_serve::ShardedRmsService::start(
        FdRms::builder(d).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
        3,
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr);

    // Sharded reads report the per-shard epoch vector and the merged
    // solution, trimmed to r.
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epochs="), "{reply}");
    assert_eq!(field(&reply, "epochs"), Some("0,0,0"));
    assert_eq!(field(&reply, "n"), Some("60"));
    let r: usize = field(&reply, "r").unwrap().parse().unwrap();
    assert!(r <= 4, "merged solution exceeds budget: {reply}");

    // Mutations route by id; ids 300, 301, 302 hit three distinct shards.
    for id in 300..303 {
        assert_eq!(
            client.roundtrip(&format!("INSERT {id} 0.9 0.9")),
            "OK queued"
        );
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = client.roundtrip("STATS");
        assert!(reply.starts_with("OK epochs="), "{reply}");
        assert_eq!(field(&reply, "shards"), Some("3"));
        if field(&reply, "ops_applied") == Some("3") {
            assert_eq!(field(&reply, "n"), Some("63"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ops never became visible: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    assert_eq!(client.roundtrip("SHUTDOWN"), "OK shutting down");
    let fds = server.join().expect("server thread");
    assert_eq!(fds.len(), 3);
    for (i, fd) in fds.iter().enumerate() {
        fd.check_invariants().unwrap();
        assert!(fd.contains(300 + i as u64), "shard {i} owns id {}", 300 + i);
    }
}

fn spawn_single(n: u64) -> (std::net::SocketAddr, std::thread::JoinHandle<Vec<FdRms>>) {
    let initial: Vec<Point> = (0..n)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / n as f64, 1.0 - (i as f64) / n as f64]))
        .collect();
    let service = RmsService::start(
        FdRms::builder(2).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    (
        addr,
        std::thread::spawn(move || server.run().expect("server run")),
    )
}

/// v2 session over raw lines: HELLO negotiation, version gating of the
/// v2 verbs, BATCH framing (single ack, all-or-nothing on parse errors),
/// and the error paths that must preserve framing.
#[test]
fn v2_hello_and_batch_raw() {
    let (addr, server) = spawn_single(50);
    let mut client = Client::connect(addr);

    // v2 verbs are gated until HELLO v2 upgrades the session.
    let reply = client.roundtrip("BATCH 2");
    assert!(
        reply.starts_with("ERR BATCH requires protocol v2"),
        "{reply}"
    );
    let reply = client.roundtrip("SUBSCRIBE");
    assert!(
        reply.starts_with("ERR SUBSCRIBE requires protocol v2"),
        "{reply}"
    );

    // Negotiation: the server caps at v2 and advertises its parameters.
    let reply = client.roundtrip("HELLO v7");
    assert_eq!(reply, "OK v2 dim=2 k=1 r=4 shards=1");
    // Re-negotiating down works too (and v1 re-locks the v2 verbs).
    assert_eq!(client.roundtrip("HELLO v1"), "OK v1 dim=2 k=1 r=4 shards=1");
    assert!(client.roundtrip("BATCH 1").starts_with("ERR "), "re-locked");
    assert_eq!(client.roundtrip("HELLO v2"), "OK v2 dim=2 k=1 r=4 shards=1");

    // A pipelined batch: n lines, one ack.
    writeln!(
        client.writer,
        "BATCH 3\nINSERT 900 0.9 0.9\nDELETE 0\nUPDATE 1 0.5 0.6"
    )
    .unwrap();
    let mut line = String::new();
    client.reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK queued n=3");

    // A malformed line drops the whole batch after consuming it — the
    // next request parses from a clean framing boundary.
    writeln!(
        client.writer,
        "BATCH 3\nINSERT 901 0.9 0.9\nFROB x\nDELETE 2"
    )
    .unwrap();
    line.clear();
    client.reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR line 2:"), "{line}");
    assert!(line.contains("batch dropped"), "{line}");

    // Nothing from the dropped batch was submitted: 901 never appears,
    // id 2 stays live.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = client.roundtrip("STATS");
        if field(&reply, "ops_applied") == Some("3") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "batch ops never applied: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(client.roundtrip("STATS").contains("ops_rejected=0"));

    // Non-mutation verbs are refused inside a batch (also all-or-nothing).
    writeln!(client.writer, "BATCH 2\nQUERY\nINSERT 902 0.9 0.9").unwrap();
    line.clear();
    client.reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("ERR line 1: only INSERT/DELETE/UPDATE"),
        "{line}"
    );

    // An oversized header closes the connection (framing cannot be
    // preserved) — with an explanatory error first.
    writeln!(client.writer, "BATCH 1000000").unwrap();
    line.clear();
    client.reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR BATCH size"), "{line}");
    line.clear();
    assert_eq!(client.reader.read_line(&mut line).unwrap(), 0, "closed");

    let mut other = Client::connect(addr);
    assert_eq!(other.roundtrip("SHUTDOWN"), "OK shutting down");
    let fds = server.join().expect("server thread");
    let fd = &fds[0];
    assert!(fd.contains(900));
    assert!(!fd.contains(0));
    assert!(!fd.contains(901), "dropped batch must submit nothing");
    assert!(fd.contains(2), "dropped batch must submit nothing");
    fd.check_invariants().unwrap();
}

/// A BATCH header the server cannot honor must close the connection in
/// a v2 session (the announced op lines can neither be consumed nor
/// reinterpreted), while a v1 session — which has no batch framing —
/// just gets an ERR and keeps going.
#[test]
fn unusable_batch_header_closes_v2_sessions_only() {
    let (addr, server) = spawn_single(30);

    // v2 session: an overflowing count is unparseable framing → close.
    let mut v2 = Client::connect(addr);
    assert!(v2.roundtrip("HELLO v2").starts_with("OK v2"));
    let reply = v2.roundtrip("BATCH 18446744073709551616");
    assert!(reply.starts_with("ERR "), "{reply}");
    assert!(reply.contains("closing connection"), "{reply}");
    let mut line = String::new();
    assert_eq!(v2.reader.read_line(&mut line).unwrap(), 0, "closed");

    // v1 session: the same line is just an erroneous request; the
    // connection stays usable and each following line gets its reply.
    let mut v1 = Client::connect(addr);
    let reply = v1.roundtrip("BATCH 18446744073709551616");
    assert!(reply.starts_with("ERR "), "{reply}");
    assert!(!reply.contains("closing connection"), "{reply}");
    assert!(v1.roundtrip("QUERY").starts_with("OK epoch="));

    assert_eq!(v1.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("server thread");
}

/// SUBSCRIBE over raw lines: the ack carries the starting solution, the
/// pushed DELTA lines reconstruct the final QUERY exactly, and the
/// stream closes at server shutdown.
#[test]
fn v2_subscribe_raw_stream_reconstructs_query() {
    let (addr, server) = spawn_single(40);

    let mut sub = Client::connect(addr);
    assert!(sub.roundtrip("HELLO v2").starts_with("OK v2"));
    let ack = sub.roundtrip("SUBSCRIBE every=1");
    assert!(ack.starts_with("OK subscribed every=1 epoch="), "{ack}");
    let mut ids: std::collections::BTreeSet<u64> = match field(&ack, "ids") {
        Some("") | None => Default::default(),
        Some(raw) => raw.split(',').map(|t| t.parse().unwrap()).collect(),
    };

    let mut writer = Client::connect(addr);
    for i in 0..20 {
        assert_eq!(
            writer.roundtrip(&format!("INSERT {} 0.9{} 0.9", 500 + i, i)),
            "OK queued"
        );
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let final_ids = loop {
        let stats = writer.roundtrip("STATS");
        if field(&stats, "ops_applied") == Some("20") {
            let query = writer.roundtrip("QUERY");
            break field(&query, "ids").unwrap().to_string();
        }
        assert!(Instant::now() < deadline, "ops never applied: {stats}");
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(writer.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("server thread");

    // Drain the push stream to EOF, applying every delta.
    let mut line = String::new();
    loop {
        line.clear();
        if sub.reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let line = line.trim_end();
        assert!(line.starts_with("DELTA epoch="), "{line}");
        for tok in line.split_whitespace() {
            if let Some(added) = tok.strip_prefix('+') {
                for id in added.split(',') {
                    ids.insert(id.parse().unwrap());
                }
            } else if let Some(removed) = tok.strip_prefix('-') {
                for id in removed.split(',') {
                    ids.remove(&id.parse::<u64>().unwrap());
                }
            }
        }
    }
    let reconstructed: Vec<String> = ids.iter().map(u64::to_string).collect();
    assert_eq!(reconstructed.join(","), final_ids);
}

/// The typed client against both backends: negotiation, batch ingest,
/// query/stats, and a subscription whose replay matches the final
/// QUERY — the protocol's second, independent implementation driving
/// the first.
#[test]
fn rms_client_end_to_end_single_and_sharded() {
    for shards in [1usize, 3] {
        let d = 2;
        let initial: Vec<Point> = (0..60)
            .map(|i| Point::new_unchecked(i, vec![(i as f64) / 60.0, 1.0 - (i as f64) / 60.0]))
            .collect();
        let builder = FdRms::builder(d).r(4).max_utilities(64).seed(3);
        let server = if shards == 1 {
            let service = RmsService::start(builder, initial, ServeConfig::default()).unwrap();
            RmsServer::bind("127.0.0.1:0", service).map(|s| {
                let addr = s.local_addr().unwrap();
                (addr, std::thread::spawn(move || s.run().expect("run")))
            })
        } else {
            let service =
                ShardedRmsService::start(builder, initial, ServeConfig::default(), shards).unwrap();
            RmsServer::bind("127.0.0.1:0", service).map(|s| {
                let addr = s.local_addr().unwrap();
                (addr, std::thread::spawn(move || s.run().expect("run")))
            })
        };
        let (addr, server) = server.expect("bind ephemeral port");

        let sub_client = RmsClient::connect(addr).expect("subscriber connect");
        assert_eq!(sub_client.hello().shards, shards);
        // every=3 exercises the server-side coalescing (SnapshotDelta::
        // merge + idle flush) rather than the one-line-per-epoch path the
        // raw test covers; replay must still reconstruct exactly.
        let subscriber = std::thread::spawn(move || {
            let mut sub = sub_client.subscribe(3).expect("subscribe");
            while let Some(delta) = sub.next_delta().expect("delta stream") {
                assert!(delta.version > delta.from, "versions advance");
            }
            sub.ids()
        });

        let mut client = RmsClient::connect(addr).expect("client connect");
        let hello = client.hello();
        assert_eq!(
            (hello.version, hello.dim, hello.k, hello.r, hello.shards),
            (2, d, 1, 4, shards)
        );

        // Mixed single + batched ingest through the typed surface.
        client.insert(700, &[0.95, 0.9]).expect("insert");
        let ops: Vec<ClientOp> = (701..721)
            .map(|id| ClientOp::insert(id, vec![0.8, 0.8]))
            .chain([ClientOp::delete(700), ClientOp::update(1, vec![0.4, 0.6])])
            .collect();
        assert_eq!(client.submit_batch(&ops).expect("batch"), 22);

        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = client.stats().expect("stats");
            if stats.ops_applied() == Some(23) {
                assert_eq!(stats.ops_rejected(), Some(0));
                assert_eq!(stats.epochs().len(), shards);
                if shards > 1 {
                    assert!(stats.get_u64("merge_misses").unwrap() >= 1);
                    assert!(stats.get("merge_hits").is_some());
                }
                break;
            }
            assert!(Instant::now() < deadline, "ops never became visible");
            std::thread::sleep(Duration::from_millis(5));
        }
        let q = client.query().expect("query");
        assert_eq!(q.n, 60 + 21 - 1);
        assert_eq!(q.epochs.len(), shards);
        assert!(q.ids.len() <= 4, "budget respected: {:?}", q.ids);

        client.shutdown().expect("shutdown");
        let fds = server.join().expect("server thread");
        assert_eq!(fds.len(), shards);
        let replayed = subscriber.join().expect("subscriber thread");
        assert_eq!(replayed, q.ids, "subscription replay == final QUERY");
        for fd in &fds {
            fd.check_invariants().unwrap();
        }
    }
}

/// METRICS over raw lines: gated behind HELLO v2 exactly like the other
/// v2 verbs, framed as `OK metrics lines=N` + N exposition lines, and
/// the exported counters agree with the STATS reply taken in the same
/// quiesced state.
#[test]
fn v2_metrics_exposition_agrees_with_stats() {
    let (addr, server) = spawn_single(50);
    let mut client = Client::connect(addr);

    let reply = client.roundtrip("METRICS");
    assert!(
        reply.starts_with("ERR METRICS requires protocol v2"),
        "{reply}"
    );
    assert!(client.roundtrip("HELLO v2").starts_with("OK v2"));

    // 3 ops the engine accepts plus 1 it rejects (unknown id), then
    // quiesce on STATS so the applier-side counters have settled.
    assert_eq!(client.roundtrip("INSERT 900 0.9 0.9"), "OK queued");
    assert_eq!(client.roundtrip("DELETE 0"), "OK queued");
    assert_eq!(client.roundtrip("UPDATE 1 0.5 0.6"), "OK queued");
    assert_eq!(client.roundtrip("DELETE 77777"), "OK queued");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = client.roundtrip("STATS");
        if field(&reply, "ops_applied") == Some("3") && field(&reply, "ops_rejected") == Some("1") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ops never became visible: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let body = fetch_metrics(&mut client);
    let fams = families(&body);
    assert!(
        fams.len() >= 12,
        "expected ≥12 metric families, got {}: {fams:?}",
        fams.len()
    );
    for name in [
        "rms_applier_queue_depth",
        "rms_applier_batch_ops",
        "rms_applier_apply_seconds",
        "rms_applier_publish_seconds",
        "rms_applier_snapshot_publishes_total",
        "rms_applier_ops_applied_total",
        "rms_applier_ops_rejected_total",
        "rms_wal_appends_total",
        "rms_wal_fsync_seconds",
        "rms_wal_recovered_ops_total",
        "rms_wal_truncated_tail_bytes_total",
        "rms_tcp_connections_total",
        "rms_tcp_requests_total",
        "rms_tcp_request_seconds",
        "rms_tcp_subscribers",
        "rms_tcp_delta_bytes_total",
    ] {
        assert!(fams.contains(name), "family {name} missing: {fams:?}");
    }

    // Counter agreement with the STATS fields above.
    assert_eq!(family_total(&body, "rms_applier_ops_applied_total"), 3.0);
    assert_eq!(family_total(&body, "rms_applier_ops_rejected_total"), 1.0);
    assert!(family_total(&body, "rms_applier_snapshot_publishes_total") >= 1.0);
    // This connection alone issued ≥ 6 requests before the scrape.
    assert!(family_total(&body, "rms_tcp_requests_total") >= 6.0);
    assert!(family_total(&body, "rms_tcp_connections_total") >= 1.0);
    // No WAL configured: the families exist, the counters stay zero.
    assert_eq!(family_total(&body, "rms_wal_appends_total"), 0.0);
    assert_eq!(family_total(&body, "rms_wal_recovered_ops_total"), 0.0);
    // Histogram shape: cumulative buckets terminate at +Inf and the
    // apply histogram observed at least one batch.
    assert!(body.contains("rms_applier_apply_seconds_bucket{le=\"+Inf\"}"));
    assert!(family_total(&body, "rms_applier_apply_seconds_count") >= 1.0);

    // The verb counter for METRICS ticks after the reply is framed, so
    // a second scrape sees the first one.
    let body2 = fetch_metrics(&mut client);
    let metrics_verb = body2
        .lines()
        .find_map(|l| l.strip_prefix("rms_tcp_requests_total{verb=\"metrics\"} "))
        .expect("metrics verb series");
    assert!(metrics_verb.trim().parse::<u64>().unwrap() >= 1);

    let mut other = Client::connect(addr);
    assert_eq!(other.roundtrip("SHUTDOWN"), "OK shutting down");
    server.join().expect("server thread");
}

/// Sharded METRICS through the typed client: per-shard `shard="N"`
/// labels on the applier families, shard-merge cache counters in the
/// same registry, and the per-shard applied counts summing to the
/// aggregate STATS view.
#[test]
fn metrics_sharded_labels_via_typed_client() {
    let initial: Vec<Point> = (0..60)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / 60.0, 1.0 - (i as f64) / 60.0]))
        .collect();
    let service = ShardedRmsService::start(
        FdRms::builder(2).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
        2,
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = RmsClient::connect(addr).expect("client connect");
    assert_eq!(client.hello().shards, 2);
    // Ids 200 and 201 land on distinct shards (id % 2 routing).
    client.insert(200, &[0.9, 0.9]).expect("insert");
    client.insert(201, &[0.85, 0.95]).expect("insert");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats");
        if stats.ops_applied() == Some(2) {
            break;
        }
        assert!(Instant::now() < deadline, "ops never became visible");
        std::thread::sleep(Duration::from_millis(5));
    }

    let body = client.metrics().expect("metrics");
    assert!(body.contains("shard=\"0\""), "{body}");
    assert!(body.contains("shard=\"1\""), "{body}");
    assert_eq!(family_total(&body, "rms_applier_ops_applied_total"), 2.0);
    let fams = families(&body);
    assert!(fams.contains("rms_shard_merge_hits_total"), "{fams:?}");
    assert!(fams.contains("rms_shard_merge_misses_total"), "{fams:?}");
    // Every STATS above went through the merged-snapshot path, so the
    // cache counters have moved.
    let merges = family_total(&body, "rms_shard_merge_hits_total")
        + family_total(&body, "rms_shard_merge_misses_total");
    assert!(merges >= 1.0, "{body}");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}
