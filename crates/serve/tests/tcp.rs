//! Loopback round-trip of the TCP line protocol, including
//! malformed-input error replies and graceful shutdown.

use fdrms::FdRms;
use rms_geom::Point;
use rms_serve::{RmsServer, RmsService, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("loopback connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &str) -> String {
        writeln!(self.writer, "{request}").expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }
}

/// Extracts `key=value` fields from an `OK key=… key=…` reply.
fn field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
}

#[test]
fn loopback_protocol_round_trip() {
    let d = 2;
    let initial: Vec<Point> = (0..50)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / 50.0, 1.0 - (i as f64) / 50.0]))
        .collect();
    let service = RmsService::start(
        FdRms::builder(d).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr);

    // Reads work immediately off the epoch-0 snapshot.
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epoch="), "{reply}");
    assert_eq!(field(&reply, "n"), Some("50"));

    // Mutations are acknowledged at enqueue time…
    assert_eq!(client.roundtrip("INSERT 5000 0.9 0.9"), "OK queued");
    assert_eq!(client.roundtrip("DELETE 0"), "OK queued");
    assert_eq!(client.roundtrip("UPDATE 1 0.5 0.6"), "OK queued");
    // …and an invalid op (unknown id) is accepted here but rejected by
    // engine validation, visible in STATS.
    assert_eq!(client.roundtrip("DELETE 99999"), "OK queued");

    // Await visibility: ops_applied=3, ops_rejected=1.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let reply = client.roundtrip("STATS");
        assert!(reply.starts_with("OK "), "{reply}");
        if field(&reply, "ops_applied") == Some("3") && field(&reply, "ops_rejected") == Some("1") {
            break reply;
        }
        assert!(
            Instant::now() < deadline,
            "ops never became visible: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(field(&stats, "n"), Some("50")); // 50 + 1 − 1
    let epoch: u64 = field(&stats, "epoch").unwrap().parse().unwrap();
    assert!(epoch >= 1);

    // Malformed input never kills the connection: each bad line gets an
    // ERR reply and the next request still works.
    for bad in [
        "FROB",
        "INSERT",
        "INSERT 1 0.5",
        "INSERT x 0.5 0.5",
        "INSERT 2 0.5 nope",
        "INSERT 2 -1 0.5",
        "DELETE",
        "DELETE 1 2",
        "QUERY now",
    ] {
        let reply = client.roundtrip(bad);
        assert!(reply.starts_with("ERR "), "`{bad}` → {reply}");
    }
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epoch="), "{reply}");

    // A second concurrent connection shares the same service.
    let mut other = Client::connect(addr);
    assert!(other.roundtrip("STATS").starts_with("OK "));

    // Graceful shutdown: the queue drains and the engine comes back.
    assert_eq!(client.roundtrip("SHUTDOWN"), "OK shutting down");
    let fds = server.join().expect("server thread");
    let [fd] = fds.as_slice() else {
        panic!("single backend returns one engine");
    };
    assert!(fd.contains(5000));
    assert!(!fd.contains(0));
    fd.check_invariants().unwrap();
}

#[test]
fn loopback_round_trip_sharded() {
    let d = 2;
    let initial: Vec<Point> = (0..60)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / 60.0, 1.0 - (i as f64) / 60.0]))
        .collect();
    let service = rms_serve::ShardedRmsService::start(
        FdRms::builder(d).r(4).max_utilities(64).seed(3),
        initial,
        ServeConfig::default(),
        3,
    )
    .unwrap();
    let server = RmsServer::bind_sharded("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(addr);

    // Sharded reads report the per-shard epoch vector and the merged
    // solution, trimmed to r.
    let reply = client.roundtrip("QUERY");
    assert!(reply.starts_with("OK epochs="), "{reply}");
    assert_eq!(field(&reply, "epochs"), Some("0,0,0"));
    assert_eq!(field(&reply, "n"), Some("60"));
    let r: usize = field(&reply, "r").unwrap().parse().unwrap();
    assert!(r <= 4, "merged solution exceeds budget: {reply}");

    // Mutations route by id; ids 300, 301, 302 hit three distinct shards.
    for id in 300..303 {
        assert_eq!(
            client.roundtrip(&format!("INSERT {id} 0.9 0.9")),
            "OK queued"
        );
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = client.roundtrip("STATS");
        assert!(reply.starts_with("OK epochs="), "{reply}");
        assert_eq!(field(&reply, "shards"), Some("3"));
        if field(&reply, "ops_applied") == Some("3") {
            assert_eq!(field(&reply, "n"), Some("63"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ops never became visible: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    assert_eq!(client.roundtrip("SHUTDOWN"), "OK shutting down");
    let fds = server.join().expect("server thread");
    assert_eq!(fds.len(), 3);
    for (i, fd) in fds.iter().enumerate() {
        fd.check_invariants().unwrap();
        assert!(fd.contains(300 + i as u64), "shard {i} owns id {}", 300 + i);
    }
}
