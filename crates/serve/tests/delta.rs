//! Soundness of the push-subscription delta stream: a subscriber that
//! applies every received [`SnapshotDelta`] to its starting snapshot
//! reproduces the server's published solution at each delivered version
//! — for the single service and for a 4-shard group — and the stream is
//! gap-free (each delta continues exactly where the previous ended).

use fdrms::{FdRms, FdRmsBuilder, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rms_geom::{Point, PointId};
use rms_serve::{
    BackendView, RmsBackend, RmsService, ServeConfig, ShardedRmsService, SnapshotDelta,
};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
        .collect()
}

/// Valid mixed op stream over a live-id tracker.
fn random_ops(seed: u64, initial: &[Point], n: usize, d: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<PointId> = initial.iter().map(Point::id).collect();
    let mut next: PointId = 100_000;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let coords: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
        match rng.gen_range(0..4) {
            2 if !live.is_empty() => {
                let idx = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(idx)));
            }
            3 if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update(Point::new_unchecked(id, coords)));
            }
            _ => {
                ops.push(Op::Insert(Point::new_unchecked(next, coords)));
                live.push(next);
                next += 1;
            }
        }
    }
    ops
}

fn builder(d: usize) -> FdRmsBuilder {
    FdRms::builder(d).r(4).max_utilities(128).seed(5)
}

fn solution_map(view: &BackendView) -> BTreeMap<PointId, Point> {
    view.result().iter().map(|p| (p.id(), p.clone())).collect()
}

fn ids(solution: &BTreeMap<PointId, Point>) -> Vec<PointId> {
    solution.keys().copied().collect()
}

/// Drives `ops` through any backend while a subscriber collects deltas
/// and an independent poller records the published solution at every
/// version it observes. Checks, in order:
///
/// 1. the delta chain is gap-free from the subscription's base view;
/// 2. at every delivered version the reconstructed solution equals the
///    published solution the poller saw at that version (when the poller
///    observed it — poller and subscriber sample the same serialized
///    publish/merge sequence, so matching versions mean matching
///    states);
/// 3. after quiescing, the reconstruction equals the final published
///    solution exactly.
fn check_delta_stream<B: RmsBackend>(backend: B, ops: Vec<Op>) {
    let total = ops.len() as u64;
    let rx = backend.watch();
    let handle = backend.handle();

    // Writer thread: sustained ingestion while the main thread polls.
    let writer = {
        let backend_handle = backend.handle();
        std::thread::spawn(move || {
            for op in ops {
                rms_serve::RmsBackendHandle::submit(&backend_handle, op).unwrap();
            }
        })
    };

    // Poll the published view during ingestion, recording version → ids.
    let mut observed: HashMap<u64, Vec<PointId>> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let view = rms_serve::RmsBackendHandle::view(&handle);
        observed.insert(view.version(), view.result_ids());
        let stats = view.stats();
        if stats.ops_applied + stats.ops_rejected >= total {
            break;
        }
        assert!(Instant::now() < deadline, "ingestion never settled");
        std::thread::yield_now();
    }
    writer.join().unwrap();
    // One more settled read: the final published state.
    let final_view = rms_serve::RmsBackendHandle::view(&handle);
    observed.insert(final_view.version(), final_view.result_ids());
    let final_version = final_view.version();
    let final_ids = final_view.result_ids();

    // Give the (asynchronous, for the sharded router) delta path time to
    // catch up with the final state, then close the stream.
    let mut version = rx.base().version();
    let mut deltas: Vec<SnapshotDelta> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while version < final_version {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(delta) => {
                version = delta.version;
                deltas.push(delta);
            }
            Err(_) => assert!(
                Instant::now() < deadline,
                "delta stream never reached the final version \
                 (at {version}, expected {final_version})"
            ),
        }
    }
    drop(backend); // shutdown closes the stream

    let mut matched = 0usize;
    let mut at = rx.base().version();
    let mut solution = solution_map(rx.base());
    for delta in &deltas {
        assert_eq!(
            delta.from_version, at,
            "delta chain has a gap: delta from {} applied at {at}",
            delta.from_version
        );
        assert!(delta.version > delta.from_version, "versions must advance");
        assert_eq!(
            delta.version,
            delta.epochs.iter().sum::<u64>(),
            "version is the epoch-vector sum"
        );
        delta.apply_to(&mut solution);
        at = delta.version;
        if let Some(expected) = observed.get(&at) {
            assert_eq!(
                &ids(&solution),
                expected,
                "reconstruction diverged from the published solution at version {at}"
            );
            matched += 1;
        }
    }
    assert_eq!(at, final_version, "stream ended before the final version");
    assert_eq!(
        ids(&solution),
        final_ids,
        "reconstruction diverged from the final published solution"
    );
    // The final version is always cross-checked (the poller records it
    // after quiescing and the stream is driven to it); intermediate
    // overlap depends on scheduling but is large in practice.
    assert!(
        matched >= 1,
        "no cross-checked versions — the poller and the stream never lined up"
    );
    assert!(
        deltas.len() >= 2,
        "stream degenerated to {} delta(s); expected real streaming",
        deltas.len()
    );
}

#[test]
fn single_service_delta_stream_reproduces_published_solutions() {
    let d = 3;
    let initial = random_points(1, 200, d);
    let ops = random_ops(2, &initial, 400, d);
    let service = RmsService::start(
        builder(d),
        initial,
        ServeConfig {
            queue_capacity: 32, // backpressure → many small epochs
            max_batch: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    check_delta_stream(service, ops);
}

#[test]
fn sharded_delta_stream_reproduces_published_solutions() {
    let d = 3;
    let initial = random_points(3, 200, d);
    let ops = random_ops(4, &initial, 400, d);
    let group = ShardedRmsService::start(
        builder(d),
        initial,
        ServeConfig {
            queue_capacity: 32,
            max_batch: 16,
            ..ServeConfig::default()
        },
        4,
    )
    .unwrap();
    check_delta_stream(group, ops);
}

/// A watcher registered mid-stream starts from the then-current snapshot
/// and still reconstructs exactly; a watcher registered after shutdown
/// gets an immediately-closed stream, not a hang.
#[test]
fn late_and_post_shutdown_watchers() {
    let d = 2;
    let initial = random_points(5, 80, d);
    let ops = random_ops(6, &initial, 120, d);
    let service = RmsService::start(builder(d), initial, ServeConfig::default()).unwrap();
    let handle = service.handle();
    for op in &ops[..60] {
        handle.submit(op.clone()).unwrap();
    }
    // Late subscriber: base is whatever has been published by now.
    let rx = handle.watch();
    let mut solution = solution_map(rx.base());
    for op in &ops[60..] {
        handle.submit(op.clone()).unwrap();
    }
    let fd = service.shutdown();
    for delta in rx.iter() {
        delta.apply_to(&mut solution);
    }
    let expected: Vec<PointId> = fd.result().iter().map(Point::id).collect();
    assert_eq!(ids(&solution), expected);

    // Post-shutdown subscription: closed stream, base still readable.
    let rx = handle.watch();
    assert!(rx.recv().is_err(), "post-shutdown stream must be closed");
    assert!(rx.base().result().len() <= 4);
}
