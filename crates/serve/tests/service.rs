//! Concurrency contract of [`RmsService`]: monotone snapshot epochs for
//! every reader, and a drained service reaching the same canonical state
//! as a sequential `apply_batch` run over the identical op stream.

use fdrms::{FdRms, FdRmsBuilder, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rms_geom::{Point, PointId};
use rms_serve::{RmsService, ServeConfig, SubmitError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
        .collect()
}

/// Valid mixed op stream over a live-id tracker (inserts of fresh ids,
/// deletes/updates of live ids) — valid for sequential application and
/// therefore for any chunking.
fn random_ops(seed: u64, initial: &[Point], n: usize, d: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<PointId> = initial.iter().map(Point::id).collect();
    let mut next: PointId = 100_000;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let coords: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
        match rng.gen_range(0..4) {
            0 | 1 => {
                ops.push(Op::Insert(Point::new_unchecked(next, coords)));
                live.push(next);
                next += 1;
            }
            2 if !live.is_empty() => {
                let idx = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(idx)));
            }
            _ if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update(Point::new_unchecked(id, coords)));
            }
            _ => {
                ops.push(Op::Insert(Point::new_unchecked(next, coords)));
                live.push(next);
                next += 1;
            }
        }
    }
    ops
}

fn builder(d: usize) -> FdRmsBuilder {
    FdRms::builder(d).r(4).max_utilities(128).seed(5)
}

#[test]
fn readers_observe_monotone_epochs_and_final_state_matches_sequential() {
    let d = 3;
    let initial = random_points(1, 200, d);
    let ops = random_ops(2, &initial, 400, d);

    let service = RmsService::start(
        builder(d),
        initial.clone(),
        ServeConfig {
            queue_capacity: 32, // small queue: the writer hits backpressure
            max_batch: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Reader threads hammer `snapshot()` during ingestion; every reader
    // must see a strictly increasing epoch whenever the snapshot changes
    // (never a stale epoch after a fresh one).
    let stop = Arc::new(AtomicBool::new(false));
    // All readers take their first snapshot before the writer submits
    // anything (epoch still 0), so each must witness real progress.
    let ready = Arc::new(Barrier::new(4));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut last = handle.snapshot().epoch;
                let mut distinct = 1u64;
                ready.wait();
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    assert!(
                        snap.epoch >= last,
                        "epoch went backwards: {} after {last}",
                        snap.epoch
                    );
                    if snap.epoch > last {
                        distinct += 1;
                        assert!(snap.result.len() <= 4);
                        assert_eq!(snap.result_ids().len(), snap.result.len());
                    }
                    last = snap.epoch;
                }
                // One guaranteed read after ingestion finished: the stop
                // flag is raised only after the final snapshot is
                // published, so every reader must see the drained epoch.
                let snap = handle.snapshot();
                assert!(snap.epoch >= last, "final epoch went backwards");
                if snap.epoch > last {
                    distinct += 1;
                }
                distinct
            })
        })
        .collect();

    ready.wait();
    let handle = service.handle();
    for op in ops.clone() {
        handle.submit(op).unwrap();
    }
    let fd = service.shutdown();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let distinct = r.join().unwrap();
        assert!(distinct >= 2, "reader saw no epoch progress");
    }

    // The final snapshot (still readable through outstanding handles)
    // reflects the drained state, and late submissions fail cleanly.
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_applied, 400);
    assert_eq!(snap.stats.ops_rejected, 0);
    assert_eq!(snap.len, fd.len());
    assert!(snap.epoch >= 1);
    assert_eq!(snap.stats.queue_depth, 0);
    let orphan = Op::Delete(0);
    assert!(matches!(
        handle.submit(orphan.clone()),
        Err(SubmitError::Disconnected(op)) if op == orphan
    ));

    // Canonical equivalence: a sequential engine fed the same stream
    // through `apply_batch` ends at the same database, and both states
    // certify against brute force.
    let mut seq = builder(d).build(initial).unwrap();
    for chunk in ops.chunks(50) {
        seq.apply_batch(chunk.to_vec()).unwrap();
    }
    assert_eq!(fd.len(), seq.len());
    let ids = |f: &FdRms| {
        let mut v: Vec<PointId> = f.live_points().iter().map(Point::id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&fd), ids(&seq));
    fd.check_invariants().unwrap();
    seq.check_invariants().unwrap();
    assert_eq!(fd.result().len(), seq.result().len());
}

#[test]
fn invalid_ops_cost_only_themselves() {
    let d = 2;
    let initial = random_points(7, 60, d);
    let service = RmsService::start(builder(d), initial, ServeConfig::default()).unwrap();
    let handle = service.handle();

    // A burst whose middle op is invalid (duplicate insert). The applier
    // coalesces them into one batch, the engine rejects it atomically,
    // and the per-op replay salvages the valid ops.
    handle
        .submit(Op::Insert(Point::new_unchecked(500, vec![0.9, 0.8])))
        .unwrap();
    handle
        .submit(Op::Insert(Point::new_unchecked(0, vec![0.1, 0.2])))
        .unwrap(); // id 0 is live → rejected
    handle.submit(Op::Delete(1)).unwrap();
    let fd = service.shutdown();

    assert!(fd.contains(500));
    assert!(!fd.contains(1));
    assert_eq!(fd.len(), 60); // 60 + 1 insert − 1 delete, duplicate dropped
    fd.check_invariants().unwrap();
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_rejected, 1);
    assert_eq!(snap.stats.ops_applied, 2);
}

#[test]
fn try_submit_reports_backpressure() {
    let d = 2;
    let initial = random_points(9, 40, d);
    let service = RmsService::start(
        builder(d),
        initial,
        ServeConfig {
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    // With a one-slot queue, eventually a try_submit reports Full; the
    // op comes back to the caller intact, and blocking submits of the
    // same op then succeed.
    let mut bounced: Option<Op> = None;
    for i in 0..1_000 {
        let op = Op::Insert(Point::new_unchecked(10_000 + i, vec![0.3, 0.4]));
        match handle.try_submit(op) {
            Ok(()) => {}
            Err(SubmitError::Full(op)) => {
                bounced = Some(op);
                break;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    if let Some(op) = bounced {
        handle.submit(op).unwrap();
    }
    let fd = service.shutdown();
    fd.check_invariants().unwrap();
    assert_eq!(handle.snapshot().stats.ops_rejected, 0);
}

#[test]
fn adaptive_coalescing_shows_in_stats() {
    let d = 2;
    let initial = random_points(11, 80, d);
    let ops = random_ops(12, &initial, 300, d);
    let service = RmsService::start(
        builder(d),
        initial,
        ServeConfig {
            queue_capacity: 256,
            max_batch: 128,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    for op in ops {
        handle.submit(op).unwrap();
    }
    let fd = service.shutdown();
    fd.check_invariants().unwrap();
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_applied, 300);
    // The writer outpaces the applier at some point, so at least one
    // coalesced batch holds more than one op — and none exceeds the cap.
    assert!(snap.stats.max_coalesced > 1);
    assert!(snap.stats.max_coalesced <= 128);
    assert!(snap.stats.batches >= 1);
    assert!(snap.stats.rollup.ops >= 300);
    assert!(snap.stats.total_apply_ms > 0.0);
}

#[test]
fn mrr_stats_publish_when_enabled() {
    let d = 2;
    let initial = random_points(13, 120, d);
    let ops = random_ops(14, &initial, 80, d);
    let service = RmsService::start(
        builder(d),
        initial,
        ServeConfig {
            mrr_directions: 500,
            mrr_every: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let handle = service.handle();
    for op in ops {
        handle.submit(op).unwrap();
    }
    let fd = service.shutdown();
    let snap = handle.snapshot();
    let mrr = snap.mrr.expect("estimation enabled");
    assert!((0.0..=1.0).contains(&mrr), "mrr {mrr}");
    fd.check_invariants().unwrap();
}
