//! Loopback coverage of the evented fan-out path: the slow-subscriber
//! eviction policy, server-side filtered subscriptions against the
//! unfiltered stream, and the encode-once contract under a thousand
//! concurrent subscribers — each pinned through the server's own
//! metrics rather than timing.

use fdrms::FdRms;
use rms_client::RmsClient;
use rms_geom::Point;
use rms_serve::{RmsServer, RmsService, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

fn initial_points(n: u64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new_unchecked(i, vec![(i as f64) / n as f64, 1.0 - (i as f64) / n as f64]))
        .collect()
}

/// Sums every sample of the counter `name` across label sets (the net
/// counters are unlabeled or, for the encode counter, labeled by
/// `kind`, so callers pass the full series prefix they mean).
fn counter_total(body: &str, series_prefix: &str) -> u64 {
    body.lines()
        .filter(|l| !l.starts_with('#') && l.starts_with(series_prefix))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

/// A raw-line subscriber: HELLO v2 + SUBSCRIBE, leaving the socket in
/// push mode. Returns the buffered reader owning the stream.
fn raw_subscribe(addr: SocketAddr, request: &str) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(addr).expect("subscriber connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.get_mut().write_all(b"HELLO v2\n").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK v2"), "{line}");
    line.clear();
    reader
        .get_mut()
        .write_all(format!("{request}\n").as_bytes())
        .unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("OK subscribed"), "{line}");
    reader
}

/// A subscriber that stops reading must not stall the publish path: the
/// reactor caps its write queue, evicts it with a final `ERR` notice,
/// and every other connection keeps working. The eviction is observed
/// through `rms_net_evicted_subscribers_total`, not timing.
#[test]
fn slow_subscriber_is_evicted_with_final_err() {
    let service = RmsService::start(
        FdRms::builder(2).r(4).max_utilities(64).seed(3),
        initial_points(50),
        ServeConfig::default(),
    )
    .unwrap();
    // Tiny buffers so a non-reading subscriber trips the queue cap
    // after a few hundred deltas instead of megabytes of traffic.
    let server = RmsServer::bind("127.0.0.1:0", service)
        .expect("bind ephemeral port")
        .with_send_buffer(4096)
        .with_write_queue_cap(1024);
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut sub = raw_subscribe(addr, "SUBSCRIBE every=1");
    // Shrink the client-side receive buffer too: the kernel's in-flight
    // capacity is SNDBUF + RCVBUF, and both ends must be small for the
    // server's queue to back up.
    rms_net::set_recv_buffer(sub.get_ref().as_raw_fd(), 4096).expect("shrink recv buffer");
    // ...and never read from `sub` again until the server evicts it.

    let mut writer = RmsClient::connect(addr).expect("writer connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut next_id = 100_000u64;
    loop {
        // Weak points: they publish an epoch (a DELTA line to the
        // subscriber) without ever entering the solution.
        for _ in 0..64 {
            writer.insert(next_id, &[0.001, 0.001]).expect("insert");
            next_id += 1;
        }
        let body = writer.metrics().expect("metrics");
        if counter_total(&body, "rms_net_evicted_subscribers_total") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "subscriber never evicted after {} publishes",
            next_id - 100_000
        );
    }

    // The evicted stream: some buffered DELTA lines, then the final
    // notice, then EOF — and nothing after the notice.
    let mut saw_notice = false;
    let mut line = String::new();
    loop {
        line.clear();
        if sub.read_line(&mut line).expect("read evicted stream") == 0 {
            break;
        }
        let line = line.trim_end();
        if saw_notice {
            panic!("line after eviction notice: {line}");
        }
        if line.starts_with("ERR subscriber too slow") {
            saw_notice = true;
        } else {
            assert!(line.starts_with("DELTA "), "{line}");
        }
    }
    assert!(saw_notice, "evicted stream ended without the ERR notice");

    // The server is still healthy for everyone else.
    let q = writer.query().expect("query after eviction");
    assert!(q.n > 50);
    writer.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// A filtered subscription is exactly the id-range slice of the
/// unfiltered stream: same version sequence, `+`/`-` lists restricted
/// to `[lo, hi]`, and the reconstructed solution equal to the
/// unfiltered one intersected with the range.
#[test]
fn filtered_subscription_is_range_slice_of_unfiltered() {
    const LO: u64 = 0;
    const HI: u64 = 999;
    let service = RmsService::start(
        FdRms::builder(2).r(4).max_utilities(64).seed(3),
        initial_points(60),
        ServeConfig::default(),
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut plain = RmsClient::connect(addr)
        .expect("connect")
        .subscribe(1)
        .expect("subscribe");
    let mut sliced = RmsClient::connect(addr)
        .expect("connect")
        .subscribe_filtered(1, LO, HI)
        .expect("subscribe filtered");

    // In-range and out-of-range inserts strong enough to enter the
    // solution, plus deletes of initial (in-range) ids.
    let mut writer = RmsClient::connect(addr).expect("writer connect");
    for i in 0..10u64 {
        writer.insert(500 + i, &[0.95, 0.95]).expect("insert");
        writer.insert(5000 + i, &[0.9, 0.96]).expect("insert");
    }
    for id in 0..5u64 {
        writer.delete(id).expect("delete");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if writer.stats().expect("stats").ops_applied() == Some(25) {
            break;
        }
        assert!(Instant::now() < deadline, "ops never became visible");
        std::thread::sleep(Duration::from_millis(5));
    }
    writer.shutdown().expect("shutdown");
    server.join().expect("server thread");

    // Both streams are fully buffered in the sockets now; drain them and
    // compare version by version.
    let mut plain_deltas = Vec::new();
    while let Some(d) = plain.next_delta().expect("plain stream") {
        plain_deltas.push(d);
    }
    let mut sliced_deltas = Vec::new();
    while let Some(d) = sliced.next_delta().expect("sliced stream") {
        sliced_deltas.push(d);
    }
    assert!(!plain_deltas.is_empty(), "writes must publish deltas");
    assert_eq!(
        plain_deltas.len(),
        sliced_deltas.len(),
        "every version reaches both subscribers (filtered ones as header-only lines)"
    );
    let in_range = |id: &u64| (LO..=HI).contains(id);
    for (p, s) in plain_deltas.iter().zip(&sliced_deltas) {
        assert_eq!(p.version, s.version, "same publish sequence");
        let added: Vec<u64> = p.added.iter().copied().filter(|id| in_range(id)).collect();
        let removed: Vec<u64> = p
            .removed
            .iter()
            .copied()
            .filter(|id| in_range(id))
            .collect();
        assert_eq!(s.added, added, "version {}", p.version);
        assert_eq!(s.removed, removed, "version {}", p.version);
    }
    let expected: Vec<u64> = plain.ids().into_iter().filter(|id| in_range(id)).collect();
    assert_eq!(sliced.ids(), expected, "final slice mirrors the range");
}

/// One thousand concurrent subscribers, and the server still encodes
/// each published delta exactly once — read off
/// `rms_net_delta_encodes_total{kind="unfiltered"}`, the counter the
/// fan-out path increments per publish, not per subscriber. Every
/// subscriber then replays the identical line sequence to EOF.
#[test]
fn thousand_subscribers_one_unfiltered_encode_per_publish() {
    const SUBS: usize = 1_000;
    const PUBLISHES: u64 = 5;
    rms_net::raise_nofile_limit(1 << 20).expect("raise fd limit");

    let service = RmsService::start(
        FdRms::builder(2).r(4).max_utilities(64).seed(3),
        initial_points(50),
        ServeConfig::default(),
    )
    .unwrap();
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let mut swarm: Vec<BufReader<TcpStream>> = (0..SUBS)
        .map(|_| raw_subscribe(addr, "SUBSCRIBE every=1"))
        .collect();
    // The probe paces the publishes so each insert lands as its own
    // epoch, and later counts the shutdown drain's trailing deltas.
    let mut probe = RmsClient::connect(addr)
        .expect("probe connect")
        .subscribe(1)
        .expect("probe subscribe");

    let mut writer = RmsClient::connect(addr).expect("writer connect");
    for i in 0..PUBLISHES {
        writer.insert(900 + i, &[0.95, 0.9]).expect("insert");
        probe
            .next_delta()
            .expect("probe delta")
            .expect("stream open");
    }
    let body = writer.metrics().expect("metrics");
    assert_eq!(
        counter_total(&body, "rms_net_delta_encodes_total{kind=\"unfiltered\"}"),
        PUBLISHES,
        "encode-once violated across {SUBS} subscribers"
    );

    writer.shutdown().expect("shutdown");
    let mut total_publishes = PUBLISHES;
    while probe.next_delta().expect("probe drain").is_some() {
        total_publishes += 1;
    }
    server.join().expect("server thread");

    for (i, sub) in swarm.iter_mut().enumerate() {
        let mut lines = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            if sub.read_line(&mut line).expect("drain subscriber") == 0 {
                break;
            }
            assert!(line.starts_with("DELTA "), "subscriber {i}: {line}");
            lines += 1;
        }
        assert_eq!(lines, total_publishes, "subscriber {i} missed deltas");
    }
}
