//! Crash-recovery contract of the WAL-backed service: an unclean kill
//! after acknowledgement loses nothing — the next start replays the log
//! and reaches the state a clean sequential apply would have reached.

use fdrms::{FdRms, FdRmsBuilder, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rms_geom::{Point, PointId};
use rms_serve::wal::Wal;
use rms_serve::{RmsService, ServeConfig, ShardedRmsService};
use std::path::PathBuf;

fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
        .collect()
}

/// Valid mixed op stream over a live-id tracker.
fn random_ops(seed: u64, initial: &[Point], n: usize, d: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<PointId> = initial.iter().map(Point::id).collect();
    let mut next: PointId = 100_000;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let coords: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
        match rng.gen_range(0..4) {
            2 if !live.is_empty() => {
                let idx = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(idx)));
            }
            3 if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update(Point::new_unchecked(id, coords)));
            }
            _ => {
                ops.push(Op::Insert(Point::new_unchecked(next, coords)));
                live.push(next);
                next += 1;
            }
        }
    }
    ops
}

fn builder(d: usize) -> FdRmsBuilder {
    FdRms::builder(d).r(4).max_utilities(128).seed(5)
}

fn temp_wal(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("krms-serve-wal-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.wal", std::process::id()))
}

fn live_ids(fd: &FdRms) -> Vec<PointId> {
    let mut ids: Vec<PointId> = fd.live_points().iter().map(Point::id).collect();
    ids.sort_unstable();
    ids
}

/// A clean sequential engine fed the same stream, the recovery oracle.
fn sequential(d: usize, initial: &[Point], ops: &[Op]) -> FdRms {
    let mut fd = builder(d).build(initial.to_vec()).unwrap();
    for op in ops {
        fd.apply_batch(vec![op.clone()]).unwrap();
    }
    fd
}

/// Reads the single (unlabeled) sample of `name` from an exposition body.
fn counter(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("series {name} missing:\n{body}"))
        .trim()
        .parse()
        .unwrap()
}

/// The WAL metrics exported through the service registry stay consistent
/// with the replay stats: the writer side counts one append per
/// acknowledged op, and after a crash (plus a torn tail) the restarted
/// service's `rms_wal_recovered_ops_total` equals the `wal_recovered_ops`
/// stat while the dropped bytes show up in
/// `rms_wal_truncated_tail_bytes_total`.
#[test]
fn recovery_metrics_match_replay_stats() {
    let d = 2;
    let path = temp_wal("metrics-recovery");
    let _ = std::fs::remove_file(&path);
    let initial = random_points(31, 60, d);
    let ops = random_ops(32, &initial, 80, d);

    let service =
        RmsService::start_with_wal(builder(d), initial.clone(), ServeConfig::default(), &path)
            .unwrap();
    for op in ops {
        service.submit(op).unwrap();
    }
    let body = service.registry().encode();
    assert_eq!(counter(&body, "rms_wal_appends_total"), 80);
    assert_eq!(counter(&body, "rms_wal_recovered_ops_total"), 0);
    service.crash();

    // Tear the tail: the last record loses its final bytes, exactly as a
    // mid-write power cut would leave the file.
    let raw = std::fs::read(&path).unwrap();
    std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

    let restarted =
        RmsService::start_with_wal(builder(d), initial, ServeConfig::default(), &path).unwrap();
    let recovered = restarted.snapshot().stats.wal_recovered_ops;
    assert_eq!(recovered, 79, "the torn record is dropped, the rest replay");
    let body = restarted.registry().encode();
    assert_eq!(counter(&body, "rms_wal_recovered_ops_total"), recovered);
    assert!(counter(&body, "rms_wal_truncated_tail_bytes_total") > 0);
    assert_eq!(counter(&body, "rms_wal_appends_total"), 0, "fresh registry");
    restarted.shutdown().check_invariants().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crash_after_ack_loses_no_acknowledged_op() {
    let d = 3;
    let path = temp_wal("single-crash");
    let _ = std::fs::remove_file(&path);
    let initial = random_points(1, 150, d);
    let ops = random_ops(2, &initial, 200, d);

    let service =
        RmsService::start_with_wal(builder(d), initial.clone(), ServeConfig::default(), &path)
            .unwrap();
    let handle = service.handle();
    for op in ops.clone() {
        handle.submit(op).unwrap(); // every op below is acknowledged
    }
    // The unclean kill: no drain guarantee, no snapshot, and crucially no
    // log compaction — the in-memory engine state is discarded.
    service.crash();

    // Restart from the same base dataset + log: the replayed engine must
    // match a clean sequential apply of every acknowledged op.
    let restarted =
        RmsService::start_with_wal(builder(d), initial.clone(), ServeConfig::default(), &path)
            .unwrap();
    let snap = restarted.snapshot();
    assert_eq!(snap.stats.wal_recovered_ops, 200, "all acked ops replayed");
    assert_eq!(snap.epoch, 0, "replay happens before the service goes live");
    let fd = restarted.shutdown();
    fd.check_invariants().unwrap();
    let seq = sequential(d, &initial, &ops);
    assert_eq!(live_ids(&fd), live_ids(&seq));
    assert_eq!(fd.len(), seq.len());
    // Same canonical database; the solutions are stable covers of the
    // same system and may legitimately differ (covers are not unique),
    // but both respect the budget.
    assert!(fd.result().len() <= 4 && seq.result().len() <= 4);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn acked_but_unapplied_ops_survive_via_the_log() {
    // The narrow window the WAL exists for: an op acknowledged (and
    // therefore logged) that the applier never got to apply. Simulate it
    // exactly by appending to the log of a crashed service — on disk
    // this is indistinguishable from dying between ack and apply.
    let d = 2;
    let path = temp_wal("ack-no-apply");
    let _ = std::fs::remove_file(&path);
    let initial = random_points(3, 80, d);
    let applied = random_ops(4, &initial, 50, d);

    let service =
        RmsService::start_with_wal(builder(d), initial.clone(), ServeConfig::default(), &path)
            .unwrap();
    for op in applied.clone() {
        service.submit(op).unwrap();
    }
    service.crash();

    // A victim that is certainly still live after the applied stream.
    let victim = live_ids(&sequential(d, &initial, &applied))[0];
    let unapplied = vec![
        Op::Insert(Point::new_unchecked(777_777, vec![0.95, 0.9])),
        Op::Delete(victim),
    ];
    {
        let (mut wal, _) = Wal::open(&path).unwrap();
        for op in &unapplied {
            wal.append(op).unwrap();
        }
    }

    let restarted =
        RmsService::start_with_wal(builder(d), initial.clone(), ServeConfig::default(), &path)
            .unwrap();
    assert_eq!(restarted.snapshot().stats.wal_recovered_ops, 52);
    let fd = restarted.shutdown();
    fd.check_invariants().unwrap();
    assert!(fd.contains(777_777));
    assert!(!fd.contains(victim));
    let mut all = applied;
    all.extend(unapplied);
    let seq = sequential(d, &initial, &all);
    assert_eq!(live_ids(&fd), live_ids(&seq));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn graceful_shutdown_compacts_to_a_checkpoint() {
    let d = 2;
    let path = temp_wal("compaction");
    let _ = std::fs::remove_file(&path);
    let initial = random_points(5, 100, d);
    let ops = random_ops(6, &initial, 120, d);

    let service =
        RmsService::start_with_wal(builder(d), initial, ServeConfig::default(), &path).unwrap();
    for op in ops {
        service.submit(op).unwrap();
    }
    let fd = service.shutdown();
    let expected = live_ids(&fd);
    fd.check_invariants().unwrap();

    // The compacted log holds one checkpoint and no ops; a restart with
    // a *different* (even empty) base dataset recovers the checkpoint
    // state with zero replayed ops.
    let (_, replay) = Wal::open(&path).unwrap();
    assert!(replay.ops.is_empty(), "compaction leaves no op records");
    let checkpoint = replay.checkpoint.expect("compaction writes a checkpoint");
    assert_eq!(checkpoint.len(), expected.len());

    let restarted =
        RmsService::start_with_wal(builder(d), Vec::new(), ServeConfig::default(), &path).unwrap();
    assert_eq!(restarted.snapshot().stats.wal_recovered_ops, 0);
    let fd = restarted.shutdown();
    fd.check_invariants().unwrap();
    assert_eq!(live_ids(&fd), expected);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn shard_count_mismatch_is_refused() {
    let d = 2;
    let base = temp_wal("meta-guard");
    let cleanup = || {
        for i in 0..3 {
            let _ = std::fs::remove_file(format!("{}.{i}", base.display()));
        }
        let _ = std::fs::remove_file(format!("{}.meta", base.display()));
    };
    cleanup();
    let initial = random_points(9, 40, d);
    let service = ShardedRmsService::start_with_wal(
        builder(d),
        initial.clone(),
        ServeConfig::default(),
        3,
        &base,
    )
    .unwrap();
    service.crash();

    // Restarting with a different shard count must fail loudly instead
    // of silently dropping a shard's log or re-partitioning ids.
    let err = ShardedRmsService::start_with_wal(
        builder(d),
        initial.clone(),
        ServeConfig::default(),
        2,
        &base,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(err.to_string().contains("3-shard"), "{err}");

    // The matching count still works.
    let service =
        ShardedRmsService::start_with_wal(builder(d), initial, ServeConfig::default(), 3, &base)
            .unwrap();
    for fd in service.shutdown() {
        fd.check_invariants().unwrap();
    }
    cleanup();
}

#[test]
fn failed_startup_does_not_pin_a_shard_count() {
    let d = 2;
    let base = temp_wal("meta-no-pin");
    let cleanup = || {
        for i in 0..4 {
            let _ = std::fs::remove_file(format!("{}.{i}", base.display()));
        }
        let _ = std::fs::remove_file(format!("{}.meta", base.display()));
    };
    cleanup();
    let initial = random_points(13, 30, d);
    // r < d is rejected by the builder, after shard 0's log is opened
    // but before any data lands — the sidecar must not be written.
    assert!(ShardedRmsService::start_with_wal(
        FdRms::builder(d).r(1).max_utilities(64),
        initial.clone(),
        ServeConfig::default(),
        4,
        &base,
    )
    .is_err());
    assert!(
        !PathBuf::from(format!("{}.meta", base.display())).exists(),
        "failed startup must not record a shard count"
    );
    // A retry with a *different* count is not refused.
    let service =
        ShardedRmsService::start_with_wal(builder(d), initial, ServeConfig::default(), 2, &base)
            .unwrap();
    for fd in service.shutdown() {
        fd.check_invariants().unwrap();
    }
    cleanup();
}

#[test]
fn single_service_refuses_a_shard_groups_logs() {
    let d = 2;
    let base = temp_wal("single-vs-sharded");
    let cleanup = || {
        for i in 0..2 {
            let _ = std::fs::remove_file(format!("{}.{i}", base.display()));
        }
        let _ = std::fs::remove_file(format!("{}.meta", base.display()));
    };
    cleanup();
    let initial = random_points(15, 30, d);
    let group = ShardedRmsService::start_with_wal(
        builder(d),
        initial.clone(),
        ServeConfig::default(),
        2,
        &base,
    )
    .unwrap();
    group.crash();
    // Opening the bare base path would create a fresh empty log and
    // silently ignore the shard logs; the library itself must refuse.
    let err = RmsService::start_with_wal(builder(d), initial, ServeConfig::default(), &base)
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("sharded group"), "{err}");
    cleanup();
}

/// Two writers race *conflicting* ops on the same ids: one inserts each
/// contended id, the other deletes it. The live outcome of each race is
/// readable from the stats — if the delete was applied first it was
/// rejected (the id was not live yet) and the id survives; if the insert
/// went first, both ops applied and the id is gone. Log order must equal
/// apply order (enqueue and append are serialized under the log mutex),
/// so a crash + replay must reproduce the *same* outcome for every
/// contended id — before that fix, the log could record `insert, delete`
/// while the live service applied `delete, insert`, and recovery
/// resurrected ids the live service had settled differently.
#[test]
fn contended_id_recovery_matches_live_outcome() {
    let d = 2;
    let rounds = 12;
    let pairs: u64 = 8;
    for round in 0..rounds {
        let path = temp_wal(&format!("contended-{round}"));
        let _ = std::fs::remove_file(&path);
        let initial = random_points(20 + round, 40, d);
        let service = RmsService::start_with_wal(
            builder(d),
            initial.clone(),
            ServeConfig {
                // A tiny queue forces real interleaving through the
                // try-send path, not just uncontended fast-path sends.
                queue_capacity: 2,
                max_batch: 4,
                ..ServeConfig::default()
            },
            &path,
        )
        .unwrap();

        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let inserter = {
            let h = service.handle();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..pairs {
                    h.submit(Op::Insert(Point::new_unchecked(7_000 + i, vec![0.9, 0.8])))
                        .unwrap();
                }
            })
        };
        let deleter = {
            let h = service.handle();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..pairs {
                    h.submit(Op::Delete(7_000 + i)).unwrap();
                }
            })
        };
        inserter.join().unwrap();
        deleter.join().unwrap();

        // Quiesce: every acknowledged op accounted for (applied or
        // rejected), then record each race's live outcome and crash.
        let handle = service.handle();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let stats = loop {
            let snap = handle.snapshot();
            if snap.stats.ops_applied + snap.stats.ops_rejected == 2 * pairs {
                break snap.stats;
            }
            assert!(std::time::Instant::now() < deadline, "ops never settled");
            std::thread::yield_now();
        };
        // Rejected ops are exactly the deletes that ran before their
        // insert; each such id must be live (its insert applied after).
        let survivors = stats.ops_rejected;
        service.crash();

        let restarted =
            RmsService::start_with_wal(builder(d), initial, ServeConfig::default(), &path).unwrap();
        let fd = restarted.shutdown();
        fd.check_invariants().unwrap();
        let recovered: u64 = (0..pairs).filter(|i| fd.contains(7_000 + i)).count() as u64;
        assert_eq!(
            recovered, survivors,
            "round {round}: recovery replayed a different serialization than the live \
             service applied ({survivors} contended ids survived live, {recovered} after replay)"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn sharded_crash_recovery_loses_nothing() {
    let d = 3;
    let shards = 4;
    let base = temp_wal("sharded-crash");
    let cleanup = |base: &PathBuf| {
        for i in 0..shards {
            let _ = std::fs::remove_file(format!("{}.{i}", base.display()));
        }
    };
    cleanup(&base);
    let initial = random_points(7, 160, d);
    let ops = random_ops(8, &initial, 240, d);

    let service = ShardedRmsService::start_with_wal(
        builder(d),
        initial.clone(),
        ServeConfig::default(),
        shards,
        &base,
    )
    .unwrap();
    let handle = service.handle();
    for op in ops.clone() {
        handle.submit(op).unwrap();
    }
    service.crash();

    // Restart the whole group from the per-shard logs: the union of the
    // recovered shards must match a clean sequential apply, and every
    // shard must hold exactly its id partition.
    let restarted = ShardedRmsService::start_with_wal(
        builder(d),
        initial.clone(),
        ServeConfig::default(),
        shards,
        &base,
    )
    .unwrap();
    assert_eq!(restarted.snapshot().stats.wal_recovered_ops, 240);
    let fds = restarted.shutdown();
    assert_eq!(fds.len(), shards);
    let mut union: Vec<PointId> = Vec::new();
    for (i, fd) in fds.iter().enumerate() {
        fd.check_invariants().unwrap();
        let ids = live_ids(fd);
        assert!(
            ids.iter().all(|id| (id % shards as u64) as usize == i),
            "shard {i} holds a foreign id"
        );
        union.extend(ids);
    }
    union.sort_unstable();
    let seq = sequential(d, &initial, &ops);
    assert_eq!(union, live_ids(&seq));
    cleanup(&base);
}
