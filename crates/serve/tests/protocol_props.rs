//! Property-based coverage of the wire protocol parser: `parse_request`
//! never panics on arbitrary/adversarial byte lines (v1 and v2 framing
//! alike), and `encode_request` → `parse_request` round-trips every
//! representable request exactly.

use fdrms::Op;
use proptest::prelude::*;
use rms_geom::Point;
use rms_serve::protocol::{encode_request, parse_request, Request};

/// Arbitrary byte soup rendered as a (lossy) line — covers non-UTF8
/// leftovers, control characters, embedded NULs, absurd lengths.
fn arb_junk_line() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Adversarial near-miss lines: real verbs with fuzzed argument tails,
/// the corner of the grammar a uniform byte fuzzer almost never reaches.
fn arb_near_miss_line() -> impl Strategy<Value = String> {
    let verbs = [
        "INSERT",
        "DELETE",
        "UPDATE",
        "QUERY",
        "STATS",
        "SHUTDOWN",
        "HELLO",
        "BATCH",
        "SUBSCRIBE",
        "METRICS",
        "insert",
        "Batch",
        "subscribe",
        "metrics",
        "",
    ];
    let args = [
        "",
        " ",
        " 1",
        " 1 2 3",
        " -1",
        " 18446744073709551616", // u64::MAX + 1
        " 99999999999999999999999999",
        " v",
        " v0",
        " v2 v2",
        " every=",
        " every=0",
        " every=-1",
        " every=99999999999999999999",
        " ids=",
        " ids=1..0",
        " ids=3..9",
        " ids=..",
        " ids=1..2 ids=3..4",
        " every=2 ids=1..5",
        " NaN inf -inf",
        " 0.5 .5 5e-1",
        " 1 0.5 0.5 0.5 0.5 0.5 0.5 0.5",
        " \u{0} \u{7f}",
        "\tx",
    ];
    (0..verbs.len(), 0..args.len(), 1usize..7).prop_map(move |(v, a, d)| {
        // Smuggle the dimensionality into the line so the runner can
        // vary it too (split back out in the test body).
        format!("{d}\u{1}{}{}", verbs[v], args[a])
    })
}

/// A strategy for valid requests at a given dimensionality.
fn arb_request(d: usize) -> impl Strategy<Value = Request> {
    let coords = prop::collection::vec(0.0f64..=1.0, d..=d);
    let point = (0u64..1_000_000, coords).prop_map(|(id, c)| Point::new_unchecked(id, c));
    let p2 = point.clone();
    prop_oneof![
        point.prop_map(|p| Request::Submit(Op::Insert(p))),
        p2.prop_map(|p| Request::Submit(Op::Update(p))),
        (0u64..1_000_000).prop_map(|id| Request::Submit(Op::Delete(id))),
        (0u64..1).prop_map(|_| Request::Query),
        (0u64..1).prop_map(|_| Request::Stats),
        (0u64..1).prop_map(|_| Request::Shutdown),
        (1u32..100).prop_map(Request::Hello),
        (0usize..1_000_000).prop_map(Request::Batch),
        (1u64..1_000_000).prop_map(|every| Request::Subscribe {
            every,
            filter: None
        }),
        (1u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000).prop_map(|(every, a, b)| {
            Request::Subscribe {
                every,
                filter: Some((a.min(b), a.max(b))),
            }
        }),
        (0u64..1).prop_map(|_| Request::Metrics),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Junk never panics (a panic would kill the connection thread; the
    /// contract is an `ERR` reply and a fresh parse of the next line).
    #[test]
    fn junk_lines_never_panic(line in arb_junk_line(), d in 1usize..7) {
        let _ = parse_request(&line, d);
    }

    /// Near-miss lines never panic either, and whatever parses must
    /// re-encode to something that parses back to the same request
    /// (idempotence of the canonical form).
    #[test]
    fn near_miss_lines_never_panic(tagged in arb_near_miss_line()) {
        let (d, line) = tagged.split_once('\u{1}').expect("tagged line");
        let d: usize = d.parse().expect("tagged dimensionality");
        if let Ok(req) = parse_request(line, d) {
            let canonical = encode_request(&req);
            prop_assert_eq!(parse_request(&canonical, d), Ok(req));
        }
    }

    /// Canonical encoding round-trips exactly, coordinates included
    /// (f64 `Display` is shortest-round-trip).
    #[test]
    fn encode_parse_round_trip(d in 1usize..7, seed in any::<u64>()) {
        let mut rng = proptest::test_runner::new_rng(&format!("round-trip-{seed}"));
        let req = arb_request(d).generate(&mut rng);
        let line = encode_request(&req);
        prop_assert_eq!(parse_request(&line, d), Ok(req), "{}", line);
    }
}
