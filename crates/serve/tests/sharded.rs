//! Contract of [`ShardedRmsService`]: id-partitioned routing, monotone
//! per-shard epochs under concurrent readers, and a drained group whose
//! union matches a clean sequential apply.

use fdrms::{FdRms, FdRmsBuilder, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rms_geom::{Point, PointId};
use rms_serve::{ServeConfig, ShardedRmsService, SubmitError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

fn random_points(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| Point::new_unchecked(i as u64, (0..d).map(|_| rng.gen()).collect()))
        .collect()
}

fn random_ops(seed: u64, initial: &[Point], n: usize, d: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<PointId> = initial.iter().map(Point::id).collect();
    let mut next: PointId = 100_000;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let coords: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
        match rng.gen_range(0..4) {
            2 if !live.is_empty() => {
                let idx = rng.gen_range(0..live.len());
                ops.push(Op::Delete(live.swap_remove(idx)));
            }
            3 if !live.is_empty() => {
                let id = live[rng.gen_range(0..live.len())];
                ops.push(Op::Update(Point::new_unchecked(id, coords)));
            }
            _ => {
                ops.push(Op::Insert(Point::new_unchecked(next, coords)));
                live.push(next);
                next += 1;
            }
        }
    }
    ops
}

fn builder(d: usize) -> FdRmsBuilder {
    FdRms::builder(d).r(4).max_utilities(128).seed(5)
}

#[test]
fn readers_observe_monotone_per_shard_epochs_and_union_matches_sequential() {
    let d = 3;
    let shards = 4;
    let initial = random_points(11, 200, d);
    let ops = random_ops(12, &initial, 400, d);

    let service = ShardedRmsService::start(
        builder(d),
        initial.clone(),
        ServeConfig {
            queue_capacity: 32,
            max_batch: 64,
            ..ServeConfig::default()
        },
        shards,
    )
    .unwrap();

    // Readers hammer the merged snapshot during ingestion: each shard's
    // epoch component must never regress for any single reader, and the
    // merged solution must respect the budget.
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(4));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                let mut last = handle.snapshot().epochs.clone();
                let mut progressed = false;
                ready.wait();
                while !stop.load(Ordering::Relaxed) {
                    let snap = handle.snapshot();
                    assert_eq!(snap.epochs.len(), last.len());
                    for (s, (&now, &before)) in snap.epochs.iter().zip(&last).enumerate() {
                        assert!(
                            now >= before,
                            "shard {s} epoch went backwards: {now} after {before}"
                        );
                    }
                    if snap.epochs != last {
                        progressed = true;
                        assert!(snap.result.len() <= 4, "merged result exceeds r");
                        assert_eq!(snap.result_ids().len(), snap.result.len());
                    }
                    last = snap.epochs.clone();
                }
                let snap = handle.snapshot();
                for (&now, &before) in snap.epochs.iter().zip(&last) {
                    assert!(now >= before, "final epochs went backwards");
                }
                progressed || snap.epochs != last
            })
        })
        .collect();

    ready.wait();
    let handle = service.handle();
    for op in ops.clone() {
        handle.submit(op).unwrap();
    }
    let fds = service.shutdown();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap(), "reader saw no epoch progress");
    }

    // Routing: each shard holds exactly its id partition, and the union
    // of live ids matches a clean sequential apply over one engine.
    assert_eq!(fds.len(), shards);
    let mut union: Vec<PointId> = Vec::new();
    for (i, fd) in fds.iter().enumerate() {
        fd.check_invariants().unwrap();
        for p in fd.live_points() {
            assert_eq!(
                (p.id() % shards as u64) as usize,
                i,
                "shard {i} holds foreign id {}",
                p.id()
            );
            union.push(p.id());
        }
    }
    union.sort_unstable();
    let mut seq = builder(d).build(initial).unwrap();
    for chunk in ops.chunks(50) {
        seq.apply_batch(chunk.to_vec()).unwrap();
    }
    let mut seq_ids: Vec<PointId> = seq.live_points().iter().map(Point::id).collect();
    seq_ids.sort_unstable();
    assert_eq!(union, seq_ids);

    // The final aggregate (readable through outstanding handles) agrees
    // with the drained group.
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_applied, 400);
    assert_eq!(snap.stats.ops_rejected, 0);
    assert_eq!(snap.len, seq.len());
    assert_eq!(snap.stats.queue_depth, 0);
    let orphan = Op::Delete(0);
    assert!(matches!(
        handle.submit(orphan.clone()),
        Err(SubmitError::Disconnected(op)) if op == orphan
    ));
}

#[test]
fn aggregate_merges_and_trims_to_r() {
    let d = 2;
    let shards = 3;
    // A spread of strong points so every shard's solution is non-trivial.
    let initial: Vec<Point> = (0..90)
        .map(|i| {
            let t = (i as f64) / 90.0;
            Point::new_unchecked(i, vec![t, 1.0 - t])
        })
        .collect();
    let service =
        ShardedRmsService::start(builder(d), initial, ServeConfig::default(), shards).unwrap();
    let snap = service.snapshot();
    assert_eq!(snap.epochs, vec![0; shards]);
    assert_eq!(snap.len, 90);
    assert!(
        snap.result.len() <= 4,
        "union of {shards} shard solutions must be re-trimmed to r"
    );
    // Sorted by id, like the single-service snapshot.
    let ids = snap.result_ids();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    // Repeated reads at an unchanged shard state hit the merge cache.
    let again = service.snapshot();
    assert!(Arc::ptr_eq(&snap, &again));
    let fds = service.shutdown();
    for fd in &fds {
        fd.check_invariants().unwrap();
    }
}

#[test]
fn single_shard_group_behaves_like_the_plain_service() {
    let d = 2;
    let initial = random_points(21, 60, d);
    let ops = random_ops(22, &initial, 80, d);
    let sharded =
        ShardedRmsService::start(builder(d), initial.clone(), ServeConfig::default(), 1).unwrap();
    for op in ops.clone() {
        sharded.submit(op).unwrap();
    }
    let mut fds = sharded.shutdown();
    let fd = fds.pop().unwrap();
    fd.check_invariants().unwrap();

    let plain = rms_serve::RmsService::start(builder(d), initial, ServeConfig::default()).unwrap();
    for op in ops {
        plain.submit(op).unwrap();
    }
    let fd2 = plain.shutdown();
    assert_eq!(fd.len(), fd2.len());
    assert_eq!(fd.result_ids(), fd2.result_ids());
}
