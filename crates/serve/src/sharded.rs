//! An id-partitioned shard group over [`RmsService`]: `S` independent
//! engines behind one router with the same submit/snapshot/shutdown
//! surface.
//!
//! Partitioning is by tuple id — shard `id % S` owns the tuple for its
//! whole lifetime, so every operation on one id flows through one
//! shard's queue and per-id ordering is exactly the single-service
//! guarantee. Reads merge the per-shard solutions into one
//! [`AggregateSnapshot`]: per-shard epochs (each strictly monotone),
//! summed [`ServiceStats`], and the union of the shard solutions
//! re-trimmed to the configured `r` by the existing sampled-greedy step
//! ([`GreedyStar`](rms_baselines::GreedyStar)).
//!
//! With a [write-ahead log](crate::wal) base path, shard `i` logs to
//! `<base>.<i>` — `S` independent logs, recovered independently on the
//! next start.

use crate::backend::{BackendView, DeltaReceiver};
use crate::service::{RmsService, ServeConfig, ServeError, SubmitError};
use crate::snapshot::{diff_results, ResultSnapshot, ServiceStats, SnapshotDelta, StatsDelta};
use crate::sync::recover_poisoned;
use fdrms::{FdRms, FdRmsBuilder, Op};
use rms_baselines::{GreedyStar, StaticRms};
use rms_geom::Point;
use rms_metrics::{Counter, Registry};
use std::path::{Path, PathBuf};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

/// Utility-vector samples for the aggregate re-trim. The union being
/// trimmed holds at most `S·r` tuples, so the sampled greedy is cheap;
/// the merge cache amortises it to one run per published shard state.
const TRIM_SAMPLES: usize = 512;
const TRIM_SEED: u64 = 0x5AD3;

/// One merged view over every shard, frozen at a vector of per-shard
/// epochs. For any single reader, each component of `epochs` is
/// non-decreasing across successive snapshots (merges are serialized, so
/// the published vectors are pointwise monotone).
#[derive(Debug, Clone)]
pub struct AggregateSnapshot {
    /// Per-shard publication epochs, indexed by shard.
    pub epochs: Vec<u64>,
    /// The merged solution: the union of the per-shard solutions,
    /// re-trimmed to the configured `r` when the union exceeds it,
    /// sorted by id.
    pub result: Vec<Point>,
    /// Live tuples across all shards.
    pub len: usize,
    /// Summed set-cover universe sizes.
    pub m: usize,
    /// Worst per-shard Monte-Carlo regret estimate, when estimation is
    /// enabled. Each shard estimates against *its own partition*, so
    /// this is a health indicator, not a bound on the merged result's
    /// global regret.
    pub mrr: Option<f64>,
    /// Per-shard stats folded with [`ServiceStats::absorb`].
    pub stats: ServiceStats,
}

impl AggregateSnapshot {
    /// Ids of the merged solution, sorted ascending.
    pub fn result_ids(&self) -> Vec<rms_geom::PointId> {
        self.result.iter().map(Point::id).collect()
    }

    /// The delta from `prev` to this merged snapshot. Versions are
    /// epoch-vector sums: pointwise-monotone vectors make the sum
    /// strictly increase across distinct merged states.
    pub fn delta_from(&self, prev: &AggregateSnapshot) -> SnapshotDelta {
        let (added, removed) = diff_results(&prev.result, &self.result);
        SnapshotDelta {
            from_version: prev.epochs.iter().sum(),
            version: self.epochs.iter().sum(),
            epochs: self.epochs.clone(),
            added,
            removed,
            len: self.len,
            stats: StatsDelta::between(&prev.stats, &self.stats),
        }
    }
}

fn wal_meta_path(base: &Path) -> PathBuf {
    let mut p = base.as_os_str().to_os_string();
    p.push(".meta");
    PathBuf::from(p)
}

/// Validates the shard count a WAL base path was written with:
/// `<base>.meta` holds `shards=N`. A mismatch is fatal — the router's
/// modulus must equal the one the logs were partitioned by. A bare
/// `<base>` file is also refused: that is a *single-service* log
/// (`RmsService::start_with_wal` uses the path directly), not a
/// group's. Read-only: the sidecar is recorded by
/// [`record_wal_shard_meta`] only after every shard has started, so a
/// failed startup never pins a shard count no log data was written
/// under.
fn check_wal_shard_meta(base: &Path, shards: usize) -> std::io::Result<()> {
    use std::io::{Error, ErrorKind};
    if base.is_file() {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!(
                "{} is a single-service write-ahead log; a shard group logs to {}.<i> \
                 (restart without --shards, or move the old log aside)",
                base.display(),
                base.display()
            ),
        ));
    }
    let meta_path = wal_meta_path(base);
    match std::fs::read_to_string(&meta_path) {
        Ok(raw) => {
            let recorded: Option<usize> = raw
                .trim()
                .strip_prefix("shards=")
                .and_then(|v| v.parse().ok());
            match recorded {
                Some(n) if n == shards => Ok(()),
                Some(n) => Err(Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "write-ahead logs at {} were written by a {n}-shard group; \
                         refusing to start with {shards} shards (acknowledged ops would be \
                         lost or mis-partitioned)",
                        base.display()
                    ),
                )),
                None => Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("unreadable shard metadata in {}", meta_path.display()),
                )),
            }
        }
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Records the group's shard count next to its logs (idempotent).
fn record_wal_shard_meta(base: &Path, shards: usize) -> std::io::Result<()> {
    let meta_path = wal_meta_path(base);
    if let Some(parent) = meta_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&meta_path, format!("shards={shards}\n"))
}

/// The merge state shared by every [`ShardedHandle`]: gathering the
/// per-shard snapshots and merging them happens under one lock, which
/// both serializes merges (making published epoch vectors pointwise
/// monotone) and caches the result — readers at the same shard state pay
/// an `Arc` clone, not a re-merge.
#[derive(Debug)]
struct Merger {
    k: usize,
    r: usize,
    cache: Mutex<Option<Arc<AggregateSnapshot>>>,
    /// Reads served by the cached merge (an `Arc` clone). Lives in the
    /// group's metrics registry as `rms_shard_merge_hits_total`, and is
    /// exposed as `merge_hits=` in `STATS` so the epoch-vector cache's
    /// effectiveness is observable from outside.
    hits: Counter,
    /// Reads that had to re-merge because some shard published a new
    /// epoch (`rms_shard_merge_misses_total` / `merge_misses=`).
    misses: Counter,
}

impl Merger {
    fn snapshot(&self, shards: &[crate::RmsHandle]) -> Arc<AggregateSnapshot> {
        let mut guard = recover_poisoned(self.cache.lock());
        let snaps: Vec<Arc<ResultSnapshot>> = shards.iter().map(|h| h.snapshot()).collect();
        if let Some(cached) = guard.as_ref() {
            if snaps.iter().zip(&cached.epochs).all(|(s, &e)| s.epoch == e) {
                self.hits.inc();
                return Arc::clone(cached);
            }
        }
        self.misses.inc();
        let merged = Arc::new(self.merge(&snaps));
        *guard = Some(Arc::clone(&merged));
        merged
    }

    fn merge(&self, snaps: &[Arc<ResultSnapshot>]) -> AggregateSnapshot {
        let mut stats = ServiceStats::default();
        let mut union: Vec<Point> = Vec::new();
        let mut len = 0;
        let mut m = 0;
        let mut mrr: Option<f64> = None;
        for snap in snaps {
            stats.absorb(&snap.stats);
            union.extend(snap.result.iter().cloned());
            len += snap.len;
            m += snap.m;
            if let Some(v) = snap.mrr {
                mrr = Some(mrr.map_or(v, |w: f64| w.max(v)));
            }
        }
        // Shards own disjoint id partitions, so the union is dup-free;
        // it only needs trimming when it exceeds the budget.
        let mut result = if union.len() > self.r {
            GreedyStar {
                samples: TRIM_SAMPLES,
                seed: TRIM_SEED,
            }
            .compute(&[], &union, self.k, self.r)
        } else {
            union
        };
        result.sort_unstable_by_key(Point::id);
        AggregateSnapshot {
            epochs: snaps.iter().map(|s| s.epoch).collect(),
            result,
            len,
            m,
            mrr,
            stats,
        }
    }
}

/// A cheap, cloneable client of a running [`ShardedRmsService`]:
/// mutations route to their id's shard, reads return the merged
/// [`AggregateSnapshot`]. Mirrors [`RmsHandle`](crate::RmsHandle).
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    shards: Vec<crate::RmsHandle>,
    merger: Arc<Merger>,
}

impl ShardedHandle {
    fn shard_of(&self, op: &Op) -> usize {
        (op.id() % self.shards.len() as u64) as usize
    }

    /// Routes one operation to its id's shard, blocking on that shard's
    /// backpressure. Per-id ordering is preserved: one id always maps to
    /// one shard queue.
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        self.shards[self.shard_of(&op)].submit(op)
    }

    /// Non-blocking [`ShardedHandle::submit`].
    pub fn try_submit(&self, op: Op) -> Result<(), SubmitError> {
        self.shards[self.shard_of(&op)].try_submit(op)
    }

    /// The merged view of every shard's most recent snapshot. Merges are
    /// cached by epoch vector, so steady-state reads cost the gather (one
    /// `Arc` clone per shard) plus a lock; a fresh merge runs only after
    /// some shard published a new epoch.
    pub fn snapshot(&self) -> Arc<AggregateSnapshot> {
        self.merger.snapshot(&self.shards)
    }

    /// Total operations queued across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|h| h.queue_depth()).sum()
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregate-merge cache counters `(hits, misses)` since start.
    pub fn merge_cache_stats(&self) -> (u64, u64) {
        (self.merger.hits.value(), self.merger.misses.value())
    }

    /// Subscribes to the group's merged delta stream.
    ///
    /// Every shard applier funnels its publish signal into one channel; a
    /// router thread then re-merges through the (serialized, cached)
    /// merge path and pushes the diff between consecutive merged states.
    /// Bursts coalesce — a subscriber sees a gap-free chain of
    /// [`SnapshotDelta`]s over merged states, not one delta per shard
    /// epoch. The stream closes when every shard has shut down (after a
    /// final catch-up merge) or the receiver is dropped.
    pub fn watch(&self) -> DeltaReceiver {
        let (signal_tx, signal_rx) = channel();
        for shard in &self.shards {
            // Signal-only registration: the router diffs merged
            // snapshots itself, so the shard appliers never compute a
            // per-shard delta on its behalf (and can never double-apply).
            let _ = shard.watch_signal(signal_tx.clone());
        }
        drop(signal_tx);
        // The base merge runs *after* registration: anything published
        // before it is already in the base, anything after wakes the
        // router and shows up as a delta.
        let handle = self.clone();
        let base = self.merger.snapshot(&self.shards);
        let (tx, rx) = channel();
        let mut prev = Arc::clone(&base);
        let router = move || {
            loop {
                let closed = signal_rx.recv().is_err();
                // Coalesce the burst: one merge covers every signal
                // drained here.
                while signal_rx.try_recv().is_ok() {}
                let cur = handle.merger.snapshot(&handle.shards);
                if cur.epochs != prev.epochs {
                    if tx.send(cur.delta_from(&prev)).is_err() {
                        return; // subscriber hung up
                    }
                    prev = cur;
                }
                if closed {
                    return; // every shard shut down; final merge done
                }
            }
        };
        if std::thread::Builder::new()
            .name("rms-delta-router".into())
            .spawn(router)
            .is_err()
        {
            // Spawn failure: fall back to an already-closed stream (the
            // sender side was moved into the failed closure and dropped).
        }
        DeltaReceiver::new(rx, BackendView::Merged(base))
    }
}

/// `S` independent [`RmsService`]s behind an id-partitioning router.
///
/// Each shard owns the tuples with `id % S == shard_index`: its own
/// engine, applier thread, ingestion queue, and (when WAL-backed) its
/// own log. Ingestion scales with shards because the per-op maintenance
/// cost lands on `S` applier threads instead of one; reads stay
/// non-blocking through the merged snapshot cache.
///
/// The caller is responsible for routing *initial* data and operations
/// consistently — both happen automatically through
/// [`ShardedRmsService::start`] (which partitions the initial dataset)
/// and [`ShardedHandle::submit`] (which routes by id).
#[derive(Debug)]
pub struct ShardedRmsService {
    services: Vec<RmsService>,
    handle: ShardedHandle,
    registry: Arc<Registry>,
}

impl ShardedRmsService {
    /// Starts `shards` services over an id-partition of `initial`, each
    /// configured from the same `builder` and `cfg`.
    pub fn start(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        shards: usize,
    ) -> Result<Self, ServeError> {
        Self::start_inner(builder, initial, cfg, shards, None)
    }

    /// [`ShardedRmsService::start`] with crash durability: shard `i`
    /// opens (and replays) a write-ahead log at `<wal_base>.<i>`. See
    /// [`RmsService::start_with_wal`] for the per-shard contract.
    ///
    /// The partition key is baked into the log file names, so the group
    /// records its shard count in a `<wal_base>.meta` sidecar and
    /// refuses to start against logs written with a different count —
    /// silently opening 2 of 3 logs (or re-partitioning recovered
    /// tuples under a different modulus) would lose or duplicate
    /// acknowledged data.
    pub fn start_with_wal(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        shards: usize,
        wal_base: &Path,
    ) -> Result<Self, ServeError> {
        Self::start_inner(builder, initial, cfg, shards, Some(wal_base))
    }

    fn start_inner(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        shards: usize,
        wal_base: Option<&Path>,
    ) -> Result<Self, ServeError> {
        if shards == 0 {
            return Err(ServeError::Engine(fdrms::FdRmsError::InvalidParameter(
                "shard count must be positive".into(),
            )));
        }
        if let Some(base) = wal_base {
            check_wal_shard_meta(base, shards).map_err(ServeError::Wal)?;
        }
        let mut partitions: Vec<Vec<Point>> = (0..shards).map(|_| Vec::new()).collect();
        for p in initial {
            partitions[(p.id() % shards as u64) as usize].push(p);
        }
        // One registry for the whole group: every shard's families carry
        // a `shard="N"` label, so one exposition covers the group.
        let registry = Arc::new(Registry::from_env());
        let mut services = Vec::with_capacity(shards);
        for (i, part) in partitions.into_iter().enumerate() {
            let service = match wal_base {
                None => RmsService::start_labeled(builder, part, cfg, &registry, Some(i))?,
                Some(base) => {
                    let mut path = base.as_os_str().to_os_string();
                    path.push(format!(".{i}"));
                    RmsService::start_with_wal_labeled(
                        builder,
                        part,
                        cfg,
                        &PathBuf::from(path),
                        &registry,
                        Some(i),
                    )?
                }
            };
            services.push(service);
        }
        if let Some(base) = wal_base {
            // Recorded only now, with every shard's log open: a failed
            // startup must not pin a shard count nothing was written
            // under.
            record_wal_shard_meta(base, shards).map_err(ServeError::Wal)?;
        }
        let merger = Arc::new(Merger {
            k: services[0].k(),
            r: services[0].r(),
            cache: Mutex::new(None),
            hits: registry.register_counter(
                "rms_shard_merge_hits_total",
                "Merged-snapshot reads served from the epoch-vector cache.",
                &[],
            ),
            misses: registry.register_counter(
                "rms_shard_merge_misses_total",
                "Merged-snapshot reads that re-merged after a shard published.",
                &[],
            ),
        });
        let handle = ShardedHandle {
            shards: services.iter().map(RmsService::handle).collect(),
            merger,
        };
        Ok(Self {
            services,
            handle,
            registry,
        })
    }

    /// A new cloneable client handle.
    pub fn handle(&self) -> ShardedHandle {
        self.handle.clone()
    }

    /// The group-wide metrics registry: per-shard applier/WAL families
    /// (labeled `shard="N"`) plus the merge-cache counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// See [`ShardedHandle::snapshot`].
    pub fn snapshot(&self) -> Arc<AggregateSnapshot> {
        self.handle.snapshot()
    }

    /// See [`ShardedHandle::submit`].
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        self.handle.submit(op)
    }

    /// The configured tuple dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.services[0].dim()
    }

    /// The configured rank depth `k`.
    pub fn k(&self) -> usize {
        self.services[0].k()
    }

    /// The configured result size budget `r` (per shard and for the
    /// merged aggregate).
    pub fn r(&self) -> usize {
        self.services[0].r()
    }

    /// See [`ShardedHandle::watch`].
    pub fn watch(&self) -> DeltaReceiver {
        self.handle.watch()
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.services.len()
    }

    /// Gracefully shuts every shard down in turn (each drains its
    /// acknowledged ops and compacts its log) and returns the per-shard
    /// engines, indexed by shard.
    pub fn shutdown(self) -> Vec<FdRms> {
        self.services
            .into_iter()
            .map(RmsService::shutdown)
            .collect()
    }

    /// Durability-testing hook: stop every shard as an unclean kill
    /// would — no drain, no WAL compaction. See [`RmsService::crash`].
    pub fn crash(self) {
        for service in self.services {
            service.crash();
        }
    }
}
