//! The line protocol spoken by the TCP front end.
//!
//! One request per `\n`-terminated line, one reply line per request
//! (replies start with `OK` or `ERR`) — except the v2 framing verbs
//! below. The v1 verb set:
//!
//! ```text
//! INSERT <id> <v1> … <vd>     enqueue an insertion            → OK queued
//! DELETE <id>                 enqueue a deletion              → OK queued
//! UPDATE <id> <v1> … <vd>     enqueue an attribute update     → OK queued
//! QUERY                       read the published solution     → OK epoch=E n=N r=K ids=…
//! STATS                       read service metrics            → OK epoch=E … (key=value)
//! SHUTDOWN                    drain, stop serving             → OK shutting down
//! ```
//!
//! **Protocol v2** keeps every v1 verb byte-compatible and adds:
//!
//! ```text
//! HELLO v<N>            negotiate the session version           → OK v<min(N,2)> dim=D k=K r=R shards=S
//! BATCH <n>             the next n lines are mutation verbs,
//!                       submitted with ONE ack for all of them  → OK queued n=<n>
//! SUBSCRIBE [every=K] [ids=LO..HI]
//!                       switch the connection to push mode      → OK subscribed every=K [filter=LO..HI] epoch=E n=N ids=…
//!                       then one line per published delta:        DELTA epoch=E from=F n=N +<ids> -<ids>
//! METRICS               read the Prometheus text exposition     → OK metrics lines=N
//!                                                                 then N raw exposition lines
//! ```
//!
//! A connection starts at v1; `BATCH`, `SUBSCRIBE`, and `METRICS`
//! require a prior `HELLO v2` (the server replies `ERR … requires
//! protocol v2` until then), so v1 clients can never trip over framing
//! they do not speak.
//! `BATCH` is all-or-nothing at the framing level: the server reads all
//! `n` lines first and submits none of them if any line is malformed.
//! `SUBSCRIBE every=K` coalesces deltas so at most one `DELTA` line is
//! pushed per K published epochs while the stream is active (an idle
//! stream flushes the remainder after a short beat). `SUBSCRIBE
//! ids=LO..HI` filters server-side: the ack's `ids=` and every pushed
//! `+`/`-` list are sliced to the inclusive id range (the `DELTA`
//! header still arrives for versions whose slice is empty, so a
//! filtered stream observes every version); the ack echoes the range
//! as `filter=LO..HI` and its `n=` stays the *full* solution size.
//! Against a sharded
//! backend the pushed lines carry the epoch vector —
//! `DELTA epochs=e0,e1,… version=V from=F …` — mirroring `QUERY`'s
//! `epochs=` form; `+`/`-` id lists are omitted when empty.
//!
//! Mutations are acknowledged at *enqueue* time and applied
//! asynchronously; `STATS` exposes `ops_applied`/`ops_rejected` so a
//! client can await visibility (plus `replayed_batches`, `wal_recovered`
//! and — sharded — `merge_hits`/`merge_misses` when relevant). On a
//! WAL-backed server the acknowledgement additionally means the op is on
//! the log. Malformed input never kills the connection — the reply is
//! `ERR <reason>` and the next line is parsed fresh — with one class of
//! exceptions: in a v2 session, a `BATCH` header the server cannot
//! honor (count above [`MAX_BATCH_LINES`], or unparseable at all)
//! closes the connection, because the announced op lines can neither be
//! consumed nor safely reinterpreted as requests.
//!
//! Against a sharded backend the verbs are identical; `QUERY`/`STATS`
//! report the per-shard epoch vector (`epochs=e0,e1,…` plus `shards=S`
//! in `STATS`) instead of the single `epoch=E`, and the reported
//! solution is the merged aggregate.

use fdrms::Op;
use rms_geom::{Point, PointId};

/// The newest protocol version this module speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on the op lines one `BATCH` header may announce. A
/// header above the cap is refused *and closes the connection* — the
/// framing contract says those lines are ops, so they cannot safely be
/// reinterpreted as requests.
pub const MAX_BATCH_LINES: usize = 1 << 16;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue one engine operation (`INSERT` / `DELETE` / `UPDATE`).
    Submit(Op),
    /// Read the current result snapshot.
    Query,
    /// Read service metrics.
    Stats,
    /// Drain the queue and stop the server.
    Shutdown,
    /// Negotiate the session protocol version (`HELLO v<N>`).
    Hello(u32),
    /// Header of a pipelined mutation batch: the next `n` lines are
    /// mutation verbs, acknowledged with one reply (v2).
    Batch(usize),
    /// Switch the connection to push mode, streaming snapshot deltas
    /// every `every` epochs (v2).
    Subscribe {
        /// Coalescing factor: at most one `DELTA` line per this many
        /// published epochs (≥ 1).
        every: u64,
        /// Optional server-side id-range filter (inclusive): the ack's
        /// `ids=` and every pushed `+`/`-` list are sliced to the range.
        filter: Option<(PointId, PointId)>,
    },
    /// Read the backend's Prometheus text exposition (v2): the reply
    /// header `OK metrics lines=N` is followed by `N` raw exposition
    /// lines.
    Metrics,
}

/// Encodes a request into its canonical wire line (no trailing newline).
/// [`parse_request`] inverts it: `parse_request(&encode_request(r), d)`
/// returns `r` for any request valid at dimensionality `d` — the
/// round-trip property pinned by `tests/protocol_props.rs`.
pub fn encode_request(req: &Request) -> String {
    fn point_args(p: &Point) -> String {
        // `{}` on f64 prints the shortest representation that parses
        // back exactly, so coordinates survive the round-trip.
        let coords: Vec<String> = p.coords().iter().map(f64::to_string).collect();
        format!("{} {}", p.id(), coords.join(" "))
    }
    match req {
        Request::Submit(Op::Insert(p)) => format!("INSERT {}", point_args(p)),
        Request::Submit(Op::Update(p)) => format!("UPDATE {}", point_args(p)),
        Request::Submit(Op::Delete(id)) => format!("DELETE {id}"),
        Request::Query => "QUERY".into(),
        Request::Stats => "STATS".into(),
        Request::Shutdown => "SHUTDOWN".into(),
        Request::Hello(v) => format!("HELLO v{v}"),
        Request::Batch(n) => format!("BATCH {n}"),
        Request::Subscribe { every, filter } => match filter {
            None => format!("SUBSCRIBE every={every}"),
            Some((lo, hi)) => format!("SUBSCRIBE every={every} ids={lo}..{hi}"),
        },
        Request::Metrics => "METRICS".into(),
    }
}

/// Parses one request line against dimensionality `d`.
pub fn parse_request(line: &str, d: usize) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or("empty request")?.to_ascii_uppercase();
    let rest: Vec<&str> = tokens.collect();
    let no_args = |req: Request| {
        if rest.is_empty() {
            Ok(req)
        } else {
            Err(format!("{verb} takes no arguments"))
        }
    };
    match verb.as_str() {
        "INSERT" => Ok(Request::Submit(Op::Insert(parse_point(&rest, d)?))),
        "UPDATE" => Ok(Request::Submit(Op::Update(parse_point(&rest, d)?))),
        "DELETE" => {
            let [id] = rest.as_slice() else {
                return Err("usage: DELETE <id>".into());
            };
            Ok(Request::Submit(Op::Delete(parse_id(id)?)))
        }
        "QUERY" => no_args(Request::Query),
        "STATS" => no_args(Request::Stats),
        "SHUTDOWN" => no_args(Request::Shutdown),
        "METRICS" => no_args(Request::Metrics),
        "HELLO" => {
            let [version] = rest.as_slice() else {
                return Err("usage: HELLO v<version>".into());
            };
            let digits = version
                .strip_prefix(['v', 'V'])
                .ok_or_else(|| format!("invalid version `{version}` (expected e.g. `v2`)"))?;
            let version: u32 = digits
                .parse()
                .map_err(|_| format!("invalid version number `{digits}`"))?;
            if version == 0 {
                return Err("protocol versions start at v1".into());
            }
            Ok(Request::Hello(version))
        }
        "BATCH" => {
            let [count] = rest.as_slice() else {
                return Err("usage: BATCH <n>".into());
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("invalid batch size `{count}`"))?;
            Ok(Request::Batch(count))
        }
        "SUBSCRIBE" => {
            const USAGE: &str = "usage: SUBSCRIBE [every=K] [ids=LO..HI]";
            let mut every: Option<u64> = None;
            let mut filter: Option<(PointId, PointId)> = None;
            for arg in &rest {
                if let Some(value) = arg.strip_prefix("every=") {
                    if every.is_some() {
                        return Err("duplicate every= argument".into());
                    }
                    let k: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid every value `{value}`"))?;
                    if k == 0 {
                        return Err("every must be at least 1".into());
                    }
                    every = Some(k);
                } else if let Some(value) = arg.strip_prefix("ids=") {
                    if filter.is_some() {
                        return Err("duplicate ids= argument".into());
                    }
                    let Some((lo, hi)) = value.split_once("..") else {
                        return Err(format!("invalid ids range `{value}` (expected LO..HI)"));
                    };
                    let lo = parse_id(lo)?;
                    let hi = parse_id(hi)?;
                    if lo > hi {
                        return Err(format!("empty ids range `{value}` (LO must be ≤ HI)"));
                    }
                    filter = Some((lo, hi));
                } else {
                    return Err(USAGE.into());
                }
            }
            Ok(Request::Subscribe {
                every: every.unwrap_or(1),
                filter,
            })
        }
        other => Err(format!(
            "unknown command `{other}` (expected INSERT/DELETE/UPDATE/QUERY/STATS/SHUTDOWN, \
             or v2: HELLO/BATCH/SUBSCRIBE/METRICS)"
        )),
    }
}

fn parse_id(token: &str) -> Result<PointId, String> {
    token
        .parse::<PointId>()
        .map_err(|_| format!("invalid id `{token}`"))
}

fn parse_point(tokens: &[&str], d: usize) -> Result<Point, String> {
    let Some((id, coords)) = tokens.split_first() else {
        return Err(format!("usage: INSERT|UPDATE <id> <v1> … <v{d}>"));
    };
    let id = parse_id(id)?;
    if coords.len() != d {
        return Err(format!("expected {d} coordinates, got {}", coords.len()));
    }
    let coords: Vec<f64> = coords
        .iter()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|_| format!("invalid coordinate `{t}`"))
        })
        .collect::<Result<_, _>>()?;
    Point::new(id, coords).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mutations() {
        assert_eq!(
            parse_request("INSERT 7 0.5 0.25", 2),
            Ok(Request::Submit(Op::Insert(Point::new_unchecked(
                7,
                vec![0.5, 0.25]
            ))))
        );
        assert_eq!(
            parse_request("update 3 1 0", 2),
            Ok(Request::Submit(Op::Update(Point::new_unchecked(
                3,
                vec![1.0, 0.0]
            ))))
        );
        assert_eq!(
            parse_request("DELETE 9", 4),
            Ok(Request::Submit(Op::Delete(9)))
        );
    }

    #[test]
    fn parses_reads_and_control() {
        assert_eq!(parse_request("QUERY", 2), Ok(Request::Query));
        assert_eq!(parse_request("stats", 2), Ok(Request::Stats));
        assert_eq!(parse_request("Shutdown", 2), Ok(Request::Shutdown));
    }

    #[test]
    fn parses_v2_verbs() {
        assert_eq!(parse_request("HELLO v2", 2), Ok(Request::Hello(2)));
        assert_eq!(parse_request("hello V17", 2), Ok(Request::Hello(17)));
        assert_eq!(parse_request("BATCH 64", 2), Ok(Request::Batch(64)));
        assert_eq!(parse_request("BATCH 0", 2), Ok(Request::Batch(0)));
        assert_eq!(
            parse_request("SUBSCRIBE", 2),
            Ok(Request::Subscribe {
                every: 1,
                filter: None
            })
        );
        assert_eq!(
            parse_request("SUBSCRIBE every=8", 2),
            Ok(Request::Subscribe {
                every: 8,
                filter: None
            })
        );
        assert_eq!(
            parse_request("SUBSCRIBE ids=10..20", 2),
            Ok(Request::Subscribe {
                every: 1,
                filter: Some((10, 20))
            })
        );
        assert_eq!(
            parse_request("SUBSCRIBE ids=5..5 every=3", 2),
            Ok(Request::Subscribe {
                every: 3,
                filter: Some((5, 5))
            }),
            "arguments compose in either order"
        );
        assert_eq!(parse_request("metrics", 2), Ok(Request::Metrics));
        assert!(parse_request("METRICS now", 2).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_request("", 2).is_err());
        assert!(parse_request("FROB 1", 2).is_err());
        assert!(parse_request("INSERT", 2).is_err());
        assert!(parse_request("INSERT x 0.1 0.2", 2).is_err());
        assert!(parse_request("INSERT 1 0.1", 2).is_err(), "wrong arity");
        assert!(parse_request("INSERT 1 0.1 nope", 2).is_err());
        assert!(parse_request("INSERT 1 -0.1 0.2", 2).is_err(), "negative");
        assert!(parse_request("INSERT 1 NaN 0.2", 2).is_err(), "non-finite");
        assert!(parse_request("DELETE", 2).is_err());
        assert!(parse_request("DELETE 1 2", 2).is_err());
        assert!(parse_request("QUERY now", 2).is_err());
    }

    #[test]
    fn rejects_malformed_v2() {
        assert!(parse_request("HELLO", 2).is_err());
        assert!(parse_request("HELLO 2", 2).is_err(), "missing v prefix");
        assert!(parse_request("HELLO v0", 2).is_err());
        assert!(parse_request("HELLO vx", 2).is_err());
        assert!(parse_request("HELLO v2 now", 2).is_err());
        assert!(parse_request("BATCH", 2).is_err());
        assert!(parse_request("BATCH -3", 2).is_err());
        assert!(parse_request("BATCH many", 2).is_err());
        assert!(parse_request("BATCH 1 2", 2).is_err());
        assert!(parse_request("SUBSCRIBE every=0", 2).is_err());
        assert!(parse_request("SUBSCRIBE every=x", 2).is_err());
        assert!(parse_request("SUBSCRIBE now", 2).is_err());
        assert!(parse_request("SUBSCRIBE every=1 x", 2).is_err());
        assert!(parse_request("SUBSCRIBE every=1 every=2", 2).is_err());
        assert!(parse_request("SUBSCRIBE ids=1..2 ids=3..4", 2).is_err());
        assert!(parse_request("SUBSCRIBE ids=9..3", 2).is_err(), "inverted");
        assert!(parse_request("SUBSCRIBE ids=7", 2).is_err(), "no range");
        assert!(parse_request("SUBSCRIBE ids=a..b", 2).is_err());
    }

    #[test]
    fn encode_round_trips() {
        let reqs = [
            Request::Submit(Op::Insert(Point::new_unchecked(7, vec![0.5, 0.25]))),
            Request::Submit(Op::Update(Point::new_unchecked(3, vec![1.0, 0.0]))),
            Request::Submit(Op::Delete(9)),
            Request::Query,
            Request::Stats,
            Request::Shutdown,
            Request::Hello(2),
            Request::Batch(128),
            Request::Subscribe {
                every: 4,
                filter: None,
            },
            Request::Subscribe {
                every: 1,
                filter: Some((100, 250)),
            },
            Request::Metrics,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert_eq!(parse_request(&line, 2), Ok(req), "{line}");
        }
    }
}
