//! The line protocol spoken by the TCP front end.
//!
//! One request per `\n`-terminated line, one reply line per request
//! (replies start with `OK` or `ERR`):
//!
//! ```text
//! INSERT <id> <v1> … <vd>     enqueue an insertion            → OK queued
//! DELETE <id>                 enqueue a deletion              → OK queued
//! UPDATE <id> <v1> … <vd>     enqueue an attribute update     → OK queued
//! QUERY                       read the published solution     → OK epoch=E n=N r=K ids=…
//! STATS                       read service metrics            → OK epoch=E … (key=value)
//! SHUTDOWN                    drain, stop serving             → OK shutting down
//! ```
//!
//! Mutations are acknowledged at *enqueue* time and applied
//! asynchronously; `STATS` exposes `ops_applied`/`ops_rejected` so a
//! client can await visibility (plus `replayed_batches` and
//! `wal_recovered` when relevant). On a WAL-backed server the
//! acknowledgement additionally means the op is on the log. Malformed
//! input never kills the connection — the reply is `ERR <reason>` and
//! the next line is parsed fresh.
//!
//! Against a sharded backend the verbs are identical; `QUERY`/`STATS`
//! report the per-shard epoch vector (`epochs=e0,e1,…` plus `shards=S`
//! in `STATS`) instead of the single `epoch=E`, and the reported
//! solution is the merged aggregate.

use fdrms::Op;
use rms_geom::{Point, PointId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue one engine operation (`INSERT` / `DELETE` / `UPDATE`).
    Submit(Op),
    /// Read the current result snapshot.
    Query,
    /// Read service metrics.
    Stats,
    /// Drain the queue and stop the server.
    Shutdown,
}

/// Parses one request line against dimensionality `d`.
pub fn parse_request(line: &str, d: usize) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or("empty request")?.to_ascii_uppercase();
    let rest: Vec<&str> = tokens.collect();
    let no_args = |req: Request| {
        if rest.is_empty() {
            Ok(req)
        } else {
            Err(format!("{verb} takes no arguments"))
        }
    };
    match verb.as_str() {
        "INSERT" => Ok(Request::Submit(Op::Insert(parse_point(&rest, d)?))),
        "UPDATE" => Ok(Request::Submit(Op::Update(parse_point(&rest, d)?))),
        "DELETE" => {
            let [id] = rest.as_slice() else {
                return Err("usage: DELETE <id>".into());
            };
            Ok(Request::Submit(Op::Delete(parse_id(id)?)))
        }
        "QUERY" => no_args(Request::Query),
        "STATS" => no_args(Request::Stats),
        "SHUTDOWN" => no_args(Request::Shutdown),
        other => Err(format!(
            "unknown command `{other}` (expected INSERT/DELETE/UPDATE/QUERY/STATS/SHUTDOWN)"
        )),
    }
}

fn parse_id(token: &str) -> Result<PointId, String> {
    token
        .parse::<PointId>()
        .map_err(|_| format!("invalid id `{token}`"))
}

fn parse_point(tokens: &[&str], d: usize) -> Result<Point, String> {
    let Some((id, coords)) = tokens.split_first() else {
        return Err(format!("usage: INSERT|UPDATE <id> <v1> … <v{d}>"));
    };
    let id = parse_id(id)?;
    if coords.len() != d {
        return Err(format!("expected {d} coordinates, got {}", coords.len()));
    }
    let coords: Vec<f64> = coords
        .iter()
        .map(|t| {
            t.parse::<f64>()
                .map_err(|_| format!("invalid coordinate `{t}`"))
        })
        .collect::<Result<_, _>>()?;
    Point::new(id, coords).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mutations() {
        assert_eq!(
            parse_request("INSERT 7 0.5 0.25", 2),
            Ok(Request::Submit(Op::Insert(Point::new_unchecked(
                7,
                vec![0.5, 0.25]
            ))))
        );
        assert_eq!(
            parse_request("update 3 1 0", 2),
            Ok(Request::Submit(Op::Update(Point::new_unchecked(
                3,
                vec![1.0, 0.0]
            ))))
        );
        assert_eq!(
            parse_request("DELETE 9", 4),
            Ok(Request::Submit(Op::Delete(9)))
        );
    }

    #[test]
    fn parses_reads_and_control() {
        assert_eq!(parse_request("QUERY", 2), Ok(Request::Query));
        assert_eq!(parse_request("stats", 2), Ok(Request::Stats));
        assert_eq!(parse_request("Shutdown", 2), Ok(Request::Shutdown));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_request("", 2).is_err());
        assert!(parse_request("FROB 1", 2).is_err());
        assert!(parse_request("INSERT", 2).is_err());
        assert!(parse_request("INSERT x 0.1 0.2", 2).is_err());
        assert!(parse_request("INSERT 1 0.1", 2).is_err(), "wrong arity");
        assert!(parse_request("INSERT 1 0.1 nope", 2).is_err());
        assert!(parse_request("INSERT 1 -0.1 0.2", 2).is_err(), "negative");
        assert!(parse_request("INSERT 1 NaN 0.2", 2).is_err(), "non-finite");
        assert!(parse_request("DELETE", 2).is_err());
        assert!(parse_request("DELETE 1 2", 2).is_err());
        assert!(parse_request("QUERY now", 2).is_err());
    }
}
