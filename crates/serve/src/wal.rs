//! Write-ahead op log for the serving layer.
//!
//! Every operation a WAL-backed [`RmsService`](crate::RmsService)
//! acknowledges is first framed into an append-only log, so an unclean
//! death (kill −9, power cut with the fsync knob on) between
//! acknowledgement and apply loses nothing: the next
//! [`RmsService::start_with_wal`](crate::RmsService::start_with_wal)
//! replays the log on top of the base dataset before going live.
//!
//! The format is std-only binary framing in the style of
//! `rms-data::cache`:
//!
//! ```text
//! header   magic u32 = 0x4B57414C ("KWAL"), version u32
//! record   tag u8 | len u32 | payload (len bytes) | fnv1a-64 of tag+payload
//!
//! tag 1  INSERT      payload: id u64, d u32, d × f64
//! tag 2  DELETE      payload: id u64
//! tag 3  UPDATE      payload: id u64, d u32, d × f64
//! tag 4  CHECKPOINT  payload: an rms-data::cache dataset buffer
//! ```
//!
//! All integers and floats are little-endian. A `CHECKPOINT` record
//! resets replay state: everything before it is superseded by the
//! embedded dataset, ops after it apply on top. Graceful shutdown
//! compacts the log to a single checkpoint of the final live tuples
//! (atomically, via a temp-file rename), so the log never grows beyond
//! one unclean run's worth of ops.
//!
//! Torn tails are expected, not fatal: a crash mid-append leaves a
//! truncated or checksum-failing final record; [`Wal::open`] stops
//! replay at the last intact record and truncates the file there before
//! new appends, so the log never accumulates unreachable garbage.

use fdrms::Op;
use rms_geom::Point;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x4B57_414C;
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8;

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

/// Frame overhead around a payload: tag (1) + length (4) + hash (8).
const FRAME_OVERHEAD: usize = 13;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One FNV-1a 64-bit folding step over `bytes` — enough to tell a torn
/// or bit-rotted record from an intact one; this is corruption
/// detection, not authentication. Streaming (seed in, hash out) so a
/// record's `tag + payload` hashes without concatenating them.
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The checksum of one record: FNV-1a over the tag byte then the payload.
fn record_hash(tag: u8, payload: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[tag]), payload)
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The dataset of the most recent `CHECKPOINT` record, if any — the
    /// replay base that supersedes the caller's initial dataset.
    pub checkpoint: Option<Vec<Point>>,
    /// Operations logged after that checkpoint (or since the header when
    /// no checkpoint exists), in append order.
    pub ops: Vec<Op>,
    /// Bytes of torn/corrupt tail dropped during recovery (0 on a clean
    /// log).
    pub torn_bytes: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes of intact log, maintained across appends. A failed append
    /// truncates back here so a torn record never strands the records
    /// appended after it; if even the truncation fails the log is
    /// poisoned and refuses further appends (claiming durability over a
    /// wedged log would silently lose everything past the tear).
    end: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, first scanning what
    /// is already there. The scan tolerates a torn tail — the file is
    /// truncated to its last intact record so appends resume cleanly — but
    /// refuses a non-empty file that is not a KWAL log, so a mistaken
    /// `--wal` path never clobbers foreign data.
    pub fn open(path: &Path) -> io::Result<(Self, WalReplay)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (replay, valid_len) = scan(&raw)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let end = if raw.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC.to_le_bytes());
            header.extend_from_slice(&VERSION.to_le_bytes());
            file.write_all(&header)?;
            HEADER_LEN as u64
        } else {
            // Drop the torn tail (if any) so fresh appends are reachable.
            file.set_len(valid_len)?;
            valid_len
        };
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                end,
                poisoned: false,
            },
            replay,
        ))
    }

    /// Appends one operation record. The record reaches the OS (a plain
    /// `write`, no userspace buffering) before this returns, so it
    /// survives a process kill; call [`Wal::sync`] for power-failure
    /// durability.
    pub fn append(&mut self, op: &Op) -> io::Result<()> {
        self.append_frame(&Self::frame_op(op))
    }

    /// Encodes one operation into its on-disk record, for callers that
    /// must build the frame before the op is moved elsewhere (the
    /// serving layer frames before enqueueing, then appends after the
    /// enqueue succeeds).
    pub fn frame_op(op: &Op) -> Vec<u8> {
        let (tag, payload) = encode_op(op);
        frame(tag, &payload)
    }

    /// Appends a record previously produced by [`Wal::frame_op`]. On an
    /// IO failure the log is truncated back to its last intact record —
    /// a partially written frame must not strand everything appended
    /// after it behind a checksum failure. If that recovery truncation
    /// itself fails, the log is poisoned: every further append returns
    /// an error instead of pretending to be durable.
    pub fn append_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "write-ahead log is poisoned by an unrecoverable append failure",
            ));
        }
        match self.file.write_all(frame) {
            Ok(()) => {
                self.end += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                if self.file.set_len(self.end).is_err() || self.file.seek(SeekFrom::End(0)).is_err()
                {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Flushes appended records to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// An independent fsync handle over the same log file (a duplicated
    /// descriptor), so the applier's group-commit `fdatasync` never
    /// contends with — let alone deadlocks against — the append mutex
    /// the submitters serialize enqueue+append under. After a
    /// [`Wal::checkpoint`] the handle points at the unlinked pre-compaction
    /// file; syncing that is harmless, and compaction only happens at
    /// shutdown, after the last group commit.
    pub fn sync_handle(&self) -> io::Result<WalSyncHandle> {
        Ok(WalSyncHandle {
            file: self.file.try_clone()?,
        })
    }

    /// Compacts the log to a single checkpoint of `points`: the new
    /// content is written to a sibling temp file, synced, and atomically
    /// renamed over the log, so a crash mid-compaction leaves either the
    /// old log or the new one — never a mix.
    pub fn checkpoint(&mut self, points: &[Point]) -> io::Result<()> {
        let mut tmp_path = self.path.clone().into_os_string();
        tmp_path.push(".tmp");
        let tmp_path = PathBuf::from(tmp_path);
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&frame(TAG_CHECKPOINT, &rms_data::cache::encode(points)));
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(&buf)?;
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // The rename itself is only power-failure durable once the
        // parent directory entry is flushed (best-effort: a directory
        // that cannot be opened or synced leaves process-kill durability
        // intact).
        let parent = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
        // Re-open so subsequent appends land after the checkpoint record
        // of the *new* file, not in the unlinked old one.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.end = self.file.seek(SeekFrom::End(0))?;
        self.poisoned = false;
        Ok(())
    }
}

/// A duplicated descriptor of an open [`Wal`], used only for
/// `fdatasync` — see [`Wal::sync_handle`].
#[derive(Debug)]
pub struct WalSyncHandle {
    file: File,
}

impl WalSyncHandle {
    /// Flushes everything appended to the log so far to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Frames one record: `tag | len | payload | fnv1a(tag + payload)`.
fn frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    rec.push(tag);
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(payload);
    rec.extend_from_slice(&record_hash(tag, payload).to_le_bytes());
    rec
}

fn encode_op(op: &Op) -> (u8, Vec<u8>) {
    match op {
        Op::Insert(p) => (TAG_INSERT, encode_point(p)),
        Op::Update(p) => (TAG_UPDATE, encode_point(p)),
        Op::Delete(id) => (TAG_DELETE, id.to_le_bytes().to_vec()),
    }
}

fn encode_point(p: &Point) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + p.dim() * 8);
    buf.extend_from_slice(&p.id().to_le_bytes());
    buf.extend_from_slice(&(p.dim() as u32).to_le_bytes());
    for &c in p.coords() {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf
}

/// Reads a little-endian `u32` at `at`, `None` past the end — the
/// fallible primitive all decode paths are built on, so a torn or
/// corrupt record can never panic the replay.
fn le_u32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..)?
        .first_chunk::<4>()
        .map(|b| u32::from_le_bytes(*b))
}

/// Reads a little-endian `u64` at `at`, `None` past the end.
fn le_u64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..)?
        .first_chunk::<8>()
        .map(|b| u64::from_le_bytes(*b))
}

fn decode_point(payload: &[u8]) -> Option<Point> {
    let id = le_u64(payload, 0)?;
    let d = le_u32(payload, 8)? as usize;
    let mut rest = payload.get(12..)?;
    if rest.len() != d.checked_mul(8)? {
        return None;
    }
    let mut coords = Vec::with_capacity(d);
    while let Some((c, tail)) = rest.split_first_chunk::<8>() {
        coords.push(f64::from_le_bytes(*c));
        rest = tail;
    }
    Some(Point::new_unchecked(id, coords))
}

/// Scans a log buffer: returns the replay state and the byte length of
/// the intact prefix. A torn or corrupt record ends the scan (its bytes
/// count as torn); a non-KWAL prefix is an error.
fn scan(raw: &[u8]) -> io::Result<(WalReplay, u64)> {
    if raw.is_empty() {
        return Ok((WalReplay::default(), 0));
    }
    if raw.len() < HEADER_LEN || le_u32(raw, 0) != Some(MAGIC) || le_u32(raw, 4) != Some(VERSION) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a KRMS write-ahead log (refusing to overwrite)",
        ));
    }
    let mut replay = WalReplay::default();
    let mut pos = HEADER_LEN;
    while let Some(next) = parse_record(&raw[pos..], &mut replay) {
        pos += next;
    }
    replay.torn_bytes = (raw.len() - pos) as u64;
    Ok((replay, pos as u64))
}

/// Parses one record at the front of `buf` into `replay`; returns the
/// record's total length, or `None` when the record is torn, corrupt, or
/// `buf` is exhausted.
fn parse_record(buf: &[u8], replay: &mut WalReplay) -> Option<usize> {
    if buf.len() < FRAME_OVERHEAD {
        return None;
    }
    let tag = *buf.first()?;
    let len = le_u32(buf, 1)? as usize;
    let total = FRAME_OVERHEAD.checked_add(len)?;
    if buf.len() < total {
        return None;
    }
    let payload = buf.get(5..5 + len)?;
    let stored = le_u64(buf, 5 + len)?;
    if record_hash(tag, payload) != stored {
        return None;
    }
    match tag {
        TAG_INSERT => replay.ops.push(Op::Insert(decode_point(payload)?)),
        TAG_UPDATE => replay.ops.push(Op::Update(decode_point(payload)?)),
        TAG_DELETE => {
            if payload.len() != 8 {
                return None;
            }
            replay.ops.push(Op::Delete(le_u64(payload, 0)?));
        }
        TAG_CHECKPOINT => {
            let points = rms_data::cache::decode(payload).ok()?;
            // The checkpoint supersedes everything before it.
            replay.checkpoint = Some(points);
            replay.ops.clear();
        }
        _ => return None,
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("krms-wal-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Insert(Point::new_unchecked(7, vec![0.5, 0.25])),
            Op::Delete(3),
            Op::Update(Point::new_unchecked(9, vec![1.0, 0.0])),
        ]
    }

    #[test]
    fn roundtrip_append_replay() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert!(replay.checkpoint.is_none() && replay.ops.is_empty());
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.ops, sample_ops());
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_resume() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        drop(wal);
        // Tear the last record mid-frame, as a crash during append would.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.ops, sample_ops()[..2].to_vec());
        assert!(replay.torn_bytes > 0);
        // The torn bytes were truncated: a fresh append is reachable.
        wal.append(&Op::Delete(42)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.ops.len(), 3);
        assert_eq!(replay.ops[2], Op::Delete(42));
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        drop(wal);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip a payload byte of the second record (header is 8 bytes,
        // first record is 13 + 20 = 33 bytes; the second starts at 41).
        let idx = raw.len() - 15;
        raw[idx] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.ops.len() < 3);
        assert!(replay.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_supersedes() {
        let path = temp_path("checkpoint");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        for op in &sample_ops() {
            wal.append(op).unwrap();
        }
        let live = vec![
            Point::new_unchecked(1, vec![0.1, 0.2]),
            Point::new_unchecked(2, vec![0.3, 0.4]),
        ];
        wal.checkpoint(&live).unwrap();
        // Ops appended after the checkpoint replay on top of it.
        wal.append(&Op::Delete(1)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.checkpoint, Some(live));
        assert_eq!(replay.ops, vec![Op::Delete(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refuses_foreign_files() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a wal").unwrap();
        assert!(Wal::open(&path).is_err());
        // The foreign file is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a wal");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_ops_and_checkpoints() {
        let path = temp_path("empty");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.checkpoint(&[]).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.checkpoint, Some(Vec::new()));
        assert!(replay.ops.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
