//! The project's one audited lock-poison recovery point.
//!
//! Policy: every shared structure in the serving layer (WAL handle,
//! snapshot cell, watcher registry, merge cache) is left in a
//! consistent state at each lock-release boundary — writers stage work
//! outside the critical section and publish it with a handful of moves,
//! so a panic while a guard is held cannot expose a torn value. Under
//! that invariant, recovering from a poisoned lock by taking the inner
//! value is sound, and strictly better for an availability-oriented
//! server than propagating the panic to every other thread.
//!
//! Ad-hoc recovery (`.lock().unwrap()`, inline
//! `.unwrap_or_else(PoisonError::into_inner)`) is rejected by
//! `rms-analyze` rule `lock-poison-policy`; route all lock results
//! through [`recover_poisoned`] so the policy stays greppable and this
//! comment stays the single place that argues its soundness.

use std::sync::PoisonError;

/// Unwraps a `lock()`/`read()`/`write()` result, recovering the guard
/// from a poisoned lock. See the module docs for why recovery is sound
/// in this codebase.
pub fn recover_poisoned<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}
