//! The ingestion service: a dedicated applier thread over a bounded op
//! queue, publishing immutable snapshots after every coalesced batch,
//! with an optional write-ahead log for crash durability.

use crate::backend::{BackendView, DeltaReceiver};
use crate::snapshot::{ResultSnapshot, ServiceStats, SnapshotCell, SnapshotDelta};
use crate::sync::recover_poisoned;
use crate::wal::{Wal, WalSyncHandle};
use fdrms::{FdRms, FdRmsBuilder, FdRmsError, Op};
use rms_eval::RegretEstimator;
use rms_geom::Point;
use rms_metrics::{Counter, Gauge, Histogram, Registry};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One registered subscriber of the publish stream. The sharded router
/// only needs to be *woken* per publish (it re-merges and diffs merged
/// states itself), so it registers as `Signal` and the applier skips
/// computing — let alone cloning — a delta for it.
#[derive(Debug)]
pub(crate) enum Watcher {
    /// Receives the full [`SnapshotDelta`] computed at publish time.
    Full(Sender<SnapshotDelta>),
    /// Receives a unit wake-up per publish.
    Signal(Sender<()>),
}

/// The watcher registry shared by handles (which register) and the
/// applier (which broadcasts per publish and prunes dead watchers).
/// Registration reads the snapshot cell *under this lock*, and the
/// applier swaps the cell and broadcasts under it too, so a watcher's
/// base snapshot and its first delta always line up gap-free.
type WatcherRegistry = Arc<Mutex<Vec<Watcher>>>;

/// Instrument handles for one service instance, registered once at
/// start against the backend's [`Registry`] (with a `shard="N"` label
/// inside a shard group) and cloned wherever the hot paths run: the
/// applier thread owns the batch/publish instruments, client handles
/// carry the WAL append counter.
#[derive(Debug, Clone)]
pub(crate) struct ServiceMetrics {
    /// `rms_applier_queue_depth` — refreshed at every publish.
    queue_depth: Gauge,
    /// `rms_applier_batch_ops` — coalesced ops per `apply_batch` call.
    batch_ops: Histogram,
    /// `rms_applier_apply_seconds` — wall clock per coalesced batch.
    apply_seconds: Histogram,
    /// `rms_applier_publish_seconds` — snapshot build + delta fan-out.
    publish_seconds: Histogram,
    /// `rms_applier_snapshot_publishes_total`.
    publishes: Counter,
    /// `rms_applier_ops_applied_total`.
    ops_applied: Counter,
    /// `rms_applier_ops_rejected_total`.
    ops_rejected: Counter,
    /// `rms_wal_appends_total` — op frames appended by submitters.
    wal_appends: Counter,
    /// `rms_wal_fsync_seconds` — its `_count` is the fsync count.
    wal_fsync_seconds: Histogram,
    /// `rms_wal_recovered_ops_total` — ops accepted during replay.
    wal_recovered_ops: Counter,
    /// `rms_wal_truncated_tail_bytes_total` — torn bytes dropped at open.
    wal_truncated_bytes: Counter,
}

impl ServiceMetrics {
    /// Registers the applier/WAL families, labeled `shard="N"` inside a
    /// shard group (every shard shares one registry, so the families
    /// gain one series per shard).
    pub(crate) fn register(registry: &Registry, shard: Option<usize>) -> Self {
        let shard_value = shard.map(|i| i.to_string());
        let labels: Vec<(&str, &str)> = shard_value.iter().map(|v| ("shard", v.as_str())).collect();
        let l = labels.as_slice();
        ServiceMetrics {
            queue_depth: registry.register_gauge(
                "rms_applier_queue_depth",
                "Operations queued behind the applier (sampled at publish).",
                l,
            ),
            batch_ops: registry.register_histogram_values(
                "rms_applier_batch_ops",
                "Operations coalesced into one apply_batch call.",
                l,
            ),
            apply_seconds: registry.register_histogram(
                "rms_applier_apply_seconds",
                "Wall-clock latency of one coalesced batch apply.",
                l,
            ),
            publish_seconds: registry.register_histogram(
                "rms_applier_publish_seconds",
                "Wall-clock latency of one snapshot publish (build plus delta fan-out).",
                l,
            ),
            publishes: registry.register_counter(
                "rms_applier_snapshot_publishes_total",
                "Snapshots published by the applier.",
                l,
            ),
            ops_applied: registry.register_counter(
                "rms_applier_ops_applied_total",
                "Operations the engine accepted.",
                l,
            ),
            ops_rejected: registry.register_counter(
                "rms_applier_ops_rejected_total",
                "Operations validation rejected.",
                l,
            ),
            wal_appends: registry.register_counter(
                "rms_wal_appends_total",
                "Op frames appended to the write-ahead log.",
                l,
            ),
            wal_fsync_seconds: registry.register_histogram(
                "rms_wal_fsync_seconds",
                "Write-ahead log group-commit fsync latency.",
                l,
            ),
            wal_recovered_ops: registry.register_counter(
                "rms_wal_recovered_ops_total",
                "Logged operations accepted during crash replay.",
                l,
            ),
            wal_truncated_bytes: registry.register_counter(
                "rms_wal_truncated_tail_bytes_total",
                "Torn-tail bytes truncated from the write-ahead log at open.",
                l,
            ),
        }
    }
}

/// Tuning knobs for [`RmsService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Capacity of the bounded ingestion queue. A full queue blocks
    /// [`RmsHandle::submit`] (backpressure) until the applier drains.
    pub queue_capacity: usize,
    /// Upper bound on the ops coalesced into one `apply_batch` call. The
    /// actual batch size adapts to load: whatever is queued when the
    /// applier comes around, up to this cap.
    pub max_batch: usize,
    /// Monte-Carlo test directions for the published max-regret-ratio
    /// estimate; `0` (the default) disables estimation — it costs
    /// `O(directions × n)` per refresh.
    pub mrr_directions: usize,
    /// Refresh the regret estimate every this many epochs (when
    /// `mrr_directions > 0`).
    pub mrr_every: u64,
    /// Seed for the regret estimator's test directions.
    pub mrr_seed: u64,
    /// When serving with a write-ahead log
    /// ([`RmsService::start_with_wal`]): `fsync` the log once per
    /// coalesced batch (group commit). Off, the log still survives a
    /// process kill (records reach the OS before acknowledgement) but
    /// not a power failure; on, every *acknowledged* op is on stable
    /// storage no later than the batch commit after its acknowledgement
    /// (the record lands between the enqueue and the ack, so the commit
    /// covering its own batch can race it), at the cost of one
    /// `fdatasync` per batch.
    pub wal_fsync: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 512,
            mrr_directions: 0,
            mrr_every: 16,
            mrr_seed: 0xE7A1,
            wal_fsync: false,
        }
    }
}

/// Why starting a WAL-backed service failed.
#[derive(Debug)]
pub enum ServeError {
    /// Engine construction or replay-base validation failed.
    Engine(FdRmsError),
    /// The write-ahead log could not be opened, scanned, or created.
    Wal(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Wal(e) => write!(f, "write-ahead log: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FdRmsError> for ServeError {
    fn from(e: FdRmsError) -> Self {
        ServeError::Engine(e)
    }
}

/// Why a submission failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The service has shut down; the operation (returned) was not
    /// enqueued.
    Disconnected(Op),
    /// [`RmsHandle::try_submit`] only: the queue is at capacity; the
    /// operation (returned) was not enqueued.
    Full(Op),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Disconnected(_) => write!(f, "service has shut down"),
            SubmitError::Full(_) => write!(f, "ingestion queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Msg {
    Op(Op),
    Shutdown,
    /// Durability-testing hook: stop the applier *immediately* — no
    /// drain, no final snapshot, no WAL compaction — as an unclean kill
    /// would. See [`RmsService::crash`].
    Crash,
}

/// High bit of the ingestion state word: set when shutdown begins. The
/// low bits count acknowledged-but-undrained submissions, so checking
/// "still accepting" and registering a submission is one atomic RMW —
/// a submission either observes the closed bit (and is rejected before
/// acknowledgement) or its count is visible to the shutdown drain, which
/// runs until the count reaches zero. No interleaving can acknowledge an
/// op and then drop it.
const CLOSED_BIT: usize = 1 << (usize::BITS - 1);
const COUNT_MASK: usize = CLOSED_BIT - 1;

// The state word carries the accept/drain handshake above, so its RMWs
// and the loads that pair with them are SeqCst; the two monitoring-only
// reads (queue-depth gauges) are Relaxed on purpose.
// rms-analyze: atomic-policy(state: SeqCst|Relaxed)

/// A cheap, cloneable client of a running [`RmsService`]: submit
/// operations (blocking or not) and read published snapshots. Handles
/// outlive the service gracefully — submissions after shutdown return
/// [`SubmitError::Disconnected`], snapshot reads keep returning the last
/// published state.
#[derive(Debug, Clone)]
pub struct RmsHandle {
    tx: SyncSender<Msg>,
    state: Arc<AtomicUsize>,
    cell: Arc<SnapshotCell>,
    wal: Option<Arc<Mutex<Wal>>>,
    watchers: WatcherRegistry,
    metrics: ServiceMetrics,
}

impl RmsHandle {
    /// Registers one pending submission unless shutdown has begun.
    fn register(&self) -> bool {
        let prev = self.state.fetch_add(1, Ordering::SeqCst);
        if prev & CLOSED_BIT != 0 {
            self.state.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Enqueues one operation, blocking while the queue is full
    /// (backpressure). `Ok` means the operation *will* be applied — a
    /// graceful shutdown drains every acknowledged op — and on a
    /// WAL-backed service that the op is on the log before this returns.
    ///
    /// **WAL ordering**: the enqueue and the log append happen atomically
    /// under the log mutex (a try-send loop, so the mutex is never held
    /// across a blocking wait), which makes log order equal queue order —
    /// the order the applier applies ops in — even when different threads
    /// race conflicting ops on the same id. Recovery therefore replays
    /// exactly the serialization the live service applied. The applier's
    /// group-commit fsync runs on a duplicated descriptor and never takes
    /// this mutex, so submitters cannot deadlock against it; the append
    /// lands after the enqueue, so an op's own batch commit can race its
    /// record — an acknowledged op is fsync-durable no later than the
    /// batch commit *after* its acknowledgement.
    ///
    /// The application itself is asynchronous; a later
    /// [`RmsHandle::snapshot`] whose stats show it absorbed reflects it.
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        if !self.register() {
            return Err(SubmitError::Disconnected(op));
        }
        let Some(wal) = &self.wal else {
            return match self.tx.send(Msg::Op(op)) {
                Ok(()) => Ok(()),
                Err(e) => {
                    self.state.fetch_sub(1, Ordering::SeqCst);
                    let Msg::Op(op) = e.0 else {
                        // rms-analyze: allow(unwrap-nontest, "send() above only ever sends Msg::Op; the error returns that value")
                        unreachable!("handles only send ops")
                    };
                    Err(SubmitError::Disconnected(op))
                }
            };
        };
        // The op is framed once, outside the lock; the loop backs off
        // outside the lock too, so the critical section is only the
        // non-blocking try-send plus the append.
        let frame = Wal::frame_op(&op);
        let mut msg = Msg::Op(op);
        loop {
            let mut guard = recover_poisoned(wal.lock());
            match self.tx.try_send(msg) {
                Ok(()) => {
                    append_logged(&mut guard, &frame);
                    self.metrics.wal_appends.inc();
                    return Ok(());
                }
                Err(TrySendError::Disconnected(m)) => {
                    drop(guard);
                    self.state.fetch_sub(1, Ordering::SeqCst);
                    let Msg::Op(op) = m else {
                        // rms-analyze: allow(unwrap-nontest, "try_send() above only ever sends Msg::Op; the error returns that value")
                        unreachable!("handles only send ops")
                    };
                    return Err(SubmitError::Disconnected(op));
                }
                Err(TrySendError::Full(m)) => {
                    drop(guard);
                    msg = m;
                    // Backpressure: the queue drains at applier-batch
                    // cadence (milliseconds), so a sub-millisecond poll
                    // wastes neither latency nor CPU.
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// Non-blocking [`RmsHandle::submit`]: fails fast with
    /// [`SubmitError::Full`] instead of waiting out backpressure.
    ///
    /// Shares the blocking path's enqueue+append critical section, so
    /// log order equals apply order across both entry points; a `Full`
    /// bounce is never logged (recovery must not replay ops the caller
    /// knows were rejected).
    pub fn try_submit(&self, op: Op) -> Result<(), SubmitError> {
        if !self.register() {
            return Err(SubmitError::Disconnected(op));
        }
        let frame = self.wal.as_ref().map(|_| Wal::frame_op(&op));
        let mut guard = self.wal.as_ref().map(|wal| recover_poisoned(wal.lock()));
        match self.tx.try_send(Msg::Op(op)) {
            Ok(()) => {
                if let (Some(guard), Some(frame)) = (guard.as_mut(), frame) {
                    append_logged(guard, &frame);
                    self.metrics.wal_appends.inc();
                }
                Ok(())
            }
            Err(e) => {
                drop(guard);
                self.state.fetch_sub(1, Ordering::SeqCst);
                match e {
                    TrySendError::Full(Msg::Op(op)) => Err(SubmitError::Full(op)),
                    TrySendError::Disconnected(Msg::Op(op)) => Err(SubmitError::Disconnected(op)),
                    // rms-analyze: allow(unwrap-nontest, "try_send() above only ever sends Msg::Op; the error returns that value")
                    _ => unreachable!("handles only send ops"),
                }
            }
        }
    }

    /// Subscribes to the service's delta stream: the returned receiver
    /// carries the current snapshot as its base plus every subsequent
    /// [`SnapshotDelta`], computed and pushed by the applier at publish
    /// time. The stream closes on shutdown; registration after shutdown
    /// yields an already-closed stream.
    pub fn watch(&self) -> DeltaReceiver {
        let (tx, rx) = channel();
        let base = self.register_watcher(Watcher::Full(tx));
        DeltaReceiver::new(rx, BackendView::Single(base))
    }

    /// Registers a signal-only watcher (the sharded router funnels every
    /// shard's publish wake-ups into one channel this way; it diffs
    /// merged snapshots itself, so it never needs the per-shard deltas)
    /// and returns the base snapshot current at registration.
    pub(crate) fn watch_signal(&self, tx: Sender<()>) -> Arc<ResultSnapshot> {
        self.register_watcher(Watcher::Signal(tx))
    }

    /// Registers a watcher under the registry lock, so the base snapshot
    /// and the first notification line up gap-free.
    fn register_watcher(&self, watcher: Watcher) -> Arc<ResultSnapshot> {
        let mut watchers = recover_poisoned(self.watchers.lock());
        let base = self.cell.load();
        // After shutdown the applier has already dropped every watcher;
        // registering would leak a never-closing stream. Dropping the
        // sender instead closes the subscriber's receiver immediately.
        if self.state.load(Ordering::SeqCst) & CLOSED_BIT == 0 {
            watchers.push(watcher);
        }
        base
    }

    /// The most recently published snapshot. Never blocks on the applier:
    /// the call clones an `Arc` out of the publication cell, whose lock
    /// is held only across pointer swaps.
    pub fn snapshot(&self) -> Arc<ResultSnapshot> {
        self.cell.load()
    }

    /// Operations currently queued (including submitters blocked on
    /// backpressure). Approximate under concurrency.
    pub fn queue_depth(&self) -> usize {
        self.state.load(Ordering::Relaxed) & COUNT_MASK
    }
}

/// A running FD-RMS instance behind an ingestion queue.
///
/// The engine lives on a dedicated applier thread fed by a bounded MPSC
/// queue. The applier drains whatever is queued (up to
/// [`ServeConfig::max_batch`]) into one [`FdRms::apply_batch`] call — so
/// batch sizes adapt to load, amortising maintenance exactly where the
/// batch engine makes it cheap — and after every batch publishes an
/// immutable [`ResultSnapshot`] behind a swapped `Arc`. Any number of
/// readers call [`RmsService::snapshot`] concurrently without ever
/// blocking ingestion (and vice versa).
///
/// A batch containing an invalid operation is rejected atomically by the
/// engine; the applier then replays that batch one op at a time, so one
/// bad op costs only itself — its batch-mates still apply ([`ServiceStats`]
/// counts `ops_rejected`, and the whole salvage counts as **one** logical
/// batch, tallied in `replayed_batches`).
///
/// Started via [`RmsService::start_with_wal`], every acknowledged op is
/// also framed into a [write-ahead log](crate::wal) before the
/// acknowledgement, replayed by the next start after an unclean death.
#[derive(Debug)]
pub struct RmsService {
    handle: RmsHandle,
    applier: Option<JoinHandle<FdRms>>,
    registry: Arc<Registry>,
    dim: usize,
    k: usize,
    r: usize,
}

impl RmsService {
    /// Builds the engine from `builder` + `initial` (synchronously, so
    /// configuration errors surface here), publishes the epoch-0
    /// snapshot, and starts the applier thread. Instruments register
    /// into a fresh [`Registry::from_env`] (so `KRMS_METRICS_DISABLED`
    /// is honored); read it back via [`RmsService::registry`].
    pub fn start(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
    ) -> Result<Self, FdRmsError> {
        let registry = Arc::new(Registry::from_env());
        Self::start_labeled(builder, initial, cfg, &registry, None)
    }

    /// [`RmsService::start`] registering into a caller-supplied registry,
    /// optionally labeling every family `shard="N"` — how a shard group
    /// aggregates all its members into one exposition.
    pub(crate) fn start_labeled(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        registry: &Arc<Registry>,
        shard: Option<usize>,
    ) -> Result<Self, FdRmsError> {
        let fd = builder.build(initial)?;
        let metrics = ServiceMetrics::register(registry, shard);
        Ok(Self::spawn(
            fd,
            cfg,
            None,
            ServiceStats::default(),
            Arc::clone(registry),
            metrics,
        ))
    }

    /// [`RmsService::start`] with crash durability: opens (or creates)
    /// the write-ahead log at `wal_path`, replays whatever a previous
    /// unclean death left there — the log's last checkpoint, if any,
    /// supersedes `initial` as the replay base; ops after it are applied
    /// one batch at a time with the per-op salvage fallback, and the
    /// accepted count is published as `wal_recovered_ops` — and only then
    /// goes live. From then on every acknowledged op is appended to the
    /// log before its acknowledgement, and a graceful [`RmsService::
    /// shutdown`] compacts the log to a checkpoint of the final state.
    ///
    /// Replay is idempotent over checkpoints: a logged op whose effect is
    /// already in the checkpoint (the tail race of a graceful shutdown)
    /// re-applies as a rejection or attribute no-op, never as corruption.
    ///
    /// **Ordering**: enqueue and append are serialized under the log
    /// mutex (see [`RmsHandle::submit`]), so log order equals apply order
    /// even when different threads race conflicting ops on the same id —
    /// recovery replays exactly the serialization the live service
    /// applied, pinned by `tests/wal.rs::
    /// contended_id_recovery_matches_live_outcome`.
    pub fn start_with_wal(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        wal_path: &Path,
    ) -> Result<Self, ServeError> {
        let registry = Arc::new(Registry::from_env());
        Self::start_with_wal_labeled(builder, initial, cfg, wal_path, &registry, None)
    }

    /// [`RmsService::start_with_wal`] registering into a caller-supplied
    /// registry, optionally labeled `shard="N"` (see
    /// [`RmsService::start_labeled`]).
    pub(crate) fn start_with_wal_labeled(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
        wal_path: &Path,
        registry: &Arc<Registry>,
        shard: Option<usize>,
    ) -> Result<Self, ServeError> {
        // A `<path>.meta` sidecar means these logs belong to a sharded
        // group (`ShardedRmsService` logs to `<path>.<i>`); opening the
        // bare path would create a fresh empty log and silently ignore
        // every acknowledged op in the shard logs.
        let meta = {
            let mut p = wal_path.as_os_str().to_os_string();
            p.push(".meta");
            std::path::PathBuf::from(p)
        };
        if meta.exists() {
            return Err(ServeError::Wal(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{} belongs to a sharded group (see {}); start a ShardedRmsService \
                     with the matching shard count, or move the old logs aside",
                    wal_path.display(),
                    meta.display()
                ),
            )));
        }
        let (wal, replay) = Wal::open(wal_path).map_err(ServeError::Wal)?;
        let base = replay.checkpoint.unwrap_or(initial);
        let mut fd = builder.build(base)?;
        let mut stats = ServiceStats::default();
        for chunk in replay.ops.chunks(cfg.max_batch.max(1)) {
            match fd.apply_batch_slice(chunk) {
                Ok(report) => {
                    stats.rollup.absorb(&report);
                    stats.wal_recovered_ops += chunk.len() as u64;
                }
                Err(_) => {
                    // Same salvage as live ingestion: one logged-but-bad
                    // op (or one made redundant by a checkpoint) costs
                    // only itself.
                    for op in chunk {
                        if let Ok(report) = fd.apply_batch_slice(std::slice::from_ref(op)) {
                            stats.rollup.absorb(&report);
                            stats.wal_recovered_ops += 1;
                        }
                    }
                }
            }
        }
        let metrics = ServiceMetrics::register(registry, shard);
        metrics.wal_recovered_ops.add(stats.wal_recovered_ops);
        metrics.wal_truncated_bytes.add(replay.torn_bytes);
        Ok(Self::spawn(
            fd,
            cfg,
            Some(Arc::new(Mutex::new(wal))),
            stats,
            Arc::clone(registry),
            metrics,
        ))
    }

    fn spawn(
        fd: FdRms,
        cfg: ServeConfig,
        wal: Option<Arc<Mutex<Wal>>>,
        stats: ServiceStats,
        registry: Arc<Registry>,
        metrics: ServiceMetrics,
    ) -> Self {
        let dim = fd.dim();
        let k = fd.k();
        let r = fd.r();
        let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
        let state = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(make_snapshot(&fd, 0, stats, None)));
        let watchers: WatcherRegistry = Arc::new(Mutex::new(Vec::new()));
        // Group commits run on a duplicated descriptor so the applier
        // never contends with the submitters' enqueue+append mutex; if
        // duplication fails, syncs fall back to taking that mutex (safe —
        // submitters never hold it across a blocking wait — just slower).
        let wal_sync = wal
            .as_ref()
            .and_then(|w| recover_poisoned(w.lock()).sync_handle().ok());
        let applier = {
            let cell = Arc::clone(&cell);
            let state = Arc::clone(&state);
            let wal = wal.clone();
            let watchers = Arc::clone(&watchers);
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("rms-applier".into())
                .spawn(move || {
                    applier_loop(
                        fd,
                        &rx,
                        &cell,
                        &state,
                        &cfg,
                        wal.as_ref(),
                        wal_sync.as_ref(),
                        &watchers,
                        stats,
                        &metrics,
                    )
                })
                // rms-analyze: allow(unwrap-nontest, "thread-spawn failure at service construction is unrecoverable; fail fast")
                .expect("spawn applier thread")
        };
        Self {
            handle: RmsHandle {
                tx,
                state,
                cell,
                wal,
                watchers,
                metrics,
            },
            applier: Some(applier),
            registry,
            dim,
            k,
            r,
        }
    }

    /// The metrics registry every instrument of this service reports
    /// into ([`Registry::from_env`]-fresh unless the service was started
    /// inside a shard group, which shares one registry across shards).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A new cloneable client handle.
    pub fn handle(&self) -> RmsHandle {
        self.handle.clone()
    }

    /// See [`RmsHandle::snapshot`].
    pub fn snapshot(&self) -> Arc<ResultSnapshot> {
        self.handle.snapshot()
    }

    /// See [`RmsHandle::watch`].
    pub fn watch(&self) -> DeltaReceiver {
        self.handle.watch()
    }

    /// See [`RmsHandle::submit`].
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        self.handle.submit(op)
    }

    /// The configured tuple dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configured rank depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured result size budget `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Graceful shutdown: the applier drains and applies every
    /// *acknowledged* operation (every `submit` that returned `Ok`, even
    /// from senders still blocked on a full queue), publishes a final
    /// snapshot, compacts the write-ahead log (when configured) to a
    /// checkpoint of the final state, and hands the engine back (e.g.
    /// for invariant checks or persistence). Submissions racing the
    /// start of shutdown either fail with [`SubmitError::Disconnected`]
    /// or are applied — never acknowledged and dropped.
    ///
    /// Panics if the applier thread panicked (an engine invariant
    /// failure), propagating that error.
    pub fn shutdown(mut self) -> FdRms {
        self.shutdown_inner()
            // rms-analyze: allow(unwrap-nontest, "shutdown consumes self, so the applier handle is still present")
            .expect("applier taken only by shutdown")
            // rms-analyze: allow(unwrap-nontest, "documented: shutdown() propagates an applier panic (engine invariant failure)")
            .expect("applier thread panicked")
    }

    /// Durability-testing hook: stop the service as an unclean kill
    /// would. The applier exits without draining, without publishing a
    /// final snapshot, and — crucially — **without compacting the
    /// write-ahead log**; the in-memory engine state is discarded. A
    /// subsequent [`RmsService::start_with_wal`] on the same log must
    /// recover every acknowledged op. (A real kill −9 needs no
    /// cooperation; this exists so tests can exercise the recovery path
    /// in-process.)
    pub fn crash(mut self) {
        if let Some(applier) = self.applier.take() {
            self.handle.state.fetch_or(CLOSED_BIT, Ordering::SeqCst);
            let _ = self.handle.tx.send(Msg::Crash);
            let _ = applier.join();
        }
    }

    fn shutdown_inner(&mut self) -> Option<std::thread::Result<FdRms>> {
        let applier = self.applier.take()?;
        // Close the ingestion state word first: any submission that was
        // not already counted is rejected from here on, so the drain's
        // count target can only shrink once the marker is seen.
        self.handle.state.fetch_or(CLOSED_BIT, Ordering::SeqCst);
        let _ = self.handle.tx.send(Msg::Shutdown);
        Some(applier.join())
    }
}

impl Drop for RmsService {
    fn drop(&mut self) {
        // Unlike `shutdown`, a panicked applier is swallowed here: drops
        // run during unwinding, and a second panic would abort the
        // process and mask the original error.
        let _ = self.shutdown_inner();
    }
}

fn make_snapshot(fd: &FdRms, epoch: u64, stats: ServiceStats, mrr: Option<f64>) -> ResultSnapshot {
    ResultSnapshot {
        epoch,
        result: fd.result(),
        len: fd.len(),
        m: fd.m(),
        mrr,
        stats,
    }
}

/// Applies one coalesced batch, with the atomic-rejection fallback. The
/// ops stay borrowed — `apply_batch_slice` clones nothing on the success
/// path and the fallback can replay from the original. Whether the batch
/// applies wholesale or is salvaged per-op, it counts as **one** logical
/// batch in the stats (salvaged batches additionally bump
/// `replayed_batches`), so `batches` always equals the number of
/// coalesced batches the applier issued and `avg_apply_ms` stays the
/// mean wall-clock per coalesced batch.
fn apply_batch(fd: &mut FdRms, batch: &[Op], stats: &mut ServiceStats, m: &ServiceMetrics) {
    let n = batch.len();
    if n == 0 {
        return;
    }
    stats.last_batch_ops = n;
    stats.max_coalesced = stats.max_coalesced.max(n);
    m.batch_ops.record_value(n as u64);
    let t = Instant::now();
    match fd.apply_batch_slice(batch) {
        Ok(report) => {
            stats.rollup.absorb(&report);
            stats.ops_applied += n as u64;
            m.ops_applied.add(n as u64);
        }
        Err(_) if n == 1 => {
            stats.ops_rejected += 1;
            m.ops_rejected.inc();
        }
        Err(_) => {
            // The engine rejects a batch atomically on the first invalid
            // op; replay individually so one bad op costs only itself.
            for op in batch {
                match fd.apply_batch_slice(std::slice::from_ref(op)) {
                    Ok(report) => {
                        stats.rollup.absorb(&report);
                        stats.ops_applied += 1;
                        m.ops_applied.inc();
                    }
                    Err(_) => {
                        stats.ops_rejected += 1;
                        m.ops_rejected.inc();
                    }
                }
            }
            stats.replayed_batches += 1;
        }
    }
    record_apply(stats, &m.apply_seconds, t);
}

fn record_apply(stats: &mut ServiceStats, apply_seconds: &Histogram, since: Instant) {
    let elapsed = since.elapsed();
    apply_seconds.record(elapsed);
    let ms = elapsed.as_secs_f64() * 1e3;
    stats.last_apply_ms = ms;
    stats.total_apply_ms += ms;
    stats.batches += 1;
}

/// Appends one pre-framed record, reporting (not propagating) IO
/// failures: the op is already enqueued, so the submission proceeds; it
/// merely loses durability.
fn append_logged(wal: &mut Wal, frame: &[u8]) {
    if let Err(e) = wal.append_frame(frame) {
        eprintln!("rms-serve: WAL append failed ({e}); op applied without durability");
    }
}

/// Group commit: one `fdatasync` per coalesced batch, preferring the
/// duplicated descriptor (no mutex) and falling back to locking the log.
fn group_commit(
    wal: Option<&Arc<Mutex<Wal>>>,
    sync: Option<&WalSyncHandle>,
    fsync_seconds: &Histogram,
) {
    let t = Instant::now();
    let result = match (sync, wal) {
        (Some(sync), _) => sync.sync(),
        (None, Some(wal)) => recover_poisoned(wal.lock()).sync(),
        (None, None) => return,
    };
    fsync_seconds.record(t.elapsed());
    if let Err(e) = result {
        eprintln!("rms-serve: WAL fsync failed: {e}");
    }
}

#[allow(clippy::too_many_arguments)]
fn applier_loop(
    fd: FdRms,
    rx: &Receiver<Msg>,
    cell: &SnapshotCell,
    state: &AtomicUsize,
    cfg: &ServeConfig,
    wal: Option<&Arc<Mutex<Wal>>>,
    wal_sync: Option<&WalSyncHandle>,
    watchers: &WatcherRegistry,
    stats: ServiceStats,
    metrics: &ServiceMetrics,
) -> FdRms {
    let fd = applier_inner(
        fd, rx, cell, state, cfg, wal, wal_sync, watchers, stats, metrics,
    );
    // Dropping the senders closes every subscriber's delta stream; the
    // closed ingestion bit (set before any exit path reaches here, or
    // implied by every handle being gone) keeps late registrations
    // from registering into the cleared registry.
    recover_poisoned(watchers.lock()).clear();
    fd
}

#[allow(clippy::too_many_arguments)]
fn applier_inner(
    mut fd: FdRms,
    rx: &Receiver<Msg>,
    cell: &SnapshotCell,
    state: &AtomicUsize,
    cfg: &ServeConfig,
    wal: Option<&Arc<Mutex<Wal>>>,
    wal_sync: Option<&WalSyncHandle>,
    watchers: &WatcherRegistry,
    mut stats: ServiceStats,
    metrics: &ServiceMetrics,
) -> FdRms {
    let max_batch = cfg.max_batch.max(1);
    let estimator = (cfg.mrr_directions > 0)
        .then(|| RegretEstimator::new(fd.dim(), cfg.mrr_directions.max(fd.dim()), cfg.mrr_seed));
    let mrr_every = cfg.mrr_every.max(1);
    let mut epoch = 0u64;
    let mut last_mrr = None;
    // The previously published snapshot, kept for publish-time delta
    // computation (watchers receive the diff, not the whole solution).
    let mut prev = cell.load();
    loop {
        // Block for the first message, then coalesce whatever else is
        // already queued — the adaptive batch: size 1 under light load
        // (the engine routes it to the classic per-op path), up to
        // `max_batch` under sustained pressure.
        let mut shutting_down = false;
        let mut ops: Vec<Op> = Vec::new();
        match rx.recv() {
            Ok(Msg::Op(op)) => {
                state.fetch_sub(1, Ordering::SeqCst);
                ops.push(op);
            }
            Ok(Msg::Shutdown) => shutting_down = true,
            // The simulated unclean kill: no drain, no final snapshot,
            // no WAL compaction.
            Ok(Msg::Crash) => return fd,
            // Every sender (service + all handles) dropped.
            Err(_) => break,
        }
        while ops.len() < max_batch && !shutting_down {
            match rx.try_recv() {
                Ok(Msg::Op(op)) => {
                    state.fetch_sub(1, Ordering::SeqCst);
                    ops.push(op);
                }
                Ok(Msg::Shutdown) => shutting_down = true,
                Ok(Msg::Crash) => return fd,
                Err(_) => break,
            }
        }
        if shutting_down {
            // Drain until the submission count reaches zero, not just
            // until the channel reads empty: every acknowledged op was
            // counted *atomically with* observing the state word open
            // (see `CLOSED_BIT`), and the closed bit was set before the
            // shutdown marker was sent — so any count this loop still
            // sees is an op that will arrive (possibly from a sender
            // blocked on a full queue), and no new counts can appear.
            loop {
                match rx.try_recv() {
                    Ok(Msg::Op(op)) => {
                        state.fetch_sub(1, Ordering::SeqCst);
                        ops.push(op);
                    }
                    Ok(Msg::Shutdown) => {}
                    Ok(Msg::Crash) => return fd,
                    Err(_) => {
                        if state.load(Ordering::SeqCst) & COUNT_MASK == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }
        for chunk in ops.chunks(max_batch) {
            apply_batch(&mut fd, chunk, &mut stats, metrics);
            // Group commit: the submitters' appends for this batch (and
            // possibly later ones — strictly more durability) reach
            // stable storage with one fdatasync per coalesced batch.
            if cfg.wal_fsync {
                group_commit(wal, wal_sync, &metrics.wal_fsync_seconds);
            }
        }
        if !ops.is_empty() || shutting_down {
            epoch += 1;
            if let Some(est) = &estimator {
                if epoch % mrr_every == 0 || shutting_down {
                    let live = fd.live_points();
                    last_mrr = Some(est.mrr(&live, &fd.result(), fd.k()));
                }
            }
            stats.queue_depth = state.load(Ordering::Relaxed) & COUNT_MASK;
            metrics.queue_depth.set(stats.queue_depth as i64);
            let publish_start = Instant::now();
            let snap = Arc::new(make_snapshot(&fd, epoch, stats, last_mrr));
            // The cell swap and the delta broadcast happen under the
            // registry lock, atomically with any concurrent watcher
            // registration — so every subscriber's base snapshot meets
            // its first delta gap-free.
            let mut registry = recover_poisoned(watchers.lock());
            cell.store(Arc::clone(&snap));
            if !registry.is_empty() {
                // The O(r) diff + clone runs only when someone actually
                // consumes deltas; signal-only watchers (the sharded
                // router) cost one unit send.
                let delta = registry
                    .iter()
                    .any(|w| matches!(w, Watcher::Full(_)))
                    .then(|| snap.delta_from(&prev));
                registry.retain(|watcher| match (watcher, &delta) {
                    // Watcher channels are unbounded, so these sends
                    // under the registry lock never block — and since
                    // PR 9 rms-analyze's channel classification knows
                    // it, so no pragma is needed here.
                    (Watcher::Full(tx), Some(delta)) => tx.send(delta.clone()).is_ok(),
                    // Unreachable (the delta is computed whenever a Full
                    // watcher exists); dropping the watcher beats
                    // panicking the applier.
                    (Watcher::Full(_), None) => false,
                    (Watcher::Signal(tx), _) => tx.send(()).is_ok(),
                });
            }
            drop(registry);
            metrics.publish_seconds.record(publish_start.elapsed());
            metrics.publishes.inc();
            prev = snap;
        }
        if shutting_down {
            break;
        }
    }
    // Graceful exit: compact the log to a checkpoint of the final state,
    // bounding its size and making the next start replay-free. (IO
    // failure leaves the op log intact — recovery still works, the log
    // is merely uncompacted.)
    if let Some(wal) = wal {
        let mut wal = recover_poisoned(wal.lock());
        if let Err(e) = wal.checkpoint(&fd.live_points()) {
            eprintln!("rms-serve: WAL compaction failed: {e}");
        }
    }
    fd
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An atomically-rejected N-op batch used to bump `batches` N+1 times
    /// (the failed attempt plus one per replayed op), deflating
    /// `avg_apply_ms` and disagreeing with the coalescing counters. The
    /// whole salvage is one logical batch, tallied in `replayed_batches`.
    #[test]
    fn rejected_batch_counts_as_one_logical_batch() {
        let initial: Vec<Point> = (0..20)
            .map(|i| Point::new_unchecked(i, vec![(i as f64) / 20.0, 1.0 - (i as f64) / 20.0]))
            .collect();
        let mut fd = FdRms::builder(2)
            .r(3)
            .max_utilities(64)
            .build(initial)
            .unwrap();
        let mut stats = ServiceStats::default();
        let metrics = ServiceMetrics::register(&Registry::new(), None);

        // 4 ops, one invalid (duplicate insert): atomic rejection, per-op
        // replay salvages 3.
        let batch = vec![
            Op::Insert(Point::new_unchecked(100, vec![0.9, 0.8])),
            Op::Insert(Point::new_unchecked(0, vec![0.1, 0.2])), // id 0 is live
            Op::Delete(1),
            Op::Update(Point::new_unchecked(2, vec![0.5, 0.6])),
        ];
        apply_batch(&mut fd, &batch, &mut stats, &metrics);
        assert_eq!(stats.batches, 1, "salvage is one logical batch");
        assert_eq!(stats.replayed_batches, 1);
        assert_eq!(stats.ops_applied, 3);
        assert_eq!(stats.ops_rejected, 1);
        assert_eq!(stats.last_batch_ops, 4);

        // A clean batch keeps agreeing with the coalescing counters.
        apply_batch(
            &mut fd,
            &[Op::Insert(Point::new_unchecked(101, vec![0.7, 0.7]))],
            &mut stats,
            &metrics,
        );
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.replayed_batches, 1);
        assert_eq!(stats.ops_applied, 4);
        assert!(stats.avg_apply_ms() > 0.0);
        // The registry counters mirror the stats, including through the
        // per-op salvage path, and the batch-size histogram saw both
        // coalesced sizes.
        assert_eq!(metrics.ops_applied.value(), 4);
        assert_eq!(metrics.ops_rejected.value(), 1);
        assert_eq!(metrics.batch_ops.count(), 2);
        assert_eq!(metrics.batch_ops.sum_ns(), 5);
        assert_eq!(metrics.apply_seconds.count(), 2);
        fd.check_invariants().unwrap();
    }
}
