//! The ingestion service: a dedicated applier thread over a bounded op
//! queue, publishing immutable snapshots after every coalesced batch.

use crate::snapshot::{ResultSnapshot, ServiceStats, SnapshotCell};
use fdrms::{FdRms, FdRmsBuilder, FdRmsError, Op};
use rms_eval::RegretEstimator;
use rms_geom::Point;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for [`RmsService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the bounded ingestion queue. A full queue blocks
    /// [`RmsHandle::submit`] (backpressure) until the applier drains.
    pub queue_capacity: usize,
    /// Upper bound on the ops coalesced into one `apply_batch` call. The
    /// actual batch size adapts to load: whatever is queued when the
    /// applier comes around, up to this cap.
    pub max_batch: usize,
    /// Monte-Carlo test directions for the published max-regret-ratio
    /// estimate; `0` (the default) disables estimation — it costs
    /// `O(directions × n)` per refresh.
    pub mrr_directions: usize,
    /// Refresh the regret estimate every this many epochs (when
    /// `mrr_directions > 0`).
    pub mrr_every: u64,
    /// Seed for the regret estimator's test directions.
    pub mrr_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 512,
            mrr_directions: 0,
            mrr_every: 16,
            mrr_seed: 0xE7A1,
        }
    }
}

/// Why a submission failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The service has shut down; the operation (returned) was not
    /// enqueued.
    Disconnected(Op),
    /// [`RmsHandle::try_submit`] only: the queue is at capacity; the
    /// operation (returned) was not enqueued.
    Full(Op),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Disconnected(_) => write!(f, "service has shut down"),
            SubmitError::Full(_) => write!(f, "ingestion queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Msg {
    Op(Op),
    Shutdown,
}

/// High bit of the ingestion state word: set when shutdown begins. The
/// low bits count acknowledged-but-undrained submissions, so checking
/// "still accepting" and registering a submission is one atomic RMW —
/// a submission either observes the closed bit (and is rejected before
/// acknowledgement) or its count is visible to the shutdown drain, which
/// runs until the count reaches zero. No interleaving can acknowledge an
/// op and then drop it.
const CLOSED_BIT: usize = 1 << (usize::BITS - 1);
const COUNT_MASK: usize = CLOSED_BIT - 1;

/// A cheap, cloneable client of a running [`RmsService`]: submit
/// operations (blocking or not) and read published snapshots. Handles
/// outlive the service gracefully — submissions after shutdown return
/// [`SubmitError::Disconnected`], snapshot reads keep returning the last
/// published state.
#[derive(Debug, Clone)]
pub struct RmsHandle {
    tx: SyncSender<Msg>,
    state: Arc<AtomicUsize>,
    cell: Arc<SnapshotCell>,
}

impl RmsHandle {
    /// Registers one pending submission unless shutdown has begun.
    fn register(&self) -> bool {
        let prev = self.state.fetch_add(1, Ordering::SeqCst);
        if prev & CLOSED_BIT != 0 {
            self.state.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Enqueues one operation, blocking while the queue is full
    /// (backpressure). `Ok` means the operation *will* be applied — a
    /// graceful shutdown drains every acknowledged op. The application
    /// itself is asynchronous; a later [`RmsHandle::snapshot`] whose
    /// stats show it absorbed reflects it.
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        if !self.register() {
            return Err(SubmitError::Disconnected(op));
        }
        match self.tx.send(Msg::Op(op)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.state.fetch_sub(1, Ordering::SeqCst);
                let Msg::Op(op) = e.0 else {
                    unreachable!("handles only send ops")
                };
                Err(SubmitError::Disconnected(op))
            }
        }
    }

    /// Non-blocking [`RmsHandle::submit`]: fails fast with
    /// [`SubmitError::Full`] instead of waiting out backpressure.
    pub fn try_submit(&self, op: Op) -> Result<(), SubmitError> {
        if !self.register() {
            return Err(SubmitError::Disconnected(op));
        }
        match self.tx.try_send(Msg::Op(op)) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.state.fetch_sub(1, Ordering::SeqCst);
                match e {
                    TrySendError::Full(Msg::Op(op)) => Err(SubmitError::Full(op)),
                    TrySendError::Disconnected(Msg::Op(op)) => Err(SubmitError::Disconnected(op)),
                    _ => unreachable!("handles only send ops"),
                }
            }
        }
    }

    /// The most recently published snapshot. Never blocks on the applier:
    /// the call clones an `Arc` out of the publication cell, whose lock
    /// is held only across pointer swaps.
    pub fn snapshot(&self) -> Arc<ResultSnapshot> {
        self.cell.load()
    }

    /// Operations currently queued (including submitters blocked on
    /// backpressure). Approximate under concurrency.
    pub fn queue_depth(&self) -> usize {
        self.state.load(Ordering::Relaxed) & COUNT_MASK
    }
}

/// A running FD-RMS instance behind an ingestion queue.
///
/// The engine lives on a dedicated applier thread fed by a bounded MPSC
/// queue. The applier drains whatever is queued (up to
/// [`ServeConfig::max_batch`]) into one [`FdRms::apply_batch`] call — so
/// batch sizes adapt to load, amortising maintenance exactly where the
/// batch engine makes it cheap — and after every batch publishes an
/// immutable [`ResultSnapshot`] behind a swapped `Arc`. Any number of
/// readers call [`RmsService::snapshot`] concurrently without ever
/// blocking ingestion (and vice versa).
///
/// A batch containing an invalid operation is rejected atomically by the
/// engine; the applier then replays that batch one op at a time, so one
/// bad op costs only itself — its batch-mates still apply ([`ServiceStats`]
/// counts `ops_rejected`).
#[derive(Debug)]
pub struct RmsService {
    handle: RmsHandle,
    applier: Option<JoinHandle<FdRms>>,
    dim: usize,
}

impl RmsService {
    /// Builds the engine from `builder` + `initial` (synchronously, so
    /// configuration errors surface here), publishes the epoch-0
    /// snapshot, and starts the applier thread.
    pub fn start(
        builder: FdRmsBuilder,
        initial: Vec<Point>,
        cfg: ServeConfig,
    ) -> Result<Self, FdRmsError> {
        let fd = builder.build(initial)?;
        let dim = fd.dim();
        let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
        let state = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapshotCell::new(make_snapshot(
            &fd,
            0,
            ServiceStats::default(),
            None,
        )));
        let applier = {
            let cell = Arc::clone(&cell);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("rms-applier".into())
                .spawn(move || applier_loop(fd, rx, cell, state, cfg))
                .expect("spawn applier thread")
        };
        Ok(Self {
            handle: RmsHandle { tx, state, cell },
            applier: Some(applier),
            dim,
        })
    }

    /// A new cloneable client handle.
    pub fn handle(&self) -> RmsHandle {
        self.handle.clone()
    }

    /// See [`RmsHandle::snapshot`].
    pub fn snapshot(&self) -> Arc<ResultSnapshot> {
        self.handle.snapshot()
    }

    /// See [`RmsHandle::submit`].
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        self.handle.submit(op)
    }

    /// The configured tuple dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Graceful shutdown: the applier drains and applies every
    /// *acknowledged* operation (every `submit` that returned `Ok`, even
    /// from senders still blocked on a full queue), publishes a final
    /// snapshot, and hands the engine back (e.g. for invariant checks or
    /// persistence). Submissions racing the start of shutdown either
    /// fail with [`SubmitError::Disconnected`] or are applied — never
    /// acknowledged and dropped.
    ///
    /// Panics if the applier thread panicked (an engine invariant
    /// failure), propagating that error.
    pub fn shutdown(mut self) -> FdRms {
        self.shutdown_inner()
            .expect("applier taken only by shutdown")
            .expect("applier thread panicked")
    }

    fn shutdown_inner(&mut self) -> Option<std::thread::Result<FdRms>> {
        let applier = self.applier.take()?;
        // Close the ingestion state word first: any submission that was
        // not already counted is rejected from here on, so the drain's
        // count target can only shrink once the marker is seen.
        self.handle.state.fetch_or(CLOSED_BIT, Ordering::SeqCst);
        let _ = self.handle.tx.send(Msg::Shutdown);
        Some(applier.join())
    }
}

impl Drop for RmsService {
    fn drop(&mut self) {
        // Unlike `shutdown`, a panicked applier is swallowed here: drops
        // run during unwinding, and a second panic would abort the
        // process and mask the original error.
        let _ = self.shutdown_inner();
    }
}

fn make_snapshot(fd: &FdRms, epoch: u64, stats: ServiceStats, mrr: Option<f64>) -> ResultSnapshot {
    ResultSnapshot {
        epoch,
        result: fd.result(),
        len: fd.len(),
        m: fd.m(),
        mrr,
        stats,
    }
}

/// Applies one coalesced batch, with the atomic-rejection fallback. The
/// ops stay borrowed — `apply_batch_slice` clones nothing on the success
/// path and the fallback can replay from the original.
fn apply_batch(fd: &mut FdRms, batch: &[Op], stats: &mut ServiceStats) {
    let n = batch.len();
    if n == 0 {
        return;
    }
    stats.last_batch_ops = n;
    stats.max_coalesced = stats.max_coalesced.max(n);
    let t = Instant::now();
    match fd.apply_batch_slice(batch) {
        Ok(report) => {
            stats.rollup.absorb(&report);
            stats.ops_applied += n as u64;
            record_apply(stats, t);
        }
        Err(_) if n == 1 => {
            stats.ops_rejected += 1;
            record_apply(stats, t);
        }
        Err(_) => {
            // The engine rejects a batch atomically on the first invalid
            // op; replay individually so one bad op costs only itself.
            record_apply(stats, t);
            for op in batch {
                let t = Instant::now();
                match fd.apply_batch_slice(std::slice::from_ref(op)) {
                    Ok(report) => {
                        stats.rollup.absorb(&report);
                        stats.ops_applied += 1;
                    }
                    Err(_) => stats.ops_rejected += 1,
                }
                record_apply(stats, t);
            }
        }
    }
}

fn record_apply(stats: &mut ServiceStats, since: Instant) {
    let ms = since.elapsed().as_secs_f64() * 1e3;
    stats.last_apply_ms = ms;
    stats.total_apply_ms += ms;
    stats.batches += 1;
}

fn applier_loop(
    mut fd: FdRms,
    rx: Receiver<Msg>,
    cell: Arc<SnapshotCell>,
    state: Arc<AtomicUsize>,
    cfg: ServeConfig,
) -> FdRms {
    let max_batch = cfg.max_batch.max(1);
    let estimator = (cfg.mrr_directions > 0)
        .then(|| RegretEstimator::new(fd.dim(), cfg.mrr_directions.max(fd.dim()), cfg.mrr_seed));
    let mrr_every = cfg.mrr_every.max(1);
    let mut stats = ServiceStats::default();
    let mut epoch = 0u64;
    let mut last_mrr = None;
    loop {
        // Block for the first message, then coalesce whatever else is
        // already queued — the adaptive batch: size 1 under light load
        // (the engine routes it to the classic per-op path), up to
        // `max_batch` under sustained pressure.
        let mut shutting_down = false;
        let mut ops: Vec<Op> = Vec::new();
        match rx.recv() {
            Ok(Msg::Op(op)) => {
                state.fetch_sub(1, Ordering::SeqCst);
                ops.push(op);
            }
            Ok(Msg::Shutdown) => shutting_down = true,
            // Every sender (service + all handles) dropped.
            Err(_) => break,
        }
        while ops.len() < max_batch && !shutting_down {
            match rx.try_recv() {
                Ok(Msg::Op(op)) => {
                    state.fetch_sub(1, Ordering::SeqCst);
                    ops.push(op);
                }
                Ok(Msg::Shutdown) => shutting_down = true,
                Err(_) => break,
            }
        }
        if shutting_down {
            // Drain until the submission count reaches zero, not just
            // until the channel reads empty: every acknowledged op was
            // counted *atomically with* observing the state word open
            // (see `CLOSED_BIT`), and the closed bit was set before the
            // shutdown marker was sent — so any count this loop still
            // sees is an op that will arrive (possibly from a sender
            // blocked on a full queue), and no new counts can appear.
            loop {
                match rx.try_recv() {
                    Ok(Msg::Op(op)) => {
                        state.fetch_sub(1, Ordering::SeqCst);
                        ops.push(op);
                    }
                    Ok(Msg::Shutdown) => {}
                    Err(_) => {
                        if state.load(Ordering::SeqCst) & COUNT_MASK == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }
        for chunk in ops.chunks(max_batch) {
            apply_batch(&mut fd, chunk, &mut stats);
        }
        if !ops.is_empty() || shutting_down {
            epoch += 1;
            if let Some(est) = &estimator {
                if epoch % mrr_every == 0 || shutting_down {
                    let live = fd.live_points();
                    last_mrr = Some(est.mrr(&live, &fd.result(), fd.k()));
                }
            }
            stats.queue_depth = state.load(Ordering::Relaxed) & COUNT_MASK;
            cell.store(make_snapshot(&fd, epoch, stats, last_mrr));
        }
        if shutting_down {
            break;
        }
    }
    fd
}
