//! The unified serving surface: one pair of traits over the
//! single-engine [`RmsService`] and the id-partitioned
//! [`ShardedRmsService`], so every front end (TCP server, CLI, bench,
//! tests) is written once against [`RmsBackend`] instead of
//! special-casing both concrete types.
//!
//! * [`RmsBackend`] is the *owner's* surface: construction stays on the
//!   concrete types (their start signatures differ), but everything
//!   after — handles, parameters, graceful shutdown — is uniform.
//! * [`RmsBackendHandle`] is the *client's* surface: submit (blocking or
//!   not), read the published state as a [`BackendView`], and
//!   [`watch`](RmsBackendHandle::watch) the delta stream.
//! * [`BackendView`] wraps either backend's snapshot `Arc` without
//!   copying it, exposing the common accessors front ends need.

use crate::service::{RmsHandle, RmsService, SubmitError};
use crate::sharded::{AggregateSnapshot, ShardedHandle, ShardedRmsService};
use crate::snapshot::{ResultSnapshot, ServiceStats, SnapshotDelta};
use fdrms::{FdRms, Op};
use rms_geom::{Point, PointId};
use rms_metrics::Registry;
use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

/// A zero-copy, point-in-time view over either backend's published
/// state: an `Arc` clone of the single service's [`ResultSnapshot`] or
/// of the shard group's merged [`AggregateSnapshot`].
#[derive(Debug, Clone)]
pub enum BackendView {
    /// One engine's published snapshot.
    Single(Arc<ResultSnapshot>),
    /// A shard group's merged snapshot.
    Merged(Arc<AggregateSnapshot>),
}

impl BackendView {
    /// Per-shard publication epochs (one entry for a single service).
    pub fn epochs(&self) -> Vec<u64> {
        match self {
            BackendView::Single(s) => vec![s.epoch],
            BackendView::Merged(s) => s.epochs.clone(),
        }
    }

    /// A scalar version label: the epoch for a single service, the
    /// epoch-vector sum for a shard group. Monotone for any single
    /// reader in both cases.
    pub fn version(&self) -> u64 {
        match self {
            BackendView::Single(s) => s.epoch,
            BackendView::Merged(s) => s.epochs.iter().sum(),
        }
    }

    /// `true` when the view is a shard group's merged snapshot.
    pub fn is_merged(&self) -> bool {
        matches!(self, BackendView::Merged(_))
    }

    /// The published solution, sorted by id.
    pub fn result(&self) -> &[Point] {
        match self {
            BackendView::Single(s) => &s.result,
            BackendView::Merged(s) => &s.result,
        }
    }

    /// Ids of the published solution, sorted ascending.
    pub fn result_ids(&self) -> Vec<PointId> {
        self.result().iter().map(Point::id).collect()
    }

    /// Live tuples `n` at publication.
    pub fn len(&self) -> usize {
        match self {
            BackendView::Single(s) => s.len,
            BackendView::Merged(s) => s.len,
        }
    }

    /// `true` when no tuples are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Set-cover universe size `m` at publication (summed across shards).
    pub fn m(&self) -> usize {
        match self {
            BackendView::Single(s) => s.m,
            BackendView::Merged(s) => s.m,
        }
    }

    /// Latest Monte-Carlo regret estimate, when estimation is enabled.
    pub fn mrr(&self) -> Option<f64> {
        match self {
            BackendView::Single(s) => s.mrr,
            BackendView::Merged(s) => s.mrr,
        }
    }

    /// Service instrumentation at publication (summed across shards).
    pub fn stats(&self) -> &ServiceStats {
        match self {
            BackendView::Single(s) => &s.stats,
            BackendView::Merged(s) => &s.stats,
        }
    }
}

/// The receiving end of a delta subscription: the starting
/// [`BackendView`] plus a stream of [`SnapshotDelta`]s that apply on top
/// of it, pushed by the publish path (no polling). The stream is
/// *gap-free*: the first delta's `from_version` equals the base view's
/// version and each subsequent delta continues where the previous ended.
/// It closes when the backend shuts down or the receiver is dropped.
///
/// Delivery is unbounded-buffered: a subscriber that stops receiving
/// accumulates pending deltas (each at most `2r` entries) until it is
/// dropped — it can never stall the applier.
#[derive(Debug)]
pub struct DeltaReceiver {
    rx: Receiver<SnapshotDelta>,
    base: BackendView,
}

impl DeltaReceiver {
    pub(crate) fn new(rx: Receiver<SnapshotDelta>, base: BackendView) -> Self {
        Self { rx, base }
    }

    /// The published state the delta stream starts from.
    pub fn base(&self) -> &BackendView {
        &self.base
    }

    /// Blocks for the next delta; `Err` means the stream closed (backend
    /// shut down).
    pub fn recv(&self) -> Result<SnapshotDelta, RecvError> {
        self.rx.recv()
    }

    /// Non-blocking [`DeltaReceiver::recv`].
    pub fn try_recv(&self) -> Result<SnapshotDelta, TryRecvError> {
        self.rx.try_recv()
    }

    /// [`DeltaReceiver::recv`] with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<SnapshotDelta, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Iterates deltas until the stream closes.
    pub fn iter(&self) -> impl Iterator<Item = SnapshotDelta> + '_ {
        self.rx.iter()
    }
}

/// The client surface shared by [`RmsHandle`] and [`ShardedHandle`]:
/// cheap to clone, safe to use from any thread, outlives the backend
/// gracefully.
pub trait RmsBackendHandle: Clone + Send + 'static {
    /// Enqueues one operation, blocking on backpressure. `Ok` means the
    /// operation will be applied (and, on a WAL-backed backend, is on
    /// the log).
    fn submit(&self, op: Op) -> Result<(), SubmitError>;

    /// Non-blocking [`RmsBackendHandle::submit`]: fails fast with
    /// [`SubmitError::Full`] instead of waiting out backpressure.
    fn try_submit(&self, op: Op) -> Result<(), SubmitError>;

    /// The most recently published state. Never blocks on maintenance.
    fn view(&self) -> BackendView;

    /// Operations currently queued (including submitters blocked on
    /// backpressure), summed across shards. Approximate under
    /// concurrency.
    fn queue_depth(&self) -> usize;

    /// Subscribes to the delta stream: the returned receiver's base view
    /// plus every subsequent [`SnapshotDelta`], gap-free, pushed at
    /// publish time.
    fn watch(&self) -> DeltaReceiver;

    /// Aggregate-merge cache counters `(hits, misses)` — `Some` only for
    /// a sharded backend, where a hit means a read was served by the
    /// cached merge (an `Arc` clone) instead of a re-merge.
    fn merge_cache_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

impl RmsBackendHandle for RmsHandle {
    fn submit(&self, op: Op) -> Result<(), SubmitError> {
        RmsHandle::submit(self, op)
    }

    fn try_submit(&self, op: Op) -> Result<(), SubmitError> {
        RmsHandle::try_submit(self, op)
    }

    fn view(&self) -> BackendView {
        BackendView::Single(self.snapshot())
    }

    fn queue_depth(&self) -> usize {
        RmsHandle::queue_depth(self)
    }

    fn watch(&self) -> DeltaReceiver {
        RmsHandle::watch(self)
    }
}

impl RmsBackendHandle for ShardedHandle {
    fn submit(&self, op: Op) -> Result<(), SubmitError> {
        ShardedHandle::submit(self, op)
    }

    fn try_submit(&self, op: Op) -> Result<(), SubmitError> {
        ShardedHandle::try_submit(self, op)
    }

    fn view(&self) -> BackendView {
        BackendView::Merged(self.snapshot())
    }

    fn queue_depth(&self) -> usize {
        ShardedHandle::queue_depth(self)
    }

    fn watch(&self) -> DeltaReceiver {
        ShardedHandle::watch(self)
    }

    fn merge_cache_stats(&self) -> Option<(u64, u64)> {
        Some(ShardedHandle::merge_cache_stats(self))
    }
}

/// The owner surface shared by [`RmsService`] and [`ShardedRmsService`]:
/// what a front end needs beyond the client handle — configuration
/// introspection and the graceful shutdown that hands the engines back.
///
/// Construction stays on the concrete types (single and sharded start
/// signatures differ); everything downstream of construction is written
/// once against this trait.
pub trait RmsBackend: Send + Sized + 'static {
    /// The backend's cheap, cloneable client handle type.
    type Handle: RmsBackendHandle;

    /// A new client handle.
    fn handle(&self) -> Self::Handle;

    /// The configured tuple dimensionality `d`.
    fn dim(&self) -> usize;

    /// The configured rank depth `k`.
    fn k(&self) -> usize;

    /// The configured result size budget `r`.
    fn r(&self) -> usize;

    /// The number of shards (1 for a single service).
    fn shards(&self) -> usize;

    /// The metrics registry every subsystem of this backend reports
    /// into: applier and WAL families (labeled `shard="N"` for a shard
    /// group), plus whatever the front end registers (the TCP server
    /// adds its connection/request families here). Front ends encode it
    /// for the `METRICS` verb and the `/metrics` endpoint.
    fn registry(&self) -> &Arc<Registry>;

    /// Graceful shutdown: drains every acknowledged op, compacts
    /// write-ahead logs when configured, and returns the engines,
    /// indexed by shard (one element for a single service).
    fn shutdown(self) -> Vec<FdRms>;

    /// See [`RmsBackendHandle::watch`]. A per-call convenience (it
    /// constructs a handle); loops should hold a handle and go through
    /// its surface instead.
    fn watch(&self) -> DeltaReceiver {
        self.handle().watch()
    }
}

impl RmsBackend for RmsService {
    type Handle = RmsHandle;

    fn handle(&self) -> RmsHandle {
        RmsService::handle(self)
    }

    fn dim(&self) -> usize {
        RmsService::dim(self)
    }

    fn k(&self) -> usize {
        RmsService::k(self)
    }

    fn r(&self) -> usize {
        RmsService::r(self)
    }

    fn shards(&self) -> usize {
        1
    }

    fn registry(&self) -> &Arc<Registry> {
        RmsService::registry(self)
    }

    fn shutdown(self) -> Vec<FdRms> {
        vec![RmsService::shutdown(self)]
    }
}

impl RmsBackend for ShardedRmsService {
    type Handle = ShardedHandle;

    fn handle(&self) -> ShardedHandle {
        ShardedRmsService::handle(self)
    }

    fn dim(&self) -> usize {
        ShardedRmsService::dim(self)
    }

    fn k(&self) -> usize {
        ShardedRmsService::k(self)
    }

    fn r(&self) -> usize {
        ShardedRmsService::r(self)
    }

    fn shards(&self) -> usize {
        ShardedRmsService::shards(self)
    }

    fn registry(&self) -> &Arc<Registry> {
        ShardedRmsService::registry(self)
    }

    fn shutdown(self) -> Vec<FdRms> {
        ShardedRmsService::shutdown(self)
    }
}
