//! Immutable, versioned result snapshots, the swap cell that publishes
//! them, and the [`SnapshotDelta`]s computed at publish time for
//! push-subscribed watchers.

use crate::sync::recover_poisoned;
use fdrms::BatchRollup;
use rms_geom::{Point, PointId};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Aggregate service instrumentation carried on every snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Operations applied to the engine (accepted by validation).
    pub ops_applied: u64,
    /// Operations rejected by validation (duplicate insert, unknown
    /// delete/update, dimension mismatch).
    pub ops_rejected: u64,
    /// Coalesced batches the applier issued. A batch salvaged by the
    /// per-op replay after an atomic rejection still counts as **one**
    /// logical batch here (see `replayed_batches`), so this always
    /// agrees with the coalescing counters.
    pub batches: u64,
    /// Coalesced batches that were atomically rejected by the engine and
    /// salvaged by the per-op replay.
    pub replayed_batches: u64,
    /// Operations recovered from the write-ahead log before the service
    /// went live (0 without a WAL or after a clean shutdown's
    /// checkpoint compaction).
    pub wal_recovered_ops: u64,
    /// Operation count of the most recent coalesced batch.
    pub last_batch_ops: usize,
    /// Largest batch the applier ever coalesced from the queue.
    pub max_coalesced: usize,
    /// Wall-clock of the most recent apply, milliseconds.
    pub last_apply_ms: f64,
    /// Total wall-clock spent inside `apply_batch`, milliseconds.
    pub total_apply_ms: f64,
    /// Ops sitting in the ingestion queue when the snapshot was
    /// published (including submitters blocked on backpressure).
    pub queue_depth: usize,
    /// Engine-level roll-up across every applied batch.
    pub rollup: BatchRollup,
}

impl ServiceStats {
    /// Mean `apply_batch` wall-clock, milliseconds (0 before any batch).
    pub fn avg_apply_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_apply_ms / self.batches as f64
        }
    }

    /// Folds another shard's stats into this one: counters and wall-clock
    /// sum, high-water marks (`max_coalesced`, `last_*`) take the max.
    /// The sharded serving layer publishes one aggregate built this way.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.ops_applied += other.ops_applied;
        self.ops_rejected += other.ops_rejected;
        self.batches += other.batches;
        self.replayed_batches += other.replayed_batches;
        self.wal_recovered_ops += other.wal_recovered_ops;
        self.last_batch_ops = self.last_batch_ops.max(other.last_batch_ops);
        self.max_coalesced = self.max_coalesced.max(other.max_coalesced);
        self.last_apply_ms = self.last_apply_ms.max(other.last_apply_ms);
        self.total_apply_ms += other.total_apply_ms;
        self.queue_depth += other.queue_depth;
        self.rollup.merge(&other.rollup);
    }
}

/// One published state of the service: everything a reader needs, frozen
/// at a batch boundary. Snapshots are immutable and shared by `Arc`, so
/// holding one never blocks the applier or other readers.
#[derive(Debug, Clone)]
pub struct ResultSnapshot {
    /// Publication version: 0 is the initial build, +1 per applied batch.
    /// Strictly monotone across the snapshots any single reader observes.
    pub epoch: u64,
    /// The maintained k-RMS solution `Q`, sorted by id.
    pub result: Vec<Point>,
    /// Live tuples `n` at publication.
    pub len: usize,
    /// Set-cover universe size `m` at publication.
    pub m: usize,
    /// Latest Monte-Carlo estimate of the max k-regret ratio of `result`
    /// (refreshed every `mrr_every` epochs when the service was
    /// configured with `mrr_directions > 0`; `None` otherwise).
    pub mrr: Option<f64>,
    /// Aggregate service instrumentation at publication.
    pub stats: ServiceStats,
}

impl ResultSnapshot {
    /// Ids of the published solution, sorted ascending.
    pub fn result_ids(&self) -> Vec<PointId> {
        self.result.iter().map(Point::id).collect()
    }

    /// The delta from `prev` to this snapshot, computed at publish time
    /// by the applier so watchers receive it pushed instead of polling.
    pub fn delta_from(&self, prev: &ResultSnapshot) -> SnapshotDelta {
        let (added, removed) = diff_results(&prev.result, &self.result);
        SnapshotDelta {
            from_version: prev.epoch,
            version: self.epoch,
            epochs: vec![self.epoch],
            added,
            removed,
            len: self.len,
            stats: StatsDelta::between(&prev.stats, &self.stats),
        }
    }
}

/// Counter increments across a delta's epoch range — the "stats diff"
/// carried on every [`SnapshotDelta`] (high-water marks and wall-clock
/// means do not diff meaningfully and are read from full snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Operations the engine accepted in the range.
    pub ops_applied: u64,
    /// Operations validation rejected in the range.
    pub ops_rejected: u64,
    /// Coalesced batches applied in the range.
    pub batches: u64,
    /// Atomically-rejected batches salvaged per-op in the range.
    pub replayed_batches: u64,
}

impl StatsDelta {
    /// The counter increments from `prev` to `next` (saturating, so a
    /// stale `prev` never underflows).
    pub fn between(prev: &ServiceStats, next: &ServiceStats) -> Self {
        Self {
            ops_applied: next.ops_applied.saturating_sub(prev.ops_applied),
            ops_rejected: next.ops_rejected.saturating_sub(prev.ops_rejected),
            batches: next.batches.saturating_sub(prev.batches),
            replayed_batches: next.replayed_batches.saturating_sub(prev.replayed_batches),
        }
    }

    /// Accumulates another range's increments.
    pub fn absorb(&mut self, other: &StatsDelta) {
        self.ops_applied += other.ops_applied;
        self.ops_rejected += other.ops_rejected;
        self.batches += other.batches;
        self.replayed_batches += other.replayed_batches;
    }
}

/// The difference between two published solutions, computed at publish
/// time and pushed to every watcher ([`RmsHandle::watch`](crate::RmsHandle::watch),
/// wire verb `SUBSCRIBE`). Applying every delta in order to the starting
/// snapshot reproduces the server's published solution at each delivered
/// version — the contract pinned by `tests/delta.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// The version this delta applies on top of: the previous snapshot's
    /// epoch for a single service, the previous epoch-vector sum for a
    /// shard group.
    pub from_version: u64,
    /// The version after applying: strictly greater than `from_version`.
    pub version: u64,
    /// Per-shard epoch vector at `version` (one entry for a single
    /// service). `version` is its sum, so it is strictly monotone while
    /// each component is monotone.
    pub epochs: Vec<u64>,
    /// Solution entries that appeared — or changed coordinates — since
    /// `from_version`, sorted by id. Applied as *upserts*.
    pub added: Vec<Point>,
    /// Ids no longer in the solution at `version`, sorted. Disjoint from
    /// the ids of `added`. A coalesced delta ([`SnapshotDelta::merge`])
    /// may list an id that was already absent at `from_version`; applying
    /// such a removal is a no-op, never an error.
    pub removed: Vec<PointId>,
    /// Live tuples `n` at `version`.
    pub len: usize,
    /// Counter increments across the range.
    pub stats: StatsDelta,
}

impl SnapshotDelta {
    /// Applies the delta to a solution map: removals first, then upserts.
    pub fn apply_to(&self, solution: &mut BTreeMap<PointId, Point>) {
        for id in &self.removed {
            solution.remove(id);
        }
        for p in &self.added {
            solution.insert(p.id(), p.clone());
        }
    }

    /// Composes a later delta onto this one, so `self` then covers the
    /// range `self.from_version..next.version`. This is how `SUBSCRIBE
    /// every=K` coalesces K epochs into one pushed line.
    pub fn merge(&mut self, next: &SnapshotDelta) {
        self.version = next.version;
        self.epochs = next.epochs.clone();
        self.len = next.len;
        self.stats.absorb(&next.stats);
        for id in &next.removed {
            // Drop any pending upsert of the id — but still record the
            // removal: the upsert may have been a coordinate change of an
            // entry that existed *before* this delta's range (an `added`
            // entry does not imply the id was absent at `from_version`),
            // so only the explicit removal makes a subscriber drop it.
            // For a genuinely fresh add-then-remove the extra removal
            // applies as a no-op.
            if let Ok(i) = self.added.binary_search_by_key(id, Point::id) {
                self.added.remove(i);
            }
            if let Err(i) = self.removed.binary_search(id) {
                self.removed.insert(i, *id);
            }
        }
        for p in &next.added {
            // A re-add cancels a pending removal; otherwise upsert.
            if let Ok(i) = self.removed.binary_search(&p.id()) {
                self.removed.remove(i);
            }
            match self.added.binary_search_by_key(&p.id(), Point::id) {
                Ok(i) => self.added[i] = p.clone(),
                Err(i) => self.added.insert(i, p.clone()),
            }
        }
    }
}

/// Diffs two solutions sorted by id: entries only in `next` (or in both
/// with different coordinates) are upserts, ids only in `prev` are
/// removals.
pub(crate) fn diff_results(prev: &[Point], next: &[Point]) -> (Vec<Point>, Vec<PointId>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < next.len() {
        match prev[i].id().cmp(&next[j].id()) {
            std::cmp::Ordering::Less => {
                removed.push(prev[i].id());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(next[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if prev[i].coords() != next[j].coords() {
                    added.push(next[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend(prev[i..].iter().map(Point::id));
    added.extend(next[j..].iter().cloned());
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(from: u64, to: u64, added: Vec<Point>, removed: Vec<PointId>) -> SnapshotDelta {
        SnapshotDelta {
            from_version: from,
            version: to,
            epochs: vec![to],
            added,
            removed,
            len: 0,
            stats: StatsDelta::default(),
        }
    }

    fn apply_all(base: &[Point], deltas: &[SnapshotDelta]) -> Vec<PointId> {
        let mut solution: BTreeMap<PointId, Point> =
            base.iter().map(|p| (p.id(), p.clone())).collect();
        for d in deltas {
            d.apply_to(&mut solution);
        }
        solution.into_keys().collect()
    }

    /// The regression the `SUBSCRIBE every=K` coalescing path hit: an
    /// `added` entry can be a coordinate-change *upsert* of an id that
    /// existed before the delta's range, so a later removal of that id
    /// must survive the merge — dropping the pair as an "add-then-remove
    /// no-op" leaves the subscriber holding a stale id forever.
    #[test]
    fn merge_keeps_removal_of_an_upserted_id() {
        let base = vec![
            Point::new_unchecked(5, vec![0.1, 0.2]),
            Point::new_unchecked(9, vec![0.3, 0.4]),
        ];
        // Epoch 1: id 5 changes coordinates (upsert); epoch 2: it leaves.
        let d1 = delta(0, 1, vec![Point::new_unchecked(5, vec![0.6, 0.7])], vec![]);
        let d2 = delta(1, 2, vec![], vec![5]);
        let mut coalesced = d1.clone();
        coalesced.merge(&d2);
        // The coalesced delta must reach the same state as the sequence.
        assert_eq!(
            apply_all(&base, std::slice::from_ref(&coalesced)),
            apply_all(&base, &[d1, d2]),
        );
        assert!(coalesced.added.is_empty());
        assert_eq!(coalesced.removed, vec![5]);
        assert_eq!((coalesced.from_version, coalesced.version), (0, 2));
    }

    /// The rest of the composition algebra: fresh-add-then-remove nets
    /// out (modulo a harmless no-op removal), remove-then-readd nets to
    /// an upsert, and later upserts win.
    #[test]
    fn merge_composes_like_the_sequence() {
        let base = vec![
            Point::new_unchecked(1, vec![0.1, 0.1]),
            Point::new_unchecked(2, vec![0.2, 0.2]),
        ];
        let d1 = delta(
            0,
            1,
            vec![Point::new_unchecked(7, vec![0.5, 0.5])], // fresh add
            vec![1],                                       // remove 1
        );
        let d2 = delta(
            1,
            2,
            vec![
                Point::new_unchecked(1, vec![0.9, 0.9]), // re-add 1
                Point::new_unchecked(7, vec![0.6, 0.6]), // upsert 7 again
            ],
            vec![2], // remove 2
        );
        let d3 = delta(2, 3, vec![], vec![7]); // fresh-added 7 leaves
        let mut coalesced = d1.clone();
        coalesced.merge(&d2);
        coalesced.merge(&d3);
        assert_eq!(
            apply_all(&base, std::slice::from_ref(&coalesced)),
            apply_all(&base, &[d1, d2, d3]),
        );
        // 1 was re-added with new coordinates: an upsert, not a removal.
        assert_eq!(
            coalesced.added.iter().map(Point::id).collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(coalesced.added[0].coords(), &[0.9, 0.9]);
        // added and removed stay disjoint.
        assert!(coalesced
            .removed
            .iter()
            .all(|id| coalesced.added.binary_search_by_key(id, Point::id).is_err()));
    }
}

/// The single-writer publication cell: the applier swaps a fresh
/// `Arc<ResultSnapshot>` in after every batch; readers clone the `Arc`
/// out. The lock is held only for the pointer clone/swap — never while a
/// snapshot is built or a batch is applied — so readers are decoupled
/// from maintenance (`std` offers no safe lock-free `Arc` swap and the
/// workspace forbids `unsafe`; the nanosecond-scale critical section is
/// the closest safe equivalent).
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    slot: RwLock<Arc<ResultSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: ResultSnapshot) -> Self {
        Self {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The most recently published snapshot.
    pub(crate) fn load(&self) -> Arc<ResultSnapshot> {
        recover_poisoned(self.slot.read()).clone()
    }

    /// Publishes a new snapshot. Takes the `Arc` so the applier can keep
    /// a reference for publish-time delta computation.
    pub(crate) fn store(&self, snapshot: Arc<ResultSnapshot>) {
        *recover_poisoned(self.slot.write()) = snapshot;
    }
}
