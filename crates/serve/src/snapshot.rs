//! Immutable, versioned result snapshots and the swap cell that
//! publishes them.

use fdrms::BatchRollup;
use rms_geom::{Point, PointId};
use std::sync::{Arc, PoisonError, RwLock};

/// Aggregate service instrumentation carried on every snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Operations applied to the engine (accepted by validation).
    pub ops_applied: u64,
    /// Operations rejected by validation (duplicate insert, unknown
    /// delete/update, dimension mismatch).
    pub ops_rejected: u64,
    /// Coalesced batches the applier issued. A batch salvaged by the
    /// per-op replay after an atomic rejection still counts as **one**
    /// logical batch here (see `replayed_batches`), so this always
    /// agrees with the coalescing counters.
    pub batches: u64,
    /// Coalesced batches that were atomically rejected by the engine and
    /// salvaged by the per-op replay.
    pub replayed_batches: u64,
    /// Operations recovered from the write-ahead log before the service
    /// went live (0 without a WAL or after a clean shutdown's
    /// checkpoint compaction).
    pub wal_recovered_ops: u64,
    /// Operation count of the most recent coalesced batch.
    pub last_batch_ops: usize,
    /// Largest batch the applier ever coalesced from the queue.
    pub max_coalesced: usize,
    /// Wall-clock of the most recent apply, milliseconds.
    pub last_apply_ms: f64,
    /// Total wall-clock spent inside `apply_batch`, milliseconds.
    pub total_apply_ms: f64,
    /// Ops sitting in the ingestion queue when the snapshot was
    /// published (including submitters blocked on backpressure).
    pub queue_depth: usize,
    /// Engine-level roll-up across every applied batch.
    pub rollup: BatchRollup,
}

impl ServiceStats {
    /// Mean `apply_batch` wall-clock, milliseconds (0 before any batch).
    pub fn avg_apply_ms(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.total_apply_ms / self.batches as f64
        }
    }

    /// Folds another shard's stats into this one: counters and wall-clock
    /// sum, high-water marks (`max_coalesced`, `last_*`) take the max.
    /// The sharded serving layer publishes one aggregate built this way.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.ops_applied += other.ops_applied;
        self.ops_rejected += other.ops_rejected;
        self.batches += other.batches;
        self.replayed_batches += other.replayed_batches;
        self.wal_recovered_ops += other.wal_recovered_ops;
        self.last_batch_ops = self.last_batch_ops.max(other.last_batch_ops);
        self.max_coalesced = self.max_coalesced.max(other.max_coalesced);
        self.last_apply_ms = self.last_apply_ms.max(other.last_apply_ms);
        self.total_apply_ms += other.total_apply_ms;
        self.queue_depth += other.queue_depth;
        self.rollup.merge(&other.rollup);
    }
}

/// One published state of the service: everything a reader needs, frozen
/// at a batch boundary. Snapshots are immutable and shared by `Arc`, so
/// holding one never blocks the applier or other readers.
#[derive(Debug, Clone)]
pub struct ResultSnapshot {
    /// Publication version: 0 is the initial build, +1 per applied batch.
    /// Strictly monotone across the snapshots any single reader observes.
    pub epoch: u64,
    /// The maintained k-RMS solution `Q`, sorted by id.
    pub result: Vec<Point>,
    /// Live tuples `n` at publication.
    pub len: usize,
    /// Set-cover universe size `m` at publication.
    pub m: usize,
    /// Latest Monte-Carlo estimate of the max k-regret ratio of `result`
    /// (refreshed every `mrr_every` epochs when the service was
    /// configured with `mrr_directions > 0`; `None` otherwise).
    pub mrr: Option<f64>,
    /// Aggregate service instrumentation at publication.
    pub stats: ServiceStats,
}

impl ResultSnapshot {
    /// Ids of the published solution, sorted ascending.
    pub fn result_ids(&self) -> Vec<PointId> {
        self.result.iter().map(Point::id).collect()
    }
}

/// The single-writer publication cell: the applier swaps a fresh
/// `Arc<ResultSnapshot>` in after every batch; readers clone the `Arc`
/// out. The lock is held only for the pointer clone/swap — never while a
/// snapshot is built or a batch is applied — so readers are decoupled
/// from maintenance (`std` offers no safe lock-free `Arc` swap and the
/// workspace forbids `unsafe`; the nanosecond-scale critical section is
/// the closest safe equivalent).
#[derive(Debug)]
pub(crate) struct SnapshotCell {
    slot: RwLock<Arc<ResultSnapshot>>,
}

impl SnapshotCell {
    pub(crate) fn new(initial: ResultSnapshot) -> Self {
        Self {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The most recently published snapshot.
    pub(crate) fn load(&self) -> Arc<ResultSnapshot> {
        self.slot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Publishes a new snapshot.
    pub(crate) fn store(&self, snapshot: ResultSnapshot) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
    }
}
