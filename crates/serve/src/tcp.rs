//! A `std::net`-only TCP front end over any [`RmsBackend`] — the single
//! [`RmsService`](crate::RmsService) and the sharded
//! [`ShardedRmsService`](crate::ShardedRmsService) behind one generic
//! code path — speaking the [line protocol](crate::protocol), v1 and v2.

use crate::backend::{BackendView, RmsBackend, RmsBackendHandle};
use crate::protocol::{parse_request, Request, MAX_BATCH_LINES, PROTOCOL_VERSION};
use crate::snapshot::SnapshotDelta;
use fdrms::{FdRms, Op};
use rms_metrics::{Counter, Gauge, Histogram, Registry};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long an idle `SUBSCRIBE` stream waits before flushing a pending
/// coalesced delta that has not yet spanned `every` epochs.
const SUBSCRIBE_IDLE_FLUSH: Duration = Duration::from_millis(200);

/// Label values for the per-verb request families. The last entry,
/// `invalid`, buckets lines whose leading token is no verb at all;
/// recognizable-but-malformed requests count under their verb.
const VERBS: [&str; 11] = [
    "insert",
    "delete",
    "update",
    "query",
    "stats",
    "shutdown",
    "hello",
    "batch",
    "subscribe",
    "metrics",
    "invalid",
];

/// Maps a raw request line to its [`VERBS`] slot.
fn verb_index(line: &str) -> usize {
    line.split_whitespace()
        .next()
        .and_then(|verb| VERBS.iter().position(|v| verb.eq_ignore_ascii_case(v)))
        .unwrap_or(VERBS.len() - 1)
}

/// Front-end instruments, registered once at [`RmsServer::run`] into the
/// backend's registry and cloned into every connection thread.
#[derive(Debug, Clone)]
struct TcpMetrics {
    /// The backend registry, kept for the `METRICS` verb's exposition.
    registry: Arc<Registry>,
    /// `rms_tcp_connections_total`.
    connections: Counter,
    /// `rms_tcp_subscribers` — connections currently in push mode.
    subscribers: Gauge,
    /// `rms_tcp_delta_bytes_total` — pushed `DELTA` line bytes.
    delta_bytes: Counter,
    /// Per-verb `rms_tcp_requests_total` / `rms_tcp_request_seconds`,
    /// indexed like [`VERBS`].
    requests: Vec<(Counter, Histogram)>,
}

impl TcpMetrics {
    fn register(registry: &Arc<Registry>) -> Self {
        let requests = VERBS
            .iter()
            .map(|verb| {
                (
                    registry.register_counter(
                        "rms_tcp_requests_total",
                        "Requests handled, by verb (`invalid` buckets unrecognized lines).",
                        &[("verb", verb)],
                    ),
                    registry.register_histogram(
                        "rms_tcp_request_seconds",
                        "Request handling latency, by verb: parse through reply-ready \
                         (includes submit backpressure and BATCH body reads).",
                        &[("verb", verb)],
                    ),
                )
            })
            .collect();
        TcpMetrics {
            registry: Arc::clone(registry),
            connections: registry.register_counter(
                "rms_tcp_connections_total",
                "Connections accepted by the TCP front end.",
                &[],
            ),
            subscribers: registry.register_gauge(
                "rms_tcp_subscribers",
                "Connections currently streaming deltas in push mode.",
                &[],
            ),
            delta_bytes: registry.register_counter(
                "rms_tcp_delta_bytes_total",
                "Bytes of DELTA lines pushed to subscribers.",
                &[],
            ),
            requests,
        }
    }
}

/// Static backend parameters every connection needs (for `HELLO`
/// replies and op parsing), captured once at bind time.
#[derive(Clone, Copy)]
struct ServerInfo {
    dim: usize,
    k: usize,
    r: usize,
    shards: usize,
}

/// A TCP server wrapping a running backend: one thread per connection,
/// all of them feeding the ingestion queue(s) and reading the shared
/// snapshot state through the backend's cloneable handle.
#[derive(Debug)]
pub struct RmsServer<B: RmsBackend> {
    listener: TcpListener,
    backend: B,
}

impl<B: RmsBackend> RmsServer<B> {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port — see [`RmsServer::local_addr`]) around a started backend:
    /// a single service or a shard group, behind the same protocol
    /// surface (a sharded backend reports `epochs=e0,e1,…` instead of
    /// `epoch=E` in `QUERY`/`STATS` and in pushed `DELTA` lines).
    pub fn bind(addr: impl ToSocketAddrs, backend: B) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            backend,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the ingestion queue(s) gracefully and returns the final engine
    /// state, indexed by shard (one engine for a single-service
    /// backend). Connections still open at shutdown see `ERR service has
    /// shut down` for further mutations, and open `SUBSCRIBE` streams
    /// end.
    pub fn run(self) -> std::io::Result<Vec<FdRms>> {
        let addr = self.listener.local_addr()?;
        // The shutdown flag is a classic release/acquire handshake: the
        // connection thread that handles SHUTDOWN stores with Release,
        // the accept loop observes with Acquire.
        // rms-analyze: atomic-policy(shutdown: Acquire|Release)
        let shutdown = Arc::new(AtomicBool::new(false));
        let info = ServerInfo {
            dim: self.backend.dim(),
            k: self.backend.k(),
            r: self.backend.r(),
            shards: self.backend.shards(),
        };
        let metrics = TcpMetrics::register(self.backend.registry());
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient (ECONNABORTED) and persistent (EMFILE)
                    // accept failures alike: back off instead of spinning
                    // the accept loop at 100% CPU — but re-check the
                    // shutdown flag first, since the failed accept may
                    // have been the SHUTDOWN handler's nudge connection.
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            let handle = self.backend.handle();
            let flag = Arc::clone(&shutdown);
            let metrics = metrics.clone();
            // Connection threads are detached: they die with the process
            // (CLI) or when their client hangs up (tests), and after
            // shutdown every submit they attempt fails cleanly.
            let _ = std::thread::Builder::new()
                .name("rms-conn".into())
                .spawn(move || handle_connection(stream, &handle, info, &flag, addr, &metrics));
        }
        Ok(self.backend.shutdown())
    }
}

/// What one parsed request asks the connection loop to do next.
enum Step {
    Reply(String),
    /// `SHUTDOWN`: acknowledge, nudge the accept loop, close.
    Shutdown,
    /// `SUBSCRIBE`: acknowledge, then switch to push mode until the
    /// client hangs up or the backend shuts down.
    Subscribe {
        every: u64,
    },
    /// Protocol violation that cannot preserve framing (oversized
    /// `BATCH`): report and close.
    Fatal(String),
}

fn handle_connection<H: RmsBackendHandle>(
    stream: TcpStream,
    handle: &H,
    info: ServerInfo,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    metrics: &TcpMetrics,
) {
    metrics.connections.inc();
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // Sessions start at v1; `HELLO v2` upgrades, unlocking BATCH and
    // SUBSCRIBE. Every v1 verb behaves identically at either version.
    let mut version = 1u32;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let step = match parse_request(&line, info.dim) {
            // In a v2 session a BATCH header is *framing*: if it cannot
            // be parsed (e.g. a count that overflows), the announced op
            // lines cannot be consumed, and replying ERR while keeping
            // the connection would reinterpret them as requests. Closing
            // is the only framing-safe refusal — same as the oversized
            // case in `read_batch`. (In a v1 session there is no batch
            // framing — every line gets its own reply — so the plain ERR
            // below is correct there.)
            Err(msg)
                if version >= 2
                    && line
                        .split_whitespace()
                        .next()
                        .is_some_and(|verb| verb.eq_ignore_ascii_case("BATCH")) =>
            {
                Step::Fatal(format!(
                    "ERR {msg}; closing connection (unusable BATCH framing)"
                ))
            }
            Err(msg) => Step::Reply(format!("ERR {msg}")),
            Ok(Request::Hello(requested)) => {
                version = requested.min(PROTOCOL_VERSION);
                Step::Reply(format!(
                    "OK v{version} dim={} k={} r={} shards={}",
                    info.dim, info.k, info.r, info.shards
                ))
            }
            Ok(Request::Shutdown) => Step::Shutdown,
            // `submit` blocks on a full queue (backpressure propagates to
            // the client as a delayed reply); the only error it returns
            // is a shut-down service.
            Ok(Request::Submit(op)) => Step::Reply(match handle.submit(op) {
                Ok(()) => "OK queued".to_string(),
                Err(e) => format!("ERR {e}"),
            }),
            Ok(Request::Query) => Step::Reply(format_query(&handle.view())),
            Ok(Request::Stats) => Step::Reply(format_stats(handle)),
            Ok(Request::Batch(_)) if version < 2 => {
                Step::Reply("ERR BATCH requires protocol v2 (send HELLO v2 first)".into())
            }
            Ok(Request::Batch(n)) => read_batch(&mut reader, handle, info.dim, n),
            Ok(Request::Subscribe { .. }) if version < 2 => {
                Step::Reply("ERR SUBSCRIBE requires protocol v2 (send HELLO v2 first)".into())
            }
            Ok(Request::Subscribe { every }) => Step::Subscribe { every },
            Ok(Request::Metrics) if version < 2 => {
                Step::Reply("ERR METRICS requires protocol v2 (send HELLO v2 first)".into())
            }
            Ok(Request::Metrics) => Step::Reply(format_metrics(&metrics.registry)),
        };
        let (requests_total, request_seconds) = &metrics.requests[verb_index(&line)];
        requests_total.inc();
        request_seconds.record(started.elapsed());
        match step {
            Step::Reply(reply) => {
                if writeln!(writer, "{reply}").is_err() {
                    return;
                }
            }
            Step::Fatal(reply) => {
                let _ = writeln!(writer, "{reply}");
                return;
            }
            Step::Shutdown => {
                shutdown.store(true, Ordering::Release);
                let _ = writeln!(writer, "OK shutting down");
                // Nudge the accept loop so it observes the flag. A
                // wildcard bind reports the unspecified address, which
                // is not connectable everywhere — nudge via loopback.
                let mut nudge = addr;
                if nudge.ip().is_unspecified() {
                    nudge.set_ip(match nudge {
                        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(nudge);
                return;
            }
            Step::Subscribe { every } => {
                metrics.subscribers.inc();
                run_subscription(&mut writer, handle, every, metrics);
                metrics.subscribers.dec();
                return;
            }
        }
    }
}

/// Consumes the `n` op lines a `BATCH` header announced and submits them
/// with one acknowledgement. All-or-nothing at the framing level: every
/// line is read and parsed first, and a single malformed line drops the
/// whole batch (nothing submitted) — pipelined clients must never wonder
/// which prefix was accepted.
fn read_batch<H: RmsBackendHandle>(
    reader: &mut impl BufRead,
    handle: &H,
    dim: usize,
    n: usize,
) -> Step {
    if n > MAX_BATCH_LINES {
        // Refusing without consuming would reinterpret the announced op
        // lines as requests; closing is the only framing-safe refusal.
        return Step::Fatal(format!(
            "ERR BATCH size {n} exceeds {MAX_BATCH_LINES}; closing connection"
        ));
    }
    let mut ops: Vec<Op> = Vec::with_capacity(n);
    let mut bad: Option<(usize, String)> = None;
    let mut line = String::new();
    for i in 1..=n {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                return Step::Fatal(format!(
                    "ERR BATCH truncated: got {} of {n} operation lines",
                    i - 1
                ))
            }
            Ok(_) => {}
        }
        if bad.is_some() {
            continue; // keep consuming to preserve framing
        }
        match parse_request(&line, dim) {
            Ok(Request::Submit(op)) => ops.push(op),
            Ok(_) => bad = Some((i, "only INSERT/DELETE/UPDATE allowed in a batch".into())),
            Err(msg) => bad = Some((i, msg)),
        }
    }
    if let Some((i, msg)) = bad {
        return Step::Reply(format!("ERR line {i}: {msg} (batch dropped)"));
    }
    let total = ops.len();
    for (i, op) in ops.into_iter().enumerate() {
        if let Err(e) = handle.submit(op) {
            return Step::Reply(format!("ERR {e} ({i} of {total} queued)"));
        }
    }
    Step::Reply(format!("OK queued n={total}"))
}

/// Push mode: acknowledge with the starting solution, then stream
/// `DELTA` lines — one per published delta, coalesced so at most one
/// line goes out per `every` epochs (an idle stream flushes whatever is
/// pending after a short beat). Ends when the backend shuts down (final
/// pending delta flushed) or the client hangs up.
fn run_subscription<H: RmsBackendHandle>(
    writer: &mut impl Write,
    handle: &H,
    every: u64,
    metrics: &TcpMetrics,
) {
    let rx = handle.watch();
    let base = rx.base();
    let sharded = base.is_merged();
    let ack = format!(
        "OK subscribed every={every} {} n={} ids={}",
        version_fields(sharded, &base.epochs()),
        base.len(),
        join_ids(base.result()),
    );
    if writeln!(writer, "{ack}").is_err() {
        return;
    }
    // Counts the DELTA line plus its newline toward the fan-out bytes —
    // *before* the write, so a client that reacts to the pushed line by
    // scraping immediately can never observe a count behind the bytes
    // it just received (the pushing thread may be descheduled between
    // the write syscall and a post-write increment).
    let push = |writer: &mut dyn Write, delta: &SnapshotDelta| {
        let line = format_delta(delta, sharded);
        metrics.delta_bytes.add(line.len() as u64 + 1);
        writeln!(writer, "{line}").is_ok()
    };
    let mut pending: Option<SnapshotDelta> = None;
    loop {
        match rx.recv_timeout(SUBSCRIBE_IDLE_FLUSH) {
            Ok(delta) => {
                let coalesced = match pending.take() {
                    None => delta,
                    Some(mut acc) => {
                        acc.merge(&delta);
                        acc
                    }
                };
                if coalesced.version - coalesced.from_version >= every {
                    if !push(writer, &coalesced) {
                        return;
                    }
                } else {
                    pending = Some(coalesced);
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if let Some(delta) = pending.take() {
                    if !push(writer, &delta) {
                        return;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                if let Some(delta) = pending.take() {
                    let _ = push(writer, &delta);
                }
                return;
            }
        }
    }
}

/// The `epoch=E` / `epochs=e0,e1,… version=V` field pair, matching the
/// single/sharded dichotomy of `QUERY` replies.
fn version_fields(merged: bool, epochs: &[u64]) -> String {
    if merged {
        format!(
            "epochs={} version={}",
            join_u64(epochs),
            epochs.iter().sum::<u64>()
        )
    } else {
        format!("epoch={}", epochs.first().copied().unwrap_or(0))
    }
}

fn format_delta(delta: &SnapshotDelta, sharded: bool) -> String {
    let mut out = format!(
        "DELTA {} from={} n={}",
        version_fields(sharded, &delta.epochs),
        delta.from_version,
        delta.len,
    );
    if !delta.added.is_empty() {
        out.push_str(" +");
        out.push_str(&join_ids(&delta.added));
    }
    if !delta.removed.is_empty() {
        out.push_str(" -");
        out.push_str(&join_u64(&delta.removed));
    }
    out
}

fn format_query(view: &BackendView) -> String {
    let epochs = view.epochs();
    let head = if view.is_merged() {
        format!("OK epochs={}", join_u64(&epochs))
    } else {
        format!("OK epoch={}", epochs[0])
    };
    format!(
        "{head} n={} r={} ids={}",
        view.len(),
        view.result().len(),
        join_ids(view.result()),
    )
}

fn format_stats<H: RmsBackendHandle>(handle: &H) -> String {
    let view = handle.view();
    let epochs = view.epochs();
    let s = view.stats();
    let mut out = if view.is_merged() {
        format!("OK epochs={} shards={}", join_u64(&epochs), epochs.len())
    } else {
        format!("OK epoch={}", epochs[0])
    };
    out.push_str(&format!(
        " n={} m={} r={} queue_depth={} batches={} replayed_batches={} \
         ops_applied={} ops_rejected={} wal_recovered={} last_batch={} max_coalesced={} \
         avg_apply_ms={:.4} last_apply_ms={:.4}",
        view.len(),
        view.m(),
        view.result().len(),
        handle.queue_depth(),
        s.batches,
        s.replayed_batches,
        s.ops_applied,
        s.ops_rejected,
        s.wal_recovered_ops,
        s.last_batch_ops,
        s.max_coalesced,
        s.avg_apply_ms(),
        s.last_apply_ms,
    ));
    if let Some(mrr) = view.mrr() {
        out.push_str(&format!(" mrr={mrr:.5}"));
    }
    if let Some((hits, misses)) = handle.merge_cache_stats() {
        out.push_str(&format!(" merge_hits={hits} merge_misses={misses}"));
    }
    out
}

/// The `METRICS` reply: a counted header so line-oriented clients know
/// how many raw exposition lines follow, then the Prometheus text
/// exposition itself (which is multi-line by nature).
fn format_metrics(registry: &Registry) -> String {
    let encoded = registry.encode();
    let body = encoded.trim_end_matches('\n');
    if body.is_empty() {
        return "OK metrics lines=0".to_string();
    }
    format!("OK metrics lines={}\n{body}", body.lines().count())
}

fn join_ids(points: &[rms_geom::Point]) -> String {
    points
        .iter()
        .map(|p| p.id().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}
