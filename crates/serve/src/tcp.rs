//! A `std::net`-only TCP front end over [`RmsService`], speaking the
//! [line protocol](crate::protocol).

use crate::protocol::{parse_request, Request};
use crate::service::{RmsHandle, RmsService};
use crate::snapshot::ResultSnapshot;
use fdrms::FdRms;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A TCP server wrapping a running [`RmsService`]: one thread per
/// connection, all of them feeding the single ingestion queue and
/// reading the shared snapshot cell.
#[derive(Debug)]
pub struct RmsServer {
    listener: TcpListener,
    service: RmsService,
}

impl RmsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port — see [`RmsServer::local_addr`]) around a started service.
    pub fn bind(addr: impl ToSocketAddrs, service: RmsService) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the ingestion queue gracefully and returns the final engine state.
    /// Connections still open at shutdown see `ERR service has shut
    /// down` for further mutations.
    pub fn run(self) -> std::io::Result<FdRms> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let dim = self.service.dim();
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient (ECONNABORTED) and persistent (EMFILE)
                    // accept failures alike: back off instead of spinning
                    // the accept loop at 100% CPU — but re-check the
                    // shutdown flag first, since the failed accept may
                    // have been the SHUTDOWN handler's nudge connection.
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            let handle = self.service.handle();
            let flag = Arc::clone(&shutdown);
            // Connection threads are detached: they die with the process
            // (CLI) or when their client hangs up (tests), and after
            // shutdown every submit they attempt fails cleanly.
            let _ = std::thread::Builder::new()
                .name("rms-conn".into())
                .spawn(move || handle_connection(stream, handle, dim, flag, addr));
        }
        Ok(self.service.shutdown())
    }
}

fn handle_connection(
    stream: TcpStream,
    handle: RmsHandle,
    dim: usize,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line, dim) {
            Err(msg) => format!("ERR {msg}"),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                let _ = writeln!(writer, "OK shutting down");
                // Nudge the accept loop so it observes the flag. A
                // wildcard bind reports the unspecified address, which
                // is not connectable everywhere — nudge via loopback.
                let mut nudge = addr;
                if nudge.ip().is_unspecified() {
                    nudge.set_ip(match nudge {
                        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(nudge);
                return;
            }
            // `submit` blocks on a full queue (backpressure propagates to
            // the client as a delayed reply); the only error it returns
            // is a shut-down service.
            Ok(Request::Submit(op)) => match handle.submit(op) {
                Ok(()) => "OK queued".to_string(),
                Err(e) => format!("ERR {e}"),
            },
            Ok(Request::Query) => format_query(&handle.snapshot()),
            Ok(Request::Stats) => format_stats(&handle.snapshot(), handle.queue_depth()),
        };
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
    }
}

fn format_query(snap: &ResultSnapshot) -> String {
    let ids: Vec<String> = snap.result.iter().map(|p| p.id().to_string()).collect();
    format!(
        "OK epoch={} n={} r={} ids={}",
        snap.epoch,
        snap.len,
        snap.result.len(),
        ids.join(",")
    )
}

fn format_stats(snap: &ResultSnapshot, queue_depth: usize) -> String {
    let s = &snap.stats;
    let mut out = format!(
        "OK epoch={} n={} m={} r={} queue_depth={} batches={} ops_applied={} \
         ops_rejected={} last_batch={} max_coalesced={} avg_apply_ms={:.4} last_apply_ms={:.4}",
        snap.epoch,
        snap.len,
        snap.m,
        snap.result.len(),
        queue_depth,
        s.batches,
        s.ops_applied,
        s.ops_rejected,
        s.last_batch_ops,
        s.max_coalesced,
        s.avg_apply_ms(),
        s.last_apply_ms,
    );
    if let Some(mrr) = snap.mrr {
        out.push_str(&format!(" mrr={mrr:.5}"));
    }
    out
}
