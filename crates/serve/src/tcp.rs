//! A `std::net`-only TCP front end over [`RmsService`] or
//! [`ShardedRmsService`], speaking the [line protocol](crate::protocol).

use crate::protocol::{parse_request, Request};
use crate::service::{RmsHandle, RmsService, SubmitError};
use crate::sharded::{AggregateSnapshot, ShardedHandle, ShardedRmsService};
use crate::snapshot::{ResultSnapshot, ServiceStats};
use fdrms::{FdRms, Op};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The service behind the listener: one engine or an id-partitioned
/// shard group, behind the same protocol surface.
#[derive(Debug)]
enum Backend {
    Single(RmsService),
    Sharded(ShardedRmsService),
}

/// A per-connection client of the backend.
#[derive(Clone)]
enum ConnHandle {
    Single(RmsHandle),
    Sharded(ShardedHandle),
}

impl ConnHandle {
    fn submit(&self, op: Op) -> Result<(), SubmitError> {
        match self {
            ConnHandle::Single(h) => h.submit(op),
            ConnHandle::Sharded(h) => h.submit(op),
        }
    }

    fn query_reply(&self) -> String {
        match self {
            ConnHandle::Single(h) => format_query(&h.snapshot()),
            ConnHandle::Sharded(h) => format_query_sharded(&h.snapshot()),
        }
    }

    fn stats_reply(&self) -> String {
        match self {
            ConnHandle::Single(h) => format_stats(&h.snapshot(), h.queue_depth()),
            ConnHandle::Sharded(h) => format_stats_sharded(&h.snapshot(), h.queue_depth()),
        }
    }
}

/// A TCP server wrapping a running service: one thread per connection,
/// all of them feeding the ingestion queue(s) and reading the shared
/// snapshot state.
#[derive(Debug)]
pub struct RmsServer {
    listener: TcpListener,
    backend: Backend,
}

impl RmsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port — see [`RmsServer::local_addr`]) around a started service.
    pub fn bind(addr: impl ToSocketAddrs, service: RmsService) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            backend: Backend::Single(service),
        })
    }

    /// [`RmsServer::bind`] around an id-partitioned shard group. The
    /// protocol is identical; `QUERY`/`STATS` report per-shard epochs
    /// (`epochs=e0,e1,…`) and the merged solution.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        service: ShardedRmsService,
    ) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            backend: Backend::Sharded(service),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the ingestion queue(s) gracefully and returns the final engine
    /// state — one engine for a single-service backend, one per shard
    /// for a sharded backend. Connections still open at shutdown see
    /// `ERR service has shut down` for further mutations.
    pub fn run(self) -> std::io::Result<Vec<FdRms>> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (dim, conn) = match &self.backend {
            Backend::Single(s) => (s.dim(), ConnHandle::Single(s.handle())),
            Backend::Sharded(s) => (s.dim(), ConnHandle::Sharded(s.handle())),
        };
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => {
                    // Transient (ECONNABORTED) and persistent (EMFILE)
                    // accept failures alike: back off instead of spinning
                    // the accept loop at 100% CPU — but re-check the
                    // shutdown flag first, since the failed accept may
                    // have been the SHUTDOWN handler's nudge connection.
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    continue;
                }
            };
            let handle = conn.clone();
            let flag = Arc::clone(&shutdown);
            // Connection threads are detached: they die with the process
            // (CLI) or when their client hangs up (tests), and after
            // shutdown every submit they attempt fails cleanly.
            let _ = std::thread::Builder::new()
                .name("rms-conn".into())
                .spawn(move || handle_connection(stream, handle, dim, flag, addr));
        }
        Ok(match self.backend {
            Backend::Single(s) => vec![s.shutdown()],
            Backend::Sharded(s) => s.shutdown(),
        })
    }
}

fn handle_connection(
    stream: TcpStream,
    handle: ConnHandle,
    dim: usize,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line, dim) {
            Err(msg) => format!("ERR {msg}"),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                let _ = writeln!(writer, "OK shutting down");
                // Nudge the accept loop so it observes the flag. A
                // wildcard bind reports the unspecified address, which
                // is not connectable everywhere — nudge via loopback.
                let mut nudge = addr;
                if nudge.ip().is_unspecified() {
                    nudge.set_ip(match nudge {
                        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(nudge);
                return;
            }
            // `submit` blocks on a full queue (backpressure propagates to
            // the client as a delayed reply); the only error it returns
            // is a shut-down service.
            Ok(Request::Submit(op)) => match handle.submit(op) {
                Ok(()) => "OK queued".to_string(),
                Err(e) => format!("ERR {e}"),
            },
            Ok(Request::Query) => handle.query_reply(),
            Ok(Request::Stats) => handle.stats_reply(),
        };
        if writeln!(writer, "{reply}").is_err() {
            break;
        }
    }
}

fn format_query(snap: &ResultSnapshot) -> String {
    format!(
        "OK epoch={} n={} r={} ids={}",
        snap.epoch,
        snap.len,
        snap.result.len(),
        join_ids(&snap.result),
    )
}

fn format_query_sharded(snap: &AggregateSnapshot) -> String {
    format!(
        "OK epochs={} n={} r={} ids={}",
        join_u64(&snap.epochs),
        snap.len,
        snap.result.len(),
        join_ids(&snap.result),
    )
}

fn format_stats(snap: &ResultSnapshot, queue_depth: usize) -> String {
    let mut out = format!("OK epoch={}", snap.epoch);
    push_stats_fields(
        &mut out,
        &snap.stats,
        snap.len,
        snap.m,
        snap.result.len(),
        queue_depth,
        snap.mrr,
    );
    out
}

fn format_stats_sharded(snap: &AggregateSnapshot, queue_depth: usize) -> String {
    let mut out = format!(
        "OK epochs={} shards={}",
        join_u64(&snap.epochs),
        snap.epochs.len()
    );
    push_stats_fields(
        &mut out,
        &snap.stats,
        snap.len,
        snap.m,
        snap.result.len(),
        queue_depth,
        snap.mrr,
    );
    out
}

fn push_stats_fields(
    out: &mut String,
    s: &ServiceStats,
    n: usize,
    m: usize,
    r: usize,
    queue_depth: usize,
    mrr: Option<f64>,
) {
    out.push_str(&format!(
        " n={n} m={m} r={r} queue_depth={queue_depth} batches={} replayed_batches={} \
         ops_applied={} ops_rejected={} wal_recovered={} last_batch={} max_coalesced={} \
         avg_apply_ms={:.4} last_apply_ms={:.4}",
        s.batches,
        s.replayed_batches,
        s.ops_applied,
        s.ops_rejected,
        s.wal_recovered_ops,
        s.last_batch_ops,
        s.max_coalesced,
        s.avg_apply_ms(),
        s.last_apply_ms,
    ));
    if let Some(mrr) = mrr {
        out.push_str(&format!(" mrr={mrr:.5}"));
    }
}

fn join_ids(points: &[rms_geom::Point]) -> String {
    points
        .iter()
        .map(|p| p.id().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}
