//! A `std::net`-only TCP front end over any [`RmsBackend`] — the single
//! [`RmsService`](crate::RmsService) and the sharded
//! [`ShardedRmsService`](crate::ShardedRmsService) behind one generic
//! code path — speaking the [line protocol](crate::protocol), v1 and v2.
//!
//! Connections are served by a small group of [`rms_net`] reactor
//! threads (default one; see [`RmsServer::with_net_threads`]) instead
//! of a thread per connection: reactor 0 owns the listener and deals
//! accepted sockets round-robin across the group through each
//! reactor's command injector. Protocol logic lives in
//! [`net`](crate::net); this module is the *orchestration* layer — the
//! pieces that legitimately block (the delta pump's channel receive,
//! backend shutdown, thread joins) and therefore stay off the reactor
//! threads.
//!
//! The pump thread is where the encode-once fan-out contract is
//! enforced: each [`SnapshotDelta`](crate::SnapshotDelta) from the
//! backend's watch stream is rendered to its wire line exactly once,
//! wrapped in an `Arc<[u8]>`, and injected into every reactor, which
//! fan it out to unfiltered subscribers by reference.

use crate::backend::{RmsBackend, RmsBackendHandle};
use crate::net::{
    encode_delta_line, Mirror, NetCmd, NetHandler, ServeNetMetrics, ServerInfo, TcpMetrics,
};
use fdrms::FdRms;
use rms_net::{Injector, Reactor, ReactorConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A TCP server wrapping a running backend: a group of reactor threads
/// multiplexing every connection, all feeding the ingestion queue(s)
/// and reading the shared snapshot state through the backend's
/// cloneable handle.
#[derive(Debug)]
pub struct RmsServer<B: RmsBackend> {
    listener: TcpListener,
    backend: B,
    net_threads: usize,
    write_queue_cap: usize,
    evict_linger: Duration,
    send_buffer: Option<usize>,
}

impl<B: RmsBackend> RmsServer<B> {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port — see [`RmsServer::local_addr`]) around a started backend:
    /// a single service or a shard group, behind the same protocol
    /// surface (a sharded backend reports `epochs=e0,e1,…` instead of
    /// `epoch=E` in `QUERY`/`STATS` and in pushed `DELTA` lines).
    pub fn bind(addr: impl ToSocketAddrs, backend: B) -> io::Result<Self> {
        let defaults = ReactorConfig::default();
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            backend,
            net_threads: 1,
            write_queue_cap: defaults.write_queue_cap,
            evict_linger: defaults.evict_linger,
            send_buffer: None,
        })
    }

    /// Number of reactor threads serving connections (min 1). Reactor 0
    /// owns the listener and hands accepted sockets round-robin to the
    /// group.
    #[must_use]
    pub fn with_net_threads(mut self, n: usize) -> Self {
        self.net_threads = n.max(1);
        self
    }

    /// Per-connection cap on queued unwritten bytes; a subscriber that
    /// falls further behind is evicted with a final `ERR` line.
    #[must_use]
    pub fn with_write_queue_cap(mut self, bytes: usize) -> Self {
        self.write_queue_cap = bytes.max(1);
        self
    }

    /// How long an evicted or closing connection may linger while its
    /// final bytes flush.
    #[must_use]
    pub fn with_evict_linger(mut self, linger: Duration) -> Self {
        self.evict_linger = linger;
        self
    }

    /// `SO_SNDBUF` applied to every accepted socket (tests shrink it to
    /// exercise backpressure without megabytes of traffic).
    #[must_use]
    pub fn with_send_buffer(mut self, bytes: usize) -> Self {
        self.send_buffer = Some(bytes);
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client issues `SHUTDOWN`, then drains
    /// the ingestion queue(s) gracefully and returns the final engine
    /// state, indexed by shard (one engine for a single-service
    /// backend). Connections still open at shutdown see their pending
    /// replies flushed, open `SUBSCRIBE` streams end after a final
    /// coalesced flush, and the reactors exit once every socket drains.
    pub fn run(self) -> io::Result<Vec<FdRms>> {
        let RmsServer {
            listener,
            backend,
            net_threads,
            write_queue_cap,
            evict_linger,
            send_buffer,
        } = self;

        let info = ServerInfo {
            dim: backend.dim(),
            k: backend.k(),
            r: backend.r(),
            shards: backend.shards(),
        };
        let registry = Arc::clone(backend.registry());
        let metrics = TcpMetrics::register(&registry);
        let net_metrics = ServeNetMetrics::register(&registry);
        let handle = backend.handle();
        let rx = handle.watch();
        let sharded = rx.base().is_merged();
        let mirror = Mirror::from_view(rx.base());

        let cfg = ReactorConfig {
            write_queue_cap,
            evict_linger,
            send_buffer,
            ..ReactorConfig::default()
        };
        let mut reactors: Vec<Reactor<NetCmd>> = Vec::with_capacity(net_threads);
        for _ in 0..net_threads {
            reactors.push(Reactor::new(cfg.clone(), &registry)?);
        }
        reactors[0].set_listener(listener)?;
        let injectors: Vec<Injector<NetCmd>> = reactors.iter().map(Reactor::injector).collect();

        // The SHUTDOWN handshake: every reactor handler holds a sender;
        // recv() returns Ok on the first SHUTDOWN verb, or Err if every
        // reactor thread dies without one (so a crashed loop still
        // unblocks the orchestrator instead of hanging it).
        let (shutdown_tx, shutdown_rx) = mpsc::channel::<()>();

        let mut threads = Vec::with_capacity(net_threads);
        for (i, reactor) in reactors.into_iter().enumerate() {
            let handler = NetHandler::new(
                handle.clone(),
                info,
                metrics.clone(),
                net_metrics.clone(),
                mirror.clone(),
                injectors.clone(),
                i,
                shutdown_tx.clone(),
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rms-net-{i}"))
                    .spawn(move || reactor.run(handler))?,
            );
        }
        drop(shutdown_tx);

        // The delta pump: the one consumer of the backend's watch
        // stream. Encodes each published delta exactly once and fans
        // the shared buffer out to every reactor; reactors slice it
        // per-filter from the parsed form riding alongside.
        let pump_injectors = injectors;
        let pump_metrics = net_metrics;
        let pump = std::thread::Builder::new()
            .name("rms-net-pump".to_owned())
            .spawn(move || loop {
                match rx.recv() {
                    Ok(delta) => {
                        pump_metrics.encodes_unfiltered.inc();
                        let line = encode_delta_line(&delta, sharded, None);
                        let delta = Arc::new(delta);
                        for injector in &pump_injectors {
                            injector.inject(NetCmd::Publish {
                                delta: Arc::clone(&delta),
                                line: Arc::clone(&line),
                            });
                        }
                    }
                    Err(_) => {
                        // Publisher gone: the backend shut down. Tell the
                        // reactors to flush pending subscriptions and drain.
                        for injector in &pump_injectors {
                            injector.inject(NetCmd::StreamEnd);
                        }
                        return;
                    }
                }
            })?;

        // Park until a SHUTDOWN verb arrives (Ok) or every reactor died
        // (Err — all senders dropped).
        let _ = shutdown_rx.recv();

        // Stop the backend first: its watch senders drop, the pump sees
        // the closed channel and broadcasts StreamEnd, and the reactors
        // drain and exit.
        let engines = backend.shutdown();
        // rms-analyze: allow(unwrap-nontest, "a Err from join means the worker panicked and already tore the serving invariants; re-raising that panic at shutdown is the only honest report")
        pump.join().expect("delta pump panicked");
        let mut first_err = None;
        for t in threads {
            // rms-analyze: allow(unwrap-nontest, "a Err from join means the worker panicked and already tore the serving invariants; re-raising that panic at shutdown is the only honest report")
            match t.join().expect("reactor thread panicked") {
                Ok(()) => {}
                Err(e) if first_err.is_none() => first_err = Some(e),
                Err(_) => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(engines),
        }
    }
}
