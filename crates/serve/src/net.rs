//! The reactor-side half of the TCP front end: per-connection protocol
//! state machines driven by an [`rms_net::Reactor`], with encode-once
//! delta fan-out and server-side filtered subscriptions.
//!
//! This module is the *event-loop dispatch path*: every function here
//! runs on a reactor thread inside a handler callback and must never
//! block (enforced by `rms-analyze`'s `reactor-no-block` rule).
//! Orchestration that legitimately blocks — thread joins, the applier
//! pump's channel receive, backend shutdown — lives in
//! [`tcp`](crate::tcp).
//!
//! # Fan-out shape
//!
//! The pump thread encodes each published [`SnapshotDelta`] **once**
//! into a shared `Arc<[u8]>` line and injects it into every reactor.
//! Unfiltered `every=1` subscribers receive that buffer by reference —
//! per-subscriber cost is an `Arc` clone plus a write-queue append,
//! independent of the delta's size. Filtered subscribers share one
//! encode per *distinct filter* per publish (cached per reactor);
//! coalescing subscribers (`every=K`) are the only truly per-subscriber
//! encode path, and only on their flush beat.

use crate::backend::{BackendView, RmsBackendHandle};
use crate::protocol::{parse_request, Request, MAX_BATCH_LINES, PROTOCOL_VERSION};
use crate::service::SubmitError;
use crate::snapshot::SnapshotDelta;
use fdrms::Op;
use rms_geom::{Point, PointId};
use rms_metrics::{Counter, Gauge, Histogram, Registry};
use rms_net::{Ctx, Handler, Injector, Token};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long an idle `SUBSCRIBE` stream waits before flushing a pending
/// coalesced delta that has not yet spanned `every` epochs. One timer
/// on the reactor's wheel covers every subscriber (the pre-reactor
/// implementation woke a thread per subscriber on this period).
pub(crate) const SUBSCRIBE_IDLE_FLUSH: Duration = Duration::from_millis(200);

/// Retry beat for submits parked on ingestion backpressure.
const PARK_RETRY: Duration = Duration::from_millis(5);

/// A coalescing subscriber's accumulator, ready to encode: connection,
/// merged delta, optional id-range filter.
type PendingFlush = (Token, SnapshotDelta, Option<(PointId, PointId)>);

/// Label values for the per-verb request families. The last entry,
/// `invalid`, buckets lines whose leading token is no verb at all;
/// recognizable-but-malformed requests count under their verb.
const VERBS: [&str; 11] = [
    "insert",
    "delete",
    "update",
    "query",
    "stats",
    "shutdown",
    "hello",
    "batch",
    "subscribe",
    "metrics",
    "invalid",
];

/// Maps a raw request line to its [`VERBS`] slot.
fn verb_index(line: &str) -> usize {
    line.split_whitespace()
        .next()
        .and_then(|verb| VERBS.iter().position(|v| verb.eq_ignore_ascii_case(v)))
        .unwrap_or(VERBS.len() - 1)
}

/// Front-end instruments, registered once at [`RmsServer::run`]
/// (crate::RmsServer::run) into the backend's registry and cloned into
/// every reactor handler.
#[derive(Debug, Clone)]
pub(crate) struct TcpMetrics {
    /// The backend registry, kept for the `METRICS` verb's exposition.
    pub(crate) registry: Arc<Registry>,
    /// `rms_tcp_connections_total`.
    pub(crate) connections: Counter,
    /// `rms_tcp_subscribers` — connections currently in push mode.
    pub(crate) subscribers: Gauge,
    /// `rms_tcp_delta_bytes_total` — pushed `DELTA` line bytes.
    pub(crate) delta_bytes: Counter,
    /// Per-verb `rms_tcp_requests_total` / `rms_tcp_request_seconds`,
    /// indexed like [`VERBS`].
    requests: Vec<(Counter, Histogram)>,
}

impl TcpMetrics {
    pub(crate) fn register(registry: &Arc<Registry>) -> Self {
        let requests = VERBS
            .iter()
            .map(|verb| {
                (
                    registry.register_counter(
                        "rms_tcp_requests_total",
                        "Requests handled, by verb (`invalid` buckets unrecognized lines).",
                        &[("verb", verb)],
                    ),
                    registry.register_histogram(
                        "rms_tcp_request_seconds",
                        "Request handling latency, by verb: parse through reply-ready \
                         (includes submit backpressure and BATCH body reads).",
                        &[("verb", verb)],
                    ),
                )
            })
            .collect();
        TcpMetrics {
            registry: Arc::clone(registry),
            connections: registry.register_counter(
                "rms_tcp_connections_total",
                "Connections accepted by the TCP front end.",
                &[],
            ),
            subscribers: registry.register_gauge(
                "rms_tcp_subscribers",
                "Connections currently streaming deltas in push mode.",
                &[],
            ),
            delta_bytes: registry.register_counter(
                "rms_tcp_delta_bytes_total",
                "Bytes of DELTA lines pushed to subscribers.",
                &[],
            ),
            requests,
        }
    }
}

/// Fan-out instruments for the evented subscription path. The
/// `kind` label partitions delta encodes: `unfiltered` counts exactly
/// one per publish (the shared buffer), `filtered` one per distinct
/// id-range filter per publish per reactor, `coalesced` one per
/// `every>1` subscriber flush.
#[derive(Debug, Clone)]
pub(crate) struct ServeNetMetrics {
    /// `rms_net_fanout_seconds` — per-publish fan-out latency within
    /// one reactor (mirror apply through last write-queue append).
    pub(crate) fanout_seconds: Histogram,
    /// `rms_net_delta_encodes_total{kind="unfiltered"}`.
    pub(crate) encodes_unfiltered: Counter,
    /// `rms_net_delta_encodes_total{kind="filtered"}`.
    pub(crate) encodes_filtered: Counter,
    /// `rms_net_delta_encodes_total{kind="coalesced"}`.
    pub(crate) encodes_coalesced: Counter,
}

impl ServeNetMetrics {
    pub(crate) fn register(registry: &Arc<Registry>) -> Self {
        let encode = |kind: &str| {
            registry.register_counter(
                "rms_net_delta_encodes_total",
                "DELTA wire encodes, by kind: `unfiltered` is once per publish \
                 (the shared fan-out buffer), `filtered` once per distinct id \
                 filter per publish per reactor, `coalesced` once per every>1 \
                 subscriber flush.",
                &[("kind", kind)],
            )
        };
        ServeNetMetrics {
            fanout_seconds: registry.register_histogram(
                "rms_net_fanout_seconds",
                "Per-publish fan-out latency within one reactor: mirror apply \
                 through the last subscriber write-queue append.",
                &[],
            ),
            encodes_unfiltered: encode("unfiltered"),
            encodes_filtered: encode("filtered"),
            encodes_coalesced: encode("coalesced"),
        }
    }
}

/// Static backend parameters every connection needs (for `HELLO`
/// replies and op parsing), captured once at bind time.
#[derive(Clone, Copy)]
pub(crate) struct ServerInfo {
    pub(crate) dim: usize,
    pub(crate) k: usize,
    pub(crate) r: usize,
    pub(crate) shards: usize,
}

/// Commands injected into a reactor by its peers: socket handoffs from
/// the accepting reactor, encoded publishes from the pump thread, and
/// the end-of-stream marker that begins the drain.
pub(crate) enum NetCmd {
    /// Adopt a freshly accepted socket (handoff ring).
    Adopt(TcpStream),
    /// One published delta: the parsed form (for mirrors, filters, and
    /// coalescing) plus the shared encode-once wire line (with
    /// newline).
    Publish {
        delta: Arc<SnapshotDelta>,
        line: Arc<[u8]>,
    },
    /// The backend shut down; flush pending subscriptions and drain.
    StreamEnd,
}

/// The handler's replica of the published solution, advanced by every
/// [`NetCmd::Publish`]. `SUBSCRIBE` acks read from this mirror — not
/// from a fresh backend snapshot — so the ack and the deltas that
/// follow it are gap-free by construction: the ack reflects exactly
/// the publishes this reactor has already fanned out.
#[derive(Debug, Clone)]
pub(crate) struct Mirror {
    version: u64,
    epochs: Vec<u64>,
    len: usize,
    ids: BTreeSet<PointId>,
    sharded: bool,
}

impl Mirror {
    pub(crate) fn from_view(view: &BackendView) -> Self {
        Mirror {
            version: view.version(),
            epochs: view.epochs(),
            len: view.len(),
            ids: view.result_ids().into_iter().collect(),
            sharded: view.is_merged(),
        }
    }

    fn apply(&mut self, delta: &SnapshotDelta) {
        for id in &delta.removed {
            self.ids.remove(id);
        }
        for p in &delta.added {
            self.ids.insert(p.id());
        }
        self.version = delta.version;
        self.epochs.clone_from(&delta.epochs);
        self.len = delta.len;
    }
}

/// In-flight `BATCH` framing: the header has been accepted and the
/// next `expected` lines are op lines.
struct BatchState {
    expected: usize,
    received: usize,
    ops: Vec<Op>,
    bad: Option<(usize, String)>,
    started: Instant,
}

/// Push-mode subscription state.
struct SubState {
    every: u64,
    filter: Option<(PointId, PointId)>,
    /// Coalescing accumulator for `every > 1`.
    pending: Option<SnapshotDelta>,
}

/// Ops accepted from the wire but not yet in the ingestion queue:
/// `try_submit` reported backpressure, reads are paused, and the
/// reactor retries on the [`PARK_RETRY`] beat. The reply (and the
/// request metrics) are deferred until the last op lands, so latency
/// histograms still include backpressure time, exactly like the old
/// blocking `submit` did.
struct Parked {
    ops: VecDeque<Op>,
    submitted: usize,
    total: usize,
    batch: bool,
    started: Instant,
    verb_idx: usize,
}

/// Per-connection protocol state.
#[derive(Default)]
struct ConnState {
    /// Negotiated protocol version; starts at v1, `HELLO v2` upgrades.
    version: u32,
    batch: Option<BatchState>,
    sub: Option<SubState>,
    parked: Option<Parked>,
}

impl ConnState {
    fn new() -> Self {
        ConnState {
            version: 1,
            ..ConnState::default()
        }
    }
}

/// The per-reactor protocol handler: owns connection states, a solution
/// [`Mirror`], and the injectors of every peer reactor (for the accept
/// handoff ring).
pub(crate) struct NetHandler<H: RmsBackendHandle> {
    handle: H,
    info: ServerInfo,
    metrics: TcpMetrics,
    net: ServeNetMetrics,
    mirror: Mirror,
    conns: HashMap<usize, ConnState>,
    injectors: Vec<Injector<NetCmd>>,
    my_index: usize,
    rr: usize,
    shutdown_tx: Sender<()>,
    flush_armed: bool,
    park_armed: bool,
}

impl<H: RmsBackendHandle> NetHandler<H> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        handle: H,
        info: ServerInfo,
        metrics: TcpMetrics,
        net: ServeNetMetrics,
        mirror: Mirror,
        injectors: Vec<Injector<NetCmd>>,
        my_index: usize,
        shutdown_tx: Sender<()>,
    ) -> Self {
        NetHandler {
            handle,
            info,
            metrics,
            net,
            mirror,
            conns: HashMap::new(),
            injectors,
            my_index,
            rr: 0,
            shutdown_tx,
            flush_armed: false,
            park_armed: false,
        }
    }

    fn adopt_local(&mut self, stream: TcpStream, ctx: &mut Ctx<'_>) {
        let _ = stream.set_nodelay(true);
        if let Ok(token) = ctx.adopt(stream) {
            self.metrics.connections.inc();
            self.conns.insert(token.0, ConnState::new());
        }
    }

    /// Counts a completed request and pushes its reply line.
    fn reply(
        &mut self,
        token: Token,
        verb_idx: usize,
        started: Instant,
        text: &str,
        ctx: &mut Ctx<'_>,
    ) {
        let (requests_total, request_seconds) = &self.metrics.requests[verb_idx];
        requests_total.inc();
        request_seconds.record(started.elapsed());
        ctx.push_line(token, text);
    }

    /// Counts a request whose reply closes the connection (protocol
    /// violations that cannot preserve framing).
    fn fatal(
        &mut self,
        token: Token,
        verb_idx: usize,
        started: Instant,
        text: &str,
        ctx: &mut Ctx<'_>,
    ) {
        self.reply(token, verb_idx, started, text, ctx);
        ctx.close(token);
    }

    fn arm_park_retry(&mut self, ctx: &mut Ctx<'_>) {
        if !self.park_armed {
            ctx.set_timer(Instant::now() + PARK_RETRY);
            self.park_armed = true;
        }
    }

    /// Submits `ops` via the non-blocking path; on backpressure parks
    /// the remainder (pausing reads) instead of stalling the reactor.
    fn submit_parked(&mut self, token: Token, mut parked: Parked, ctx: &mut Ctx<'_>) {
        loop {
            let Some(op) = parked.ops.pop_front() else {
                let text = if parked.batch {
                    format!("OK queued n={}", parked.total)
                } else {
                    "OK queued".to_string()
                };
                let (verb_idx, started) = (parked.verb_idx, parked.started);
                self.reply(token, verb_idx, started, &text, ctx);
                ctx.resume_read(token);
                return;
            };
            match self.handle.try_submit(op) {
                Ok(()) => parked.submitted += 1,
                Err(SubmitError::Full(op)) => {
                    parked.ops.push_front(op);
                    ctx.pause_read(token);
                    if let Some(state) = self.conns.get_mut(&token.0) {
                        state.parked = Some(parked);
                    }
                    self.arm_park_retry(ctx);
                    return;
                }
                Err(e @ SubmitError::Disconnected(_)) => {
                    let text = if parked.batch {
                        format!("ERR {e} ({} of {} queued)", parked.submitted, parked.total)
                    } else {
                        format!("ERR {e}")
                    };
                    let (verb_idx, started) = (parked.verb_idx, parked.started);
                    self.reply(token, verb_idx, started, &text, ctx);
                    ctx.resume_read(token);
                    return;
                }
            }
        }
    }

    /// Consumes one op line of an in-flight `BATCH` body; submits and
    /// acknowledges once the announced count has arrived.
    fn on_batch_line(&mut self, token: Token, line: &str, ctx: &mut Ctx<'_>) {
        let Some(state) = self.conns.get_mut(&token.0) else {
            return;
        };
        let Some(batch) = state.batch.as_mut() else {
            return;
        };
        batch.received += 1;
        if batch.bad.is_none() {
            match parse_request(line, self.info.dim) {
                Ok(Request::Submit(op)) => batch.ops.push(op),
                Ok(_) => {
                    batch.bad = Some((
                        batch.received,
                        "only INSERT/DELETE/UPDATE allowed in a batch".into(),
                    ));
                }
                Err(msg) => batch.bad = Some((batch.received, msg)),
            }
        }
        if batch.received < batch.expected {
            return;
        }
        let Some(batch) = state.batch.take() else {
            return;
        };
        let verb_idx = verb_index("BATCH");
        if let Some((i, msg)) = batch.bad {
            self.reply(
                token,
                verb_idx,
                batch.started,
                &format!("ERR line {i}: {msg} (batch dropped)"),
                ctx,
            );
            return;
        }
        let parked = Parked {
            total: batch.ops.len(),
            ops: batch.ops.into(),
            submitted: 0,
            batch: true,
            started: batch.started,
            verb_idx,
        };
        self.submit_parked(token, parked, ctx);
    }

    /// `SUBSCRIBE`: acknowledge from the mirror and switch the
    /// connection to push mode. Reads are paused — a push-mode
    /// connection serves no further verbs (same contract as the old
    /// thread-per-connection server, where the subscription loop never
    /// read again).
    fn do_subscribe(
        &mut self,
        token: Token,
        verb_idx: usize,
        started: Instant,
        every: u64,
        filter: Option<(PointId, PointId)>,
        ctx: &mut Ctx<'_>,
    ) {
        let ids = match filter {
            None => join_iter(self.mirror.ids.iter()),
            Some((lo, hi)) => join_iter(self.mirror.ids.range(lo..=hi)),
        };
        let filter_field = match filter {
            None => String::new(),
            Some((lo, hi)) => format!(" filter={lo}..{hi}"),
        };
        let ack = format!(
            "OK subscribed every={every}{filter_field} {} n={} ids={ids}",
            version_fields(self.mirror.sharded, &self.mirror.epochs),
            self.mirror.len,
        );
        if let Some(state) = self.conns.get_mut(&token.0) {
            state.sub = Some(SubState {
                every,
                filter,
                pending: None,
            });
        }
        self.metrics.subscribers.inc();
        ctx.pause_read(token);
        self.reply(token, verb_idx, started, &ack, ctx);
    }

    /// Fans one publish out to this reactor's subscribers.
    fn handle_publish(&mut self, delta: &Arc<SnapshotDelta>, line: &Arc<[u8]>, ctx: &mut Ctx<'_>) {
        if delta.version <= self.mirror.version {
            // Published before this reactor's mirror was captured; every
            // subscriber's ack already covers it.
            return;
        }
        let started = Instant::now();
        self.mirror.apply(delta);
        let sharded = self.mirror.sharded;

        // Pass 1 (handler state only): route each subscriber — direct
        // push, coalesce-and-hold, or coalesce-and-flush.
        let mut direct: Vec<(Token, Option<(PointId, PointId)>)> = Vec::new();
        let mut flush: Vec<PendingFlush> = Vec::new();
        let mut held_pending = false;
        for (&token, state) in &mut self.conns {
            let Some(sub) = state.sub.as_mut() else {
                continue;
            };
            if sub.every <= 1 {
                direct.push((Token(token), sub.filter));
                continue;
            }
            let merged = match sub.pending.take() {
                None => (**delta).clone(),
                Some(mut acc) => {
                    acc.merge(delta);
                    acc
                }
            };
            if merged.version - merged.from_version >= sub.every {
                flush.push((Token(token), merged, sub.filter));
            } else {
                sub.pending = Some(merged);
                held_pending = true;
            }
        }

        // Pass 2 (reactor pushes): the shared buffer for unfiltered
        // subscribers, one cached encode per distinct filter.
        let mut filtered_cache: HashMap<(PointId, PointId), Arc<[u8]>> = HashMap::new();
        for (token, filter) in direct {
            let segment = match filter {
                None => Arc::clone(line),
                Some(f) => Arc::clone(filtered_cache.entry(f).or_insert_with(|| {
                    self.net.encodes_filtered.inc();
                    encode_delta_line(delta, sharded, Some(f))
                })),
            };
            if ctx.push(token, &segment) {
                self.metrics.delta_bytes.add(segment.len() as u64);
            }
        }
        for (token, merged, filter) in flush {
            self.net.encodes_coalesced.inc();
            let segment = encode_delta_line(&merged, sharded, filter);
            if ctx.push(token, &segment) {
                self.metrics.delta_bytes.add(segment.len() as u64);
            }
        }

        if held_pending && !self.flush_armed {
            ctx.set_timer(started + SUBSCRIBE_IDLE_FLUSH);
            self.flush_armed = true;
        }
        self.net.fanout_seconds.record(started.elapsed());
    }

    /// Flushes every held coalescing accumulator (idle beat or stream
    /// end).
    fn flush_pending_subs(&mut self, ctx: &mut Ctx<'_>) {
        let sharded = self.mirror.sharded;
        let mut flush: Vec<PendingFlush> = Vec::new();
        for (&token, state) in &mut self.conns {
            if let Some(sub) = state.sub.as_mut() {
                if let Some(pending) = sub.pending.take() {
                    flush.push((Token(token), pending, sub.filter));
                }
            }
        }
        for (token, pending, filter) in flush {
            self.net.encodes_coalesced.inc();
            let segment = encode_delta_line(&pending, sharded, filter);
            if ctx.push(token, &segment) {
                self.metrics.delta_bytes.add(segment.len() as u64);
            }
        }
    }

    /// Retries every parked submit; re-arms the beat if any remain.
    fn retry_parked(&mut self, ctx: &mut Ctx<'_>) {
        self.park_armed = false;
        let tokens: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, s)| s.parked.is_some())
            .map(|(&t, _)| t)
            .collect();
        for token in tokens {
            let Some(parked) = self.conns.get_mut(&token).and_then(|s| s.parked.take()) else {
                continue;
            };
            self.submit_parked(Token(token), parked, ctx);
        }
    }
}

impl<H: RmsBackendHandle> Handler for NetHandler<H> {
    type Cmd = NetCmd;

    fn on_accept(&mut self, stream: TcpStream, ctx: &mut Ctx<'_>) {
        let n = self.injectors.len();
        if n <= 1 {
            self.adopt_local(stream, ctx);
            return;
        }
        let target = self.rr % n;
        self.rr = self.rr.wrapping_add(1);
        if target == self.my_index {
            self.adopt_local(stream, ctx);
        } else {
            self.injectors[target].inject(NetCmd::Adopt(stream));
        }
    }

    fn on_line(&mut self, token: Token, line: &str, ctx: &mut Ctx<'_>) {
        let Some(state) = self.conns.get_mut(&token.0) else {
            return;
        };
        if state.batch.is_some() {
            self.on_batch_line(token, line, ctx);
            return;
        }
        if line.trim().is_empty() {
            return;
        }
        let version = state.version;
        let started = Instant::now();
        let verb_idx = verb_index(line);
        match parse_request(line, self.info.dim) {
            // In a v2 session a BATCH header is *framing*: if it cannot
            // be parsed (e.g. a count that overflows), the announced op
            // lines cannot be consumed, and replying ERR while keeping
            // the connection would reinterpret them as requests. Closing
            // is the only framing-safe refusal. (In a v1 session there
            // is no batch framing — every line gets its own reply — so
            // the plain ERR below is correct there.)
            Err(msg)
                if version >= 2
                    && line
                        .split_whitespace()
                        .next()
                        .is_some_and(|verb| verb.eq_ignore_ascii_case("BATCH")) =>
            {
                self.fatal(
                    token,
                    verb_idx,
                    started,
                    &format!("ERR {msg}; closing connection (unusable BATCH framing)"),
                    ctx,
                );
            }
            Err(msg) => self.reply(token, verb_idx, started, &format!("ERR {msg}"), ctx),
            Ok(Request::Hello(requested)) => {
                let negotiated = requested.min(PROTOCOL_VERSION);
                if let Some(state) = self.conns.get_mut(&token.0) {
                    state.version = negotiated;
                }
                let text = format!(
                    "OK v{negotiated} dim={} k={} r={} shards={}",
                    self.info.dim, self.info.k, self.info.r, self.info.shards
                );
                self.reply(token, verb_idx, started, &text, ctx);
            }
            Ok(Request::Shutdown) => {
                self.reply(token, verb_idx, started, "OK shutting down", ctx);
                // The shutdown channel is an unbounded mpsc sender:
                // send enqueues and returns, it can never park the
                // reactor thread.
                let _ = self.shutdown_tx.send(());
                ctx.close(token);
            }
            Ok(Request::Submit(op)) => {
                let parked = Parked {
                    ops: VecDeque::from([op]),
                    submitted: 0,
                    total: 1,
                    batch: false,
                    started,
                    verb_idx,
                };
                self.submit_parked(token, parked, ctx);
            }
            Ok(Request::Query) => {
                let text = format_query(&self.handle.view());
                self.reply(token, verb_idx, started, &text, ctx);
            }
            Ok(Request::Stats) => {
                let text = format_stats(&self.handle);
                self.reply(token, verb_idx, started, &text, ctx);
            }
            Ok(Request::Batch(_)) if version < 2 => {
                self.reply(
                    token,
                    verb_idx,
                    started,
                    "ERR BATCH requires protocol v2 (send HELLO v2 first)",
                    ctx,
                );
            }
            Ok(Request::Batch(n)) if n > MAX_BATCH_LINES => {
                // Refusing without consuming would reinterpret the
                // announced op lines as requests; closing is the only
                // framing-safe refusal.
                self.fatal(
                    token,
                    verb_idx,
                    started,
                    &format!("ERR BATCH size {n} exceeds {MAX_BATCH_LINES}; closing connection"),
                    ctx,
                );
            }
            Ok(Request::Batch(0)) => {
                self.reply(token, verb_idx, started, "OK queued n=0", ctx);
            }
            Ok(Request::Batch(n)) => {
                if let Some(state) = self.conns.get_mut(&token.0) {
                    state.batch = Some(BatchState {
                        expected: n,
                        received: 0,
                        ops: Vec::with_capacity(n),
                        bad: None,
                        started,
                    });
                }
            }
            Ok(Request::Subscribe { .. }) if version < 2 => {
                self.reply(
                    token,
                    verb_idx,
                    started,
                    "ERR SUBSCRIBE requires protocol v2 (send HELLO v2 first)",
                    ctx,
                );
            }
            Ok(Request::Subscribe { every, filter }) => {
                self.do_subscribe(token, verb_idx, started, every, filter, ctx);
            }
            Ok(Request::Metrics) if version < 2 => {
                self.reply(
                    token,
                    verb_idx,
                    started,
                    "ERR METRICS requires protocol v2 (send HELLO v2 first)",
                    ctx,
                );
            }
            Ok(Request::Metrics) => {
                let text = format_metrics(&self.metrics.registry);
                self.reply(token, verb_idx, started, &text, ctx);
            }
        }
    }

    fn on_cmd(&mut self, cmd: NetCmd, ctx: &mut Ctx<'_>) {
        match cmd {
            NetCmd::Adopt(stream) => self.adopt_local(stream, ctx),
            NetCmd::Publish { delta, line } => self.handle_publish(&delta, &line, ctx),
            NetCmd::StreamEnd => {
                self.flush_pending_subs(ctx);
                ctx.begin_drain();
            }
        }
    }

    fn on_tick(&mut self, _now: Instant, ctx: &mut Ctx<'_>) {
        if self.flush_armed {
            self.flush_armed = false;
            self.flush_pending_subs(ctx);
        }
        self.retry_parked(ctx);
    }

    fn on_eof(&mut self, token: Token, ctx: &mut Ctx<'_>) {
        // A peer that hangs up mid-BATCH body broke its own framing;
        // report it the way the old server did before the close.
        let Some(state) = self.conns.get_mut(&token.0) else {
            return;
        };
        if let Some(batch) = state.batch.take() {
            ctx.push_line(
                token,
                &format!(
                    "ERR BATCH truncated: got {} of {} operation lines",
                    batch.received, batch.expected
                ),
            );
            ctx.close(token);
        }
    }

    fn on_close(&mut self, token: Token) {
        if let Some(state) = self.conns.remove(&token.0) {
            if state.sub.is_some() {
                self.metrics.subscribers.dec();
            }
        }
    }
}

/// Encodes one `DELTA` wire line (with trailing newline), optionally
/// sliced to an id-range filter.
pub(crate) fn encode_delta_line(
    delta: &SnapshotDelta,
    sharded: bool,
    filter: Option<(PointId, PointId)>,
) -> Arc<[u8]> {
    let mut line = format_delta(delta, sharded, filter);
    line.push('\n');
    Arc::from(line.into_bytes().into_boxed_slice())
}

/// Formats a `DELTA` line: `DELTA <version fields> from=F n=N [+ids]
/// [-ids]`. With a filter, the `+`/`-` id lists are sliced to the
/// range; the header always goes out (even when both slices are
/// empty), so filtered subscribers still observe every version.
pub(crate) fn format_delta(
    delta: &SnapshotDelta,
    sharded: bool,
    filter: Option<(PointId, PointId)>,
) -> String {
    let in_range = |id: PointId| filter.is_none_or(|(lo, hi)| id >= lo && id <= hi);
    let mut out = format!(
        "DELTA {} from={} n={}",
        version_fields(sharded, &delta.epochs),
        delta.from_version,
        delta.len,
    );
    let added = join_iter(delta.added.iter().map(Point::id).filter(|&id| in_range(id)));
    if !added.is_empty() {
        out.push_str(" +");
        out.push_str(&added);
    }
    let removed = join_iter(delta.removed.iter().copied().filter(|&id| in_range(id)));
    if !removed.is_empty() {
        out.push_str(" -");
        out.push_str(&removed);
    }
    out
}

/// The `epoch=E` / `epochs=e0,e1,… version=V` field pair, matching the
/// single/sharded dichotomy of `QUERY` replies.
pub(crate) fn version_fields(merged: bool, epochs: &[u64]) -> String {
    if merged {
        format!(
            "epochs={} version={}",
            join_u64(epochs),
            epochs.iter().sum::<u64>()
        )
    } else {
        format!("epoch={}", epochs.first().copied().unwrap_or(0))
    }
}

pub(crate) fn format_query(view: &BackendView) -> String {
    let epochs = view.epochs();
    let head = if view.is_merged() {
        format!("OK epochs={}", join_u64(&epochs))
    } else {
        format!("OK epoch={}", epochs[0])
    };
    format!(
        "{head} n={} r={} ids={}",
        view.len(),
        view.result().len(),
        join_ids(view.result()),
    )
}

pub(crate) fn format_stats<H: RmsBackendHandle>(handle: &H) -> String {
    let view = handle.view();
    let epochs = view.epochs();
    let s = view.stats();
    let mut out = if view.is_merged() {
        format!("OK epochs={} shards={}", join_u64(&epochs), epochs.len())
    } else {
        format!("OK epoch={}", epochs[0])
    };
    out.push_str(&format!(
        " n={} m={} r={} queue_depth={} batches={} replayed_batches={} \
         ops_applied={} ops_rejected={} wal_recovered={} last_batch={} max_coalesced={} \
         avg_apply_ms={:.4} last_apply_ms={:.4}",
        view.len(),
        view.m(),
        view.result().len(),
        handle.queue_depth(),
        s.batches,
        s.replayed_batches,
        s.ops_applied,
        s.ops_rejected,
        s.wal_recovered_ops,
        s.last_batch_ops,
        s.max_coalesced,
        s.avg_apply_ms(),
        s.last_apply_ms,
    ));
    if let Some(mrr) = view.mrr() {
        out.push_str(&format!(" mrr={mrr:.5}"));
    }
    if let Some((hits, misses)) = handle.merge_cache_stats() {
        out.push_str(&format!(" merge_hits={hits} merge_misses={misses}"));
    }
    out
}

/// The `METRICS` reply: a counted header so line-oriented clients know
/// how many raw exposition lines follow, then the Prometheus text
/// exposition itself (which is multi-line by nature).
pub(crate) fn format_metrics(registry: &Registry) -> String {
    let encoded = registry.encode();
    let body = encoded.trim_end_matches('\n');
    if body.is_empty() {
        return "OK metrics lines=0".to_string();
    }
    format!("OK metrics lines={}\n{body}", body.lines().count())
}

pub(crate) fn join_ids(points: &[Point]) -> String {
    join_iter(points.iter().map(Point::id))
}

pub(crate) fn join_u64(values: &[u64]) -> String {
    join_iter(values.iter().copied())
}

fn join_iter<I>(values: I) -> String
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<u64>,
{
    use std::borrow::Borrow;
    let mut out = String::new();
    for v in values {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(&v.borrow().to_string());
    }
    out
}
