//! # rms-serve — concurrent ingestion + snapshot serving for FD-RMS
//!
//! The batch update engine (`fdrms::engine`) made maintenance cheap to
//! amortise; this crate turns the engine into a *service*. An
//! [`RmsService`] moves the [`FdRms`](fdrms::FdRms) instance onto a
//! dedicated applier thread fed by a bounded MPSC queue:
//!
//! ```text
//!  writers ──submit(Op)──▶ [bounded queue] ──▶ applier thread
//!                           (backpressure)      │ coalesce ≤ max_batch
//!                                               │ FdRms::apply_batch
//!                                               ▼
//!  readers ◀──snapshot()── [Arc<ResultSnapshot> swap cell]
//! ```
//!
//! * **Ingestion** blocks only on queue capacity (backpressure), never on
//!   maintenance: the applier drains whatever is queued into one adaptive
//!   batch — size 1 under light load (the classic per-op path), up to
//!   [`ServeConfig::max_batch`] under pressure, exactly where
//!   `apply_batch` amortises best.
//! * **Serving** never blocks ingestion: after every batch the applier
//!   publishes an immutable, versioned [`ResultSnapshot`] (epoch, the
//!   current solution, regret stats, a [`BatchRollup`](fdrms::BatchRollup)
//!   of engine counters) behind a swapped `Arc`; readers clone the `Arc`
//!   out and keep it as long as they like.
//! * A `std::net`-only [TCP front end](crate::tcp) speaks a small
//!   [line protocol](crate::protocol) (`INSERT`/`DELETE`/`UPDATE`/
//!   `QUERY`/`STATS`/`SHUTDOWN`, plus the v2 `HELLO`/`BATCH`/
//!   `SUBSCRIBE`/`METRICS` verbs) over the same handles, wired into the
//!   `krms serve` CLI subcommand. The in-tree `rms-client` crate is a
//!   typed, std-only client for it.
//! * Every subsystem reports into an `rms-metrics`
//!   [`Registry`](rms_metrics::Registry) — applier latencies, WAL
//!   activity, per-shard counters, TCP request families — reachable
//!   through [`RmsBackend::registry`], the `METRICS` verb, and `krms
//!   serve --metrics-addr`'s `GET /metrics` endpoint.
//! * [`ShardedRmsService`] scales ingestion across cores: `S`
//!   independent services, each owning the id partition `id % S`,
//!   behind a router with the same submit/snapshot/shutdown surface.
//!   Reads merge the per-shard solutions into one
//!   [`AggregateSnapshot`] (per-shard epochs, summed stats, union
//!   re-trimmed to `r`).
//! * Both backends implement [`RmsBackend`] (their handles implement
//!   [`RmsBackendHandle`]), so front ends are written once against the
//!   trait pair: submit, read a unified [`BackendView`], or
//!   [`watch`](RmsBackendHandle::watch) the push stream of
//!   [`SnapshotDelta`]s computed at publish time — applying every delta
//!   to the starting snapshot reproduces the published solution at each
//!   delivered version.
//! * An optional [write-ahead log](crate::wal) makes acknowledgements
//!   durable: every acknowledged op is framed into an append-only log
//!   *before* its acknowledgement ([`RmsService::start_with_wal`]),
//!   with enqueue and append serialized so log order equals apply
//!   order; the log is replayed on the next start after an unclean
//!   death, and graceful shutdown compacts it to a checkpoint.
//!
//! ## Example
//!
//! ```
//! use fdrms::{FdRms, Op};
//! use rms_geom::Point;
//! use rms_serve::{RmsService, ServeConfig};
//!
//! let points: Vec<Point> = (0..100)
//!     .map(|i| Point::new(i, vec![(i as f64) / 100.0, 1.0 - (i as f64) / 100.0]).unwrap())
//!     .collect();
//! let service = RmsService::start(
//!     FdRms::builder(2).r(4).max_utilities(128),
//!     points,
//!     ServeConfig::default(),
//! )
//! .unwrap();
//!
//! // Writers submit asynchronously; readers never block on them.
//! let handle = service.handle();
//! handle.submit(Op::Insert(Point::new(1_000, vec![0.9, 0.9]).unwrap())).unwrap();
//! assert!(service.snapshot().result.len() <= 4);
//!
//! // Graceful shutdown drains the queue and returns the engine.
//! let fd = service.shutdown();
//! assert!(fd.contains(1_000));
//! fd.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod net;
pub mod protocol;
mod service;
mod sharded;
mod snapshot;
pub mod sync;
pub mod tcp;
pub mod wal;

pub use backend::{BackendView, DeltaReceiver, RmsBackend, RmsBackendHandle};
pub use service::{RmsHandle, RmsService, ServeConfig, ServeError, SubmitError};
pub use sharded::{AggregateSnapshot, ShardedHandle, ShardedRmsService};
pub use snapshot::{ResultSnapshot, ServiceStats, SnapshotDelta, StatsDelta};
pub use tcp::RmsServer;
