//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each `src/bin/*.rs` binary reproduces one table or figure (see
//! `DESIGN.md` §4 for the index); this library holds the common plumbing:
//! scale handling, the dynamic-workload experiment runner for FD-RMS and
//! every static baseline, and parallel execution of independent cells.
//!
//! ## Scaling
//!
//! The paper's full experiments run on databases up to 1 M tuples with a
//! 500 K-vector regret test set — hours of compute for the slow baselines.
//! Every binary therefore runs at a *reduced default scale* and prints the
//! scale it used; pass `--full` for paper scale or `--scale <f>` /
//! `--ops <n>` / `--eval <n>` to tune. Trends and orderings (who wins,
//! where the crossovers sit) are preserved; absolute numbers shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use rms_baselines::{
    DmmGreedy, DmmRrms, DynamicAdapter, EpsKernel, GeoGreedy, Greedy, GreedyStar, HittingSet,
    Sphere, StaticRms,
};
use rms_data::{paper_workload, DatasetSpec, Operation, WorkloadConfig};
use rms_eval::{ExperimentRecord, RegretEstimator, UpdateTimer};
use rms_geom::Point;
use rms_serve::sync::recover_poisoned;

/// Harness-wide scale knobs parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Dataset cardinality fraction (1.0 = paper scale).
    pub frac: f64,
    /// Number of regret-evaluation vectors (paper: 500 000).
    pub eval_vectors: usize,
    /// Upper bound M on FD-RMS utility vectors.
    pub max_m: usize,
    /// Cap on the number of workload operations measured per cell.
    pub ops: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            frac: 0.02,
            eval_vectors: 20_000,
            max_m: 1 << 12,
            ops: 400,
        }
    }
}

impl Scale {
    /// Parses `--full`, `--scale f`, `--eval n`, `--ops n`, `--max-m n`
    /// from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut s = Self::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    s.frac = 1.0;
                    s.eval_vectors = 500_000;
                    s.max_m = 1 << 20;
                    s.ops = usize::MAX;
                }
                "--scale" => {
                    i += 1;
                    s.frac = args[i].parse().expect("--scale takes a float");
                }
                "--eval" => {
                    i += 1;
                    s.eval_vectors = args[i].parse().expect("--eval takes an int");
                }
                "--ops" => {
                    i += 1;
                    s.ops = args[i].parse().expect("--ops takes an int");
                }
                "--max-m" => {
                    i += 1;
                    s.max_m = args[i].parse().expect("--max-m takes an int");
                }
                _ => {}
            }
            i += 1;
        }
        s
    }

    /// Human-readable banner describing the scale.
    pub fn banner(&self) -> String {
        format!(
            "scale: frac={}, eval_vectors={}, max_m={}, ops_cap={}",
            self.frac,
            self.eval_vectors,
            self.max_m,
            if self.ops == usize::MAX {
                "none".to_string()
            } else {
                self.ops.to_string()
            }
        )
    }
}

/// The algorithms of Section IV-A, as harness-selectable variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's contribution.
    FdRms,
    /// GREEDY [22].
    Greedy,
    /// GEOGREEDY [23].
    GeoGreedy,
    /// GREEDY* [11].
    GreedyStar,
    /// DMM-RRMS [4].
    DmmRrms,
    /// DMM-GREEDY [4].
    DmmGreedy,
    /// ε-KERNEL [3], [10].
    EpsKernel,
    /// HS [3].
    Hs,
    /// SPHERE [32].
    Sphere,
}

impl Algo {
    /// Every algorithm, FD-RMS first (the order of the paper's legends).
    pub const ALL: [Algo; 9] = [
        Algo::FdRms,
        Algo::Greedy,
        Algo::GeoGreedy,
        Algo::GreedyStar,
        Algo::DmmRrms,
        Algo::DmmGreedy,
        Algo::EpsKernel,
        Algo::Hs,
        Algo::Sphere,
    ];

    /// The algorithms compared in Fig. 7 (the only ones defined for k>1).
    pub const K_CAPABLE: [Algo; 4] = [Algo::FdRms, Algo::GreedyStar, Algo::EpsKernel, Algo::Hs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::FdRms => "FD-RMS",
            Algo::Greedy => "Greedy",
            Algo::GeoGreedy => "GeoGreedy",
            Algo::GreedyStar => "Greedy*",
            Algo::DmmRrms => "DMM-RRMS",
            Algo::DmmGreedy => "DMM-Greedy",
            Algo::EpsKernel => "eps-Kernel",
            Algo::Hs => "HS",
            Algo::Sphere => "Sphere",
        }
    }

    /// Boxes the corresponding static baseline (panics on
    /// [`Algo::FdRms`], which is not a static algorithm).
    pub fn static_algo(self) -> Box<dyn StaticRms + Send> {
        match self {
            Algo::FdRms => panic!("FD-RMS is not a static baseline"),
            Algo::Greedy => Box::new(Greedy),
            Algo::GeoGreedy => Box::new(GeoGreedy),
            Algo::GreedyStar => Box::new(GreedyStar::default()),
            Algo::DmmRrms => Box::new(DmmRrms::default()),
            Algo::DmmGreedy => Box::new(DmmGreedy::default()),
            Algo::EpsKernel => Box::new(EpsKernel::default()),
            Algo::Hs => Box::new(HittingSet::default()),
            Algo::Sphere => Box::new(Sphere::default()),
        }
    }

    /// Parses `--algos a,b,c` from the process arguments; `None` when the
    /// flag is absent (caller uses its figure-specific default list).
    pub fn filter_from_args() -> Option<Vec<Algo>> {
        let args: Vec<String> = std::env::args().collect();
        let pos = args.iter().position(|a| a == "--algos")?;
        let list = args.get(pos + 1)?;
        Some(
            list.split(',')
                .filter_map(|name| {
                    Algo::ALL
                        .into_iter()
                        .find(|a| a.name().eq_ignore_ascii_case(name))
                })
                .collect(),
        )
    }
}

/// Parameters of one experiment cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Experiment id (e.g. `"fig6"`).
    pub experiment: String,
    /// Dataset recipe (already scaled).
    pub spec: DatasetSpec,
    /// Algorithm under test.
    pub algo: Algo,
    /// Rank depth.
    pub k: usize,
    /// Result size budget.
    pub r: usize,
    /// FD-RMS ε (ignored by baselines).
    pub eps: f64,
    /// Name of the varied parameter, for the record.
    pub param: String,
    /// Value of the varied parameter, for the record.
    pub value: f64,
}

/// Runs the paper's dynamic workload for one cell and reports the average
/// update time and the mean of the checkpointed regret ratios.
pub fn run_cell(cell: &Cell, scale: Scale) -> ExperimentRecord {
    use rand::{rngs::StdRng, SeedableRng};
    let points = cell.spec.generate();
    let d = cell.spec.d;
    let mut rng = StdRng::seed_from_u64(cell.spec.seed ^ 0xABCD);
    let mut workload = paper_workload(&mut rng, points, WorkloadConfig::default());
    if workload.operations.len() > scale.ops {
        workload.operations.truncate(scale.ops);
        let total = workload.operations.len().max(1);
        workload.checkpoints = (1..=10).map(|i| (total * i / 10).max(1) - 1).collect();
    }
    let est = RegretEstimator::new(d, scale.eval_vectors.max(d), 0x7E57);

    let (timer, mrrs) = match cell.algo {
        Algo::FdRms => run_fdrms(cell, scale, &workload, &est),
        _ => run_static(cell, &workload, &est),
    };

    ExperimentRecord {
        experiment: cell.experiment.clone(),
        dataset: cell.spec.dataset.name().to_string(),
        algorithm: cell.algo.name().to_string(),
        param: cell.param.clone(),
        value: cell.value,
        update_ms: timer.avg_ms(),
        mrr: if mrrs.is_empty() {
            f64::NAN
        } else {
            mrrs.iter().sum::<f64>() / mrrs.len() as f64
        },
    }
}

fn run_fdrms(
    cell: &Cell,
    scale: Scale,
    workload: &rms_data::Workload,
    est: &RegretEstimator,
) -> (UpdateTimer, Vec<f64>) {
    let mut fd = fdrms::FdRms::builder(cell.spec.d)
        .k(cell.k)
        .r(cell.r)
        .epsilon(cell.eps)
        .max_utilities(scale.max_m)
        .seed(cell.spec.seed)
        .build(workload.initial.clone())
        .expect("valid cell configuration");
    let mut live: Vec<Point> = workload.initial.clone();
    let mut timer = UpdateTimer::new();
    let mut mrrs = Vec::new();
    let mut next_cp = 0usize;
    for (i, op) in workload.operations.iter().enumerate() {
        match op {
            Operation::Insert(p) => {
                live.push(p.clone());
                timer.record(|| fd.insert(p.clone()).expect("workload ids are fresh"));
            }
            Operation::Delete(id) => {
                live.retain(|q| q.id() != *id);
                timer.record(|| fd.delete(*id).expect("workload deletes live ids"));
            }
            Operation::Update(p) => {
                if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                    *slot = p.clone();
                }
                timer.record(|| fd.update(p.clone()).expect("workload updates live ids"));
            }
        }
        if next_cp < workload.checkpoints.len() && workload.checkpoints[next_cp] == i {
            mrrs.push(est.mrr(&live, &fd.result(), cell.k));
            next_cp += 1;
        }
    }
    (timer, mrrs)
}

fn run_static(
    cell: &Cell,
    workload: &rms_data::Workload,
    est: &RegretEstimator,
) -> (UpdateTimer, Vec<f64>) {
    let algo = cell.algo.static_algo();
    let mut ad = DynamicAdapter::new(BoxedStatic(algo), cell.k, cell.r, workload.initial.clone())
        .expect("workload initial state is valid");
    let mut live: Vec<Point> = workload.initial.clone();
    let mut timer = UpdateTimer::new();
    let mut mrrs = Vec::new();
    let mut next_cp = 0usize;
    for (i, op) in workload.operations.iter().enumerate() {
        // Skyline maintenance is untimed (Section IV-A: "we only took the
        // time for k-RMS computation into account").
        let needs = match op {
            Operation::Insert(p) => {
                live.push(p.clone());
                ad.insert_lazy(p.clone()).expect("fresh ids")
            }
            Operation::Delete(id) => {
                live.retain(|q| q.id() != *id);
                ad.delete_lazy(*id).expect("live ids")
            }
            Operation::Update(p) => {
                if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                    *slot = p.clone();
                }
                let del = ad.delete_lazy(p.id()).expect("live ids");
                ad.insert_lazy(p.clone()).expect("id just freed") || del
            }
        };
        if needs {
            timer.record(|| ad.recompute());
        } else {
            timer.add(std::time::Duration::ZERO);
        }
        if next_cp < workload.checkpoints.len() && workload.checkpoints[next_cp] == i {
            mrrs.push(est.mrr(&live, ad.result(), cell.k));
            next_cp += 1;
        }
    }
    (timer, mrrs)
}

/// Adapter shim: `DynamicAdapter` is generic over `StaticRms`, the harness
/// holds trait objects.
struct BoxedStatic(Box<dyn StaticRms + Send>);

impl StaticRms for BoxedStatic {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn supports_k(&self, k: usize) -> bool {
        self.0.supports_k(k)
    }
    fn compute(&self, skyline: &[Point], full: &[Point], k: usize, r: usize) -> Vec<Point> {
        self.0.compute(skyline, full, k, r)
    }
}

/// Runs independent cells in parallel (one worker per CPU, std scoped
/// threads) and returns records in the input order.
pub fn run_cells(cells: &[Cell], scale: Scale) -> Vec<ExperimentRecord> {
    let n = cells.len();
    let results: Vec<std::sync::Mutex<Option<ExperimentRecord>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let rec = run_cell(&cells[i], scale);
                eprintln!(
                    "  done: {} / {} / {}={}",
                    rec.dataset, rec.algorithm, rec.param, rec.value
                );
                *recover_poisoned(results[i].lock()) = Some(rec);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("cell mutex poisoned")
                .expect("all cells ran")
        })
        .collect()
}

/// Writes records to `results/<name>.tsv` when `--save` was passed.
pub fn maybe_save(name: &str, records: &[ExperimentRecord]) {
    if !std::env::args().any(|a| a == "--save") {
        return;
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let mut out = String::from(ExperimentRecord::HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&r.to_row());
        out.push('\n');
    }
    let path = dir.join(format!("{name}.tsv"));
    std::fs::write(&path, out).expect("write results");
    eprintln!("saved {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rms_data::NamedDataset;

    #[test]
    fn default_scale_is_reduced() {
        let s = Scale::default();
        assert!(s.frac < 1.0);
        assert!(s.eval_vectors < 500_000);
    }

    #[test]
    fn algo_filter_and_names() {
        assert_eq!(Algo::ALL.len(), 9);
        let names: std::collections::HashSet<_> = Algo::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 9);
        for a in Algo::K_CAPABLE {
            assert!(a == Algo::FdRms || a.static_algo().supports_k(3));
        }
    }

    #[test]
    fn run_cell_fdrms_smoke() {
        let cell = Cell {
            experiment: "smoke".into(),
            spec: NamedDataset::Indep.spec().with_n(400).with_d(3),
            algo: Algo::FdRms,
            k: 1,
            r: 5,
            eps: 0.05,
            param: "r".into(),
            value: 5.0,
        };
        let scale = Scale {
            frac: 1.0,
            eval_vectors: 1_000,
            max_m: 256,
            ops: 60,
        };
        let rec = run_cell(&cell, scale);
        assert_eq!(rec.algorithm, "FD-RMS");
        assert!(rec.update_ms >= 0.0);
        assert!((0.0..=1.0).contains(&rec.mrr));
    }

    #[test]
    fn run_cell_static_smoke() {
        let cell = Cell {
            experiment: "smoke".into(),
            spec: NamedDataset::Indep.spec().with_n(300).with_d(3),
            algo: Algo::Sphere,
            k: 1,
            r: 5,
            eps: 0.05,
            param: "r".into(),
            value: 5.0,
        };
        let scale = Scale {
            frac: 1.0,
            eval_vectors: 1_000,
            max_m: 256,
            ops: 40,
        };
        let rec = run_cell(&cell, scale);
        assert_eq!(rec.algorithm, "Sphere");
        assert!((0.0..=1.0).contains(&rec.mrr));
    }

    #[test]
    fn run_cells_parallel_smoke() {
        let mk = |algo| Cell {
            experiment: "smoke".into(),
            spec: NamedDataset::Indep.spec().with_n(200).with_d(2),
            algo,
            k: 1,
            r: 4,
            eps: 0.05,
            param: "r".into(),
            value: 4.0,
        };
        let scale = Scale {
            frac: 1.0,
            eval_vectors: 500,
            max_m: 128,
            ops: 20,
        };
        let recs = run_cells(&[mk(Algo::FdRms), mk(Algo::Greedy)], scale);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].algorithm, "FD-RMS");
        assert_eq!(recs[1].algorithm, "Greedy");
    }
}
