//! Fig. 7: update time and maximum regret ratios with varying k
//! (r = 10 on BB and Indep, r = 50 elsewhere).
//!
//! Only FD-RMS, GREEDY*, ε-KERNEL and HS support k > 1.
//!
//! ```sh
//! cargo run --release -p rms-bench --bin fig7 [-- --scale 0.02 --save]
//! ```

use rms_bench::{maybe_save, run_cells, Algo, Cell, Scale};
use rms_data::NamedDataset;
use rms_eval::format_table;

fn main() {
    let scale = Scale::from_args();
    let algos = Algo::filter_from_args().unwrap_or_else(|| Algo::K_CAPABLE.to_vec());
    println!("Fig. 7 — varying k ({})", scale.banner());

    let mut cells = Vec::new();
    for ds in NamedDataset::ALL {
        let r = if matches!(ds, NamedDataset::Bb | NamedDataset::Indep) {
            10
        } else {
            50
        };
        for k in 1..=5usize {
            for &algo in &algos {
                cells.push(Cell {
                    experiment: "fig7".into(),
                    spec: ds.spec().scaled(scale.frac),
                    algo,
                    k,
                    r,
                    eps: 0.02,
                    param: "k".into(),
                    value: k as f64,
                });
            }
        }
    }
    let records = run_cells(&cells, scale);
    println!("{}", format_table(&records));
    maybe_save("fig7", &records);
    println!(
        "Expected shape (paper): all algorithms slow down as k grows; the \
         regret ratios drop with k by definition; FD-RMS is up to four \
         orders of magnitude faster with equal or better quality."
    );
}
