//! Fig. 8: scalability with the dimensionality d and the dataset size n
//! on Indep and AntiCor (k = 1, r = 50).
//!
//! Panels (a)–(b): d ∈ [4, 10], n = 100 K.
//! Panels (c)–(d): n ∈ [100 K, 1 M], d = 6.
//!
//! ```sh
//! cargo run --release -p rms-bench --bin fig8 \
//!     [-- --axis d|n --scale 0.02 --algos FD-RMS,Sphere,HS --save]
//! ```

use rms_bench::{maybe_save, run_cells, Algo, Cell, Scale};
use rms_data::NamedDataset;
use rms_eval::format_table;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let axis = args
        .iter()
        .position(|a| a == "--axis")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("both")
        .to_string();
    // Default algorithm set: the ones the paper shows surviving the sweep
    // plus the DMM/GeoGreedy variants at low d (they drop out beyond 7).
    let algos = Algo::filter_from_args()
        .unwrap_or_else(|| vec![Algo::FdRms, Algo::Sphere, Algo::Hs, Algo::EpsKernel]);
    println!("Fig. 8 — scalability ({}; axis={axis})", scale.banner());

    let mut cells = Vec::new();
    if axis == "d" || axis == "both" {
        for ds in [NamedDataset::Indep, NamedDataset::AntiCor] {
            for d in 4..=10usize {
                for &algo in &algos {
                    if d > 7 && matches!(algo, Algo::DmmRrms | Algo::DmmGreedy | Algo::GeoGreedy) {
                        continue;
                    }
                    cells.push(Cell {
                        experiment: "fig8ab".into(),
                        spec: ds.spec().with_d(d).scaled(scale.frac),
                        algo,
                        k: 1,
                        r: 50,
                        eps: 0.02,
                        param: "d".into(),
                        value: d as f64,
                    });
                }
            }
        }
    }
    if axis == "n" || axis == "both" {
        for ds in [NamedDataset::Indep, NamedDataset::AntiCor] {
            for steps in [1usize, 2, 4, 6, 8, 10] {
                let n = ((steps * 100_000) as f64 * scale.frac).ceil() as usize;
                for &algo in &algos {
                    cells.push(Cell {
                        experiment: "fig8cd".into(),
                        spec: ds.spec().with_n(n.max(10)),
                        algo,
                        k: 1,
                        r: 50,
                        eps: 0.02,
                        param: "n".into(),
                        value: steps as f64,
                    });
                }
            }
        }
    }
    let records = run_cells(&cells, scale);
    println!("{}", format_table(&records));
    maybe_save(&format!("fig8_{axis}"), &records);
    println!(
        "Expected shape (paper): update time and mrr grow sharply with d for \
         everyone; FD-RMS gains ~100x over Sphere at d ≥ 8. With n, static \
         algorithms stay flat or drop slightly while FD-RMS grows mildly on \
         Indep and stays steady on AntiCor — FD-RMS stays fastest throughout."
    );
}
