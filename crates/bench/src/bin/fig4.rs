//! Fig. 4: skyline sizes of the synthetic datasets.
//!
//! Left panel: vary d ∈ [4, 10] at n = 100 K.
//! Right panel: vary n ∈ [100 K, 1 M] at d = 6.
//!
//! ```sh
//! cargo run --release -p rms-bench --bin fig4 [-- --scale 0.05 | --full]
//! ```

use rms_bench::Scale;
use rms_data::NamedDataset;
use rms_skyline::skyline;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Fig. 4 — sizes of skylines of synthetic datasets ({})",
        scale.banner()
    );

    println!(
        "\n(a) varying d (n = {} at this scale)",
        (100_000f64 * scale.frac) as usize
    );
    println!("{:<4} {:>12} {:>12}", "d", "Indep", "AntiCor");
    for d in 4..=10usize {
        let row: Vec<usize> = [NamedDataset::Indep, NamedDataset::AntiCor]
            .into_iter()
            .map(|ds| {
                let spec = ds.spec().with_d(d).scaled(scale.frac);
                skyline(&spec.generate()).len()
            })
            .collect();
        println!("{d:<4} {:>12} {:>12}", row[0], row[1]);
    }

    println!("\n(b) varying n (d = 6)");
    println!("{:<10} {:>12} {:>12}", "n(x10^5)", "Indep", "AntiCor");
    for steps in 1..=10usize {
        let n = (steps as f64 * 100_000.0 * scale.frac) as usize;
        let row: Vec<usize> = [NamedDataset::Indep, NamedDataset::AntiCor]
            .into_iter()
            .map(|ds| {
                let spec = ds.spec().with_n(n.max(1));
                skyline(&spec.generate()).len()
            })
            .collect();
        println!("{steps:<10} {:>12} {:>12}", row[0], row[1]);
    }
    println!("\nExpected shape (paper): both grow with d and n; AntiCor ≫ Indep throughout.");
}
