//! Fig. 5: effect of the parameter ε on FD-RMS (update time and maximum
//! regret ratio), k = 1, r = 50 (r = 20 on BB).
//!
//! The paper sweeps ε ∈ {1, 32, 64, 128, 256, 512, 1024} × 10⁻⁴ (the
//! exact grid varies per dataset); we sweep the shared superset.
//!
//! ```sh
//! cargo run --release -p rms-bench --bin fig5 [-- --scale 0.02 --save]
//! ```

use rms_bench::{maybe_save, run_cells, Algo, Cell, Scale};
use rms_data::NamedDataset;
use rms_eval::format_table;

fn main() {
    let scale = Scale::from_args();
    println!(
        "Fig. 5 — performance of FD-RMS with varying eps ({})",
        scale.banner()
    );

    let eps_grid: Vec<f64> = [1.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]
        .iter()
        .map(|x| x * 1e-4)
        .collect();

    let mut cells = Vec::new();
    for ds in NamedDataset::ALL {
        let r = if ds == NamedDataset::Bb { 20 } else { 50 };
        for &eps in &eps_grid {
            cells.push(Cell {
                experiment: "fig5".into(),
                spec: ds.spec().scaled(scale.frac),
                algo: Algo::FdRms,
                k: 1,
                r,
                eps,
                param: "eps".into(),
                value: eps,
            });
        }
    }
    let records = run_cells(&cells, scale);
    println!("{}", format_table(&records));
    maybe_save("fig5", &records);
    println!(
        "Expected shape (paper): update time grows with eps; mrr first improves \
         with eps (larger m, smaller delta) then degrades once eps exceeds the \
         optimal regret ratio."
    );
}
