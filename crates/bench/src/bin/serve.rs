//! Reader throughput under sustained ingestion: the serving subsystem's
//! headline experiment.
//!
//! Four disciplines absorb the same steady-state churn (alternating
//! fresh inserts and oldest-tuple deletions) for a fixed wall-clock
//! window while reader threads query the current solution as fast as
//! they can:
//!
//! * **blocking** — the pre-serve architecture: the engine behind a
//!   `Mutex`, the writer locking per operation, every reader locking to
//!   call `result()`.
//! * **service** — `rms_serve::RmsService`: one applier thread drains a
//!   bounded op queue into adaptive `apply_batch` calls and publishes
//!   immutable snapshots; readers clone an `Arc` and never touch the
//!   engine.
//! * **sharded** — `rms_serve::ShardedRmsService`: `S` independent
//!   appliers, each owning the id partition `id % S`, one writer thread
//!   per shard, readers merging the per-shard snapshots. Both in-process
//!   service disciplines run through the same generic harness — they are
//!   just two `RmsBackend`s.
//! * **tcp** — the full wire path: an `RmsServer` on loopback driven by
//!   the typed `rms-client` crate. The writer pipelines mutations with
//!   protocol-v2 `BATCH` frames (one ack per batch), readers issue
//!   `QUERY` round-trips, and a `SUBSCRIBE` connection applies every
//!   pushed delta — at the end its reconstructed solution must equal the
//!   server's final `QUERY`, so the bench doubles as an end-to-end
//!   protocol check.
//! * **fanout** — the publish path under subscriber pressure: a child
//!   process (re-exec of this binary, so server and subscriber fds stay
//!   under separate per-process limits) holds `--fanout-subs`
//!   subscriptions — half with a server-side `ids=` filter — while the
//!   parent pulses single-op publishes and measures end-to-end delta
//!   delivery latency on its own probe subscription. The server's
//!   metrics then prove the encode-once contract: exactly one
//!   unfiltered encode per publish regardless of subscriber count, plus
//!   one per distinct filter.
//!
//! The interesting read is reader QPS and worst-case read latency during
//! ingestion: the service keeps reads at near-constant nanosecond-scale
//! latency (an `Arc` clone) regardless of write pressure, while the
//! blocking loop's readers stall behind maintenance (and the tcp
//! discipline shows what the wire adds on top).
//!
//! ```sh
//! cargo run --release -p rms-bench --bin serve -- \
//!     [--n N] [--d D] [--k K] [--r R] [--eps E] [--max-m M]
//!     [--readers T] [--secs S] [--read-qps Q]   (Q=0: readers spin)
//!     [--shards S]                              (0 disables the sharded phase)
//!     [--wire-batch B]                          (tcp phase batch size; 0 disables
//!                                                the tcp phase)
//!     [--fanout-subs N] [--fanout-pubs P]       (fanout phase scale; N=0 disables
//!                                                the fanout phase)
//!     [--json PATH]                             (emit a machine-readable
//!                                                per-phase report)
//! ```
//!
//! Set `KRMS_BENCH_SMOKE=1` (as CI does) for a sub-second configuration
//! that just proves the binary works.

use fdrms::{FdRms, Op};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_bench::report::{write_json, JsonArray, JsonObject};
use rms_client::{ClientOp, RmsClient};
use rms_data::generators;
use rms_eval::RegretEstimator;
use rms_geom::{Point, PointId};
use rms_serve::sync::recover_poisoned;
use rms_serve::{
    RmsBackend, RmsBackendHandle, RmsServer, RmsService, ServeConfig, ShardedRmsService,
};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Endless steady-state churn: alternating fresh inserts and deletions
/// of the oldest live tuple, database size constant. `partition` builds
/// a stream confined to one residue class of `id % shards`, so per-shard
/// writer threads manage disjoint id sets.
struct OpStream {
    live: VecDeque<PointId>,
    next: PointId,
    step: u64,
    rng: StdRng,
    d: usize,
    flip: bool,
}

impl OpStream {
    fn new(initial: &[Point], d: usize, seed: u64) -> Self {
        Self::partition(initial, d, seed, 0, 1)
    }

    fn partition(initial: &[Point], d: usize, seed: u64, shard: u64, shards: u64) -> Self {
        Self {
            live: initial
                .iter()
                .map(Point::id)
                .filter(|id| id % shards == shard)
                .collect(),
            next: 10_000_000 + shard,
            step: shards,
            rng: StdRng::seed_from_u64(seed),
            d,
            flip: false,
        }
    }

    fn next_op(&mut self) -> Op {
        self.flip = !self.flip;
        if self.flip {
            let p = Point::new_unchecked(self.next, (0..self.d).map(|_| self.rng.gen()).collect());
            self.live.push_back(self.next);
            self.next += self.step;
            Op::Insert(p)
        } else {
            Op::Delete(self.live.pop_front().expect("database never drains"))
        }
    }

    /// The same op, encoded for the wire client.
    fn next_client_op(&mut self) -> ClientOp {
        match self.next_op() {
            Op::Insert(p) => ClientOp::insert(p.id(), p.coords().to_vec()),
            Op::Delete(id) => ClientOp::delete(id),
            Op::Update(p) => ClientOp::update(p.id(), p.coords().to_vec()),
        }
    }
}

/// Per-reader tally: queries served, mean latency, and a log₂ latency
/// histogram (bucket `i` covers `[2^i, 2^(i+1))` ns) for percentiles —
/// raw maxima are dominated by scheduler preemption at these
/// granularities.
#[derive(Clone, Copy)]
struct ReadTally {
    queries: u64,
    total_ns: u64,
    max_ns: u64,
    buckets: [u64; 64],
}

impl Default for ReadTally {
    fn default() -> Self {
        Self {
            queries: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; 64],
        }
    }
}

impl ReadTally {
    fn record(&mut self, elapsed: Duration) {
        let ns = (elapsed.as_nanos() as u64).max(1);
        self.queries += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        self.buckets[63 - ns.leading_zeros() as usize] += 1;
    }

    fn merge(tallies: &[ReadTally]) -> ReadTally {
        tallies.iter().fold(ReadTally::default(), |mut acc, t| {
            acc.queries += t.queries;
            acc.total_ns += t.total_ns;
            acc.max_ns = acc.max_ns.max(t.max_ns);
            for (a, b) in acc.buckets.iter_mut().zip(t.buckets) {
                *a += b;
            }
            acc
        })
    }

    fn mean_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.queries as f64 / 1e3
        }
    }

    /// Upper edge of the histogram bucket containing the given quantile,
    /// microseconds.
    fn quantile_us(&self, q: f64) -> f64 {
        let target = (self.queries as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target && count > 0 {
                return 2f64.powi(i as i32 + 1) / 1e3;
            }
        }
        self.max_ns as f64 / 1e3
    }
}

/// Shared parameters of one benchmark phase.
#[derive(Clone, Copy)]
struct Scenario {
    d: usize,
    k: usize,
    r: usize,
    eps: f64,
    max_m: usize,
    readers: usize,
    /// Per-reader inter-query sleep (zero = spin flat out).
    pace: Duration,
    window: Duration,
}

impl Scenario {
    fn builder(&self) -> fdrms::FdRmsBuilder {
        FdRms::builder(self.d)
            .k(self.k)
            .r(self.r)
            .epsilon(self.eps)
            .max_utilities(self.max_m)
            .seed(7)
    }

    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            queue_capacity: 4_096,
            max_batch: 1_024,
            ..ServeConfig::default()
        }
    }
}

struct PhaseOutcome {
    ops_applied: u64,
    reads: ReadTally,
    secs: f64,
    /// Monte-Carlo max-regret-ratio of the final published solution
    /// against the final live database — the "equal result quality"
    /// check across disciplines.
    mrr: f64,
    detail: String,
}

fn report(name: &str, o: &PhaseOutcome) {
    println!(
        "{name:<9}  {:>9.0}   {:>12.0}   {:>12.2}   {:>10.2}   {:>10.2}   {:>7.4}   {}",
        o.ops_applied as f64 / o.secs,
        o.reads.queries as f64 / o.secs,
        o.reads.mean_us(),
        o.reads.quantile_us(0.99),
        o.reads.quantile_us(0.999),
        o.mrr,
        o.detail
    );
}

/// The same phase row, as a JSON fragment for `--json`.
fn phase_json(name: &str, o: &PhaseOutcome) -> String {
    JsonObject::new()
        .str("phase", name)
        .int("ops_applied", o.ops_applied)
        .num("writes_per_s", o.ops_applied as f64 / o.secs)
        .num("reads_per_s", o.reads.queries as f64 / o.secs)
        .num("read_mean_us", o.reads.mean_us())
        .num("read_p50_us", o.reads.quantile_us(0.50))
        .num("read_p99_us", o.reads.quantile_us(0.99))
        .num("read_p999_us", o.reads.quantile_us(0.999))
        .num("mrr", o.mrr)
        .finish()
}

/// In-process service discipline, generic over the backend: the single
/// applier and the id-partitioned shard group run the identical harness —
/// one writer per shard (each confined to its own id residue class),
/// readers asserting pointwise-monotone epoch vectors.
fn run_backend<B: RmsBackend>(
    initial: &[Point],
    sc: Scenario,
    backend: B,
    est: &RegretEstimator,
) -> PhaseOutcome {
    let shards = backend.shards();
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..sc.readers)
        .map(|_| {
            let handle = backend.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = ReadTally::default();
                let mut last_epochs: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let view = handle.view();
                    tally.record(t.elapsed());
                    let epochs = view.epochs();
                    if !last_epochs.is_empty() {
                        assert!(
                            epochs.iter().zip(&last_epochs).all(|(n, l)| n >= l),
                            "epochs regressed"
                        );
                    }
                    last_epochs = epochs;
                    if !sc.pace.is_zero() {
                        std::thread::sleep(sc.pace);
                    }
                }
                tally
            })
        })
        .collect();

    let streams: Vec<OpStream> = (0..shards)
        .map(|w| OpStream::partition(initial, sc.d, 99 + w as u64, w as u64, shards as u64))
        .collect();
    let start = Instant::now();
    let writer_handles: Vec<_> = streams
        .into_iter()
        .map(|mut stream| {
            let handle = backend.handle();
            let window = sc.window;
            std::thread::spawn(move || {
                let mut submitted = 0u64;
                while start.elapsed() < window {
                    handle.submit(stream.next_op()).expect("service alive");
                    submitted += 1;
                }
                submitted
            })
        })
        .collect();
    let submitted: u64 = writer_handles
        .into_iter()
        .map(|h| h.join().expect("writer thread"))
        .sum();
    let handle = backend.handle();
    let fds = backend.shutdown();
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let view = handle.view();
    assert_eq!(view.stats().ops_rejected, 0);
    assert_eq!(view.stats().ops_applied, submitted);
    let live: Vec<Point> = fds.iter().flat_map(FdRms::live_points).collect();
    let mrr = est.mrr(&live, view.result(), sc.k);
    PhaseOutcome {
        ops_applied: view.stats().ops_applied,
        reads: ReadTally::merge(&tallies),
        secs,
        mrr,
        detail: format!(
            "shards={shards} epochs={:?} max_coalesced={} avg_apply_ms={:.3}",
            view.epochs(),
            view.stats().max_coalesced,
            view.stats().avg_apply_ms()
        ),
    }
}

/// Blocking discipline: one engine behind a mutex, per-op writer, readers
/// locking for every query.
fn run_blocking(initial: &[Point], sc: Scenario, est: &RegretEstimator) -> PhaseOutcome {
    let fd = sc
        .builder()
        .build(initial.to_vec())
        .expect("valid bench configuration");
    let fd = Arc::new(Mutex::new(fd));
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..sc.readers)
        .map(|_| {
            let fd = Arc::clone(&fd);
            let stop = Arc::clone(&stop);
            let pace = sc.pace;
            std::thread::spawn(move || {
                let mut tally = ReadTally::default();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let q = recover_poisoned(fd.lock()).result();
                    tally.record(t.elapsed());
                    std::hint::black_box(q.len());
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                tally
            })
        })
        .collect();

    let mut stream = OpStream::new(initial, sc.d, 99);
    let mut applied = 0u64;
    let start = Instant::now();
    while start.elapsed() < sc.window {
        let op = stream.next_op();
        let mut guard = recover_poisoned(fd.lock());
        match op {
            Op::Insert(p) => guard.insert(p).expect("fresh id"),
            Op::Delete(id) => guard.delete(id).expect("live id"),
            Op::Update(p) => guard.update(p).expect("live id"),
        }
        applied += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let mrr = {
        let guard = recover_poisoned(fd.lock());
        est.mrr(&guard.live_points(), &guard.result(), sc.k)
    };
    PhaseOutcome {
        ops_applied: applied,
        reads: ReadTally::merge(&tallies),
        secs,
        mrr,
        detail: String::new(),
    }
}

/// Wire discipline: the same churn through `RmsServer` on loopback,
/// driven end-to-end by the typed `rms-client` — pipelined `BATCH`
/// writes, `QUERY` round-trip readers, and one `SUBSCRIBE` stream whose
/// reconstructed solution is checked against the final `QUERY`.
fn run_tcp(
    initial: &[Point],
    sc: Scenario,
    wire_batch: usize,
    est: &RegretEstimator,
) -> PhaseOutcome {
    let service = RmsService::start(sc.builder(), initial.to_vec(), sc.serve_config())
        .expect("valid bench configuration");
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server = std::thread::spawn(move || server.run().expect("server run"));

    // The subscriber applies every pushed delta until the server closes
    // the stream at shutdown.
    let subscriber = std::thread::spawn(move || {
        let client = RmsClient::connect(addr).expect("subscriber connect");
        let mut sub = client.subscribe(1).expect("subscribe");
        let mut deltas = 0u64;
        while let Some(_delta) = sub.next_delta().expect("delta stream") {
            deltas += 1;
        }
        (deltas, sub.ids())
    });

    let stop = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..sc.readers)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let pace = sc.pace;
            std::thread::spawn(move || {
                let mut client = RmsClient::connect(addr).expect("reader connect");
                let mut tally = ReadTally::default();
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let q = client.query().expect("query");
                    tally.record(t.elapsed());
                    assert!(q.epochs[0] >= last_epoch, "epochs regressed over the wire");
                    last_epoch = q.epochs[0];
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                tally
            })
        })
        .collect();

    let mut writer = RmsClient::connect(addr).expect("writer connect");
    assert_eq!(writer.hello().version, 2, "server must negotiate v2");
    let mut stream = OpStream::new(initial, sc.d, 99);
    let mut submitted = 0u64;
    let start = Instant::now();
    while start.elapsed() < sc.window {
        let ops: Vec<ClientOp> = (0..wire_batch).map(|_| stream.next_client_op()).collect();
        let acked = writer.submit_batch(&ops).expect("batch ack");
        assert_eq!(acked, ops.len());
        submitted += acked as u64;
    }
    let ingest_secs = start.elapsed().as_secs_f64();

    // Quiesce: all acknowledged ops visible before the final QUERY. The
    // deadline turns a lost/rejected op into a diagnostic instead of a
    // silent hang of the CI smoke run.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = writer.stats().expect("stats");
        if stats.ops_applied() == Some(submitted) {
            assert_eq!(stats.ops_rejected(), Some(0));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "submitted {submitted} ops but only {:?} applied ({:?} rejected) after 60s",
            stats.ops_applied(),
            stats.ops_rejected()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let final_q = writer.query().expect("final query");
    writer.shutdown().expect("shutdown ack");
    let fds = server.join().expect("server thread");
    let (deltas, sub_ids) = subscriber.join().expect("subscriber thread");
    assert_eq!(
        sub_ids, final_q.ids,
        "subscriber delta replay diverged from the final QUERY"
    );
    let [fd] = fds.as_slice() else {
        panic!("single backend returns one engine");
    };
    let mrr = est.mrr(&fd.live_points(), &fd.result(), sc.k);
    PhaseOutcome {
        ops_applied: submitted,
        reads: ReadTally::merge(&tallies),
        secs: ingest_secs,
        mrr,
        detail: format!("wire_batch={wire_batch} deltas={deltas} (replay == final QUERY)"),
    }
}

/// The fanout phase's measurements. `delivery` is the probe
/// subscription's submit→delta round trip, which rides the same
/// encode-once publish as the swarm.
struct FanoutOutcome {
    subscribers: usize,
    filtered: usize,
    publishes: u64,
    unfiltered_encodes: u64,
    filtered_encodes: u64,
    delivered_lines: u64,
    delivery: ReadTally,
}

/// Pulls one counter series out of Prometheus exposition text: the
/// first sample line starting with `name` whose label set contains
/// `label`.
fn metric_value(text: &str, name: &str, label: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.contains(label))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0, |v| v as u64)
}

/// The churn stream's insert ids start at 10 000 000, so this bound
/// puts the initial database inside the filter and fresh inserts
/// outside it — filtered subscribers see real slicing, not a no-op.
const FANOUT_FILTER_HI: u64 = 9_999_999;

/// `--fanout-child` mode: the subscriber swarm, run as a separate
/// process so the parent's server sockets and the swarm's client
/// sockets each stay under their own per-process fd limit. Connects
/// `--subs` subscribers (the first `--filtered` of them with a
/// server-side `ids=0..FILTER_HI` filter), prints `READY`, then drains
/// every pushed line through one `rms_net::Poller` until the server
/// closes the streams, and reports `DELIVERED <lines>`.
fn fanout_child() {
    rms_net::raise_nofile_limit(1 << 20).expect("raise child fd limit");
    let addr: String = flag("--addr", String::new());
    let subs: usize = flag("--subs", 0usize);
    let filtered: usize = flag("--filtered", 0usize);
    let filter_hi: u64 = flag("--filter-hi", FANOUT_FILTER_HI);

    let mut socks: Vec<TcpStream> = Vec::with_capacity(subs);
    for i in 0..subs {
        let stream = TcpStream::connect(&addr).expect("fanout subscriber connect");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.get_mut().write_all(b"HELLO v2\n").expect("hello");
        reader.read_line(&mut line).expect("hello ack");
        assert!(line.starts_with("OK v2"), "unexpected HELLO ack: {line}");
        line.clear();
        let request = if i < filtered {
            format!("SUBSCRIBE every=1 ids=0..{filter_hi}\n")
        } else {
            "SUBSCRIBE every=1\n".to_owned()
        };
        reader
            .get_mut()
            .write_all(request.as_bytes())
            .expect("subscribe");
        reader.read_line(&mut line).expect("subscribe ack");
        assert!(
            line.starts_with("OK subscribed"),
            "unexpected SUBSCRIBE ack: {line}"
        );
        // Nothing else arrives until the parent sees READY and starts
        // publishing, so unwrapping the (drained) BufReader loses no
        // buffered bytes.
        let stream = reader.into_inner();
        stream
            .set_nonblocking(true)
            .expect("nonblocking subscriber");
        socks.push(stream);
    }
    // Rust's stdout is line-buffered even into a pipe, so the parent
    // sees this immediately.
    println!("READY");

    let mut poller = rms_net::Poller::new().expect("child poller");
    for (i, s) in socks.iter().enumerate() {
        poller
            .register(s.as_raw_fd(), rms_net::Token(i), rms_net::Interest::READ)
            .expect("register subscriber");
    }
    let mut events: Vec<rms_net::Event> = Vec::new();
    let mut closed = vec![false; socks.len()];
    let mut open = socks.len();
    let mut lines = 0u64;
    let mut buf = [0u8; 16 * 1024];
    while open > 0 {
        poller.wait(&mut events, None).expect("child poll");
        for ev in &events {
            let i = ev.token.0;
            if closed[i] {
                continue;
            }
            loop {
                match socks[i].read(&mut buf) {
                    Ok(0) => {
                        closed[i] = true;
                        open -= 1;
                        let _ = poller.deregister(socks[i].as_raw_fd());
                        break;
                    }
                    Ok(n) => lines += buf[..n].iter().filter(|&&b| b == b'\n').count() as u64,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        closed[i] = true;
                        open -= 1;
                        let _ = poller.deregister(socks[i].as_raw_fd());
                        break;
                    }
                }
            }
        }
    }
    println!("DELIVERED {lines}");
}

/// Fanout discipline: see the module docs. Asserts the encode-once
/// contract from the server's own metrics and that every subscriber
/// received every publish, so the phase doubles as the ≥N-subscriber
/// acceptance check.
fn run_fanout(initial: &[Point], sc: Scenario, subs: usize, publishes: u64) -> FanoutOutcome {
    rms_net::raise_nofile_limit(1 << 20).expect("raise fd limit");
    let service = RmsService::start(sc.builder(), initial.to_vec(), sc.serve_config())
        .expect("valid bench configuration");
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server = std::thread::spawn(move || server.run().expect("server run"));

    let filtered = subs / 2;
    let mut child = Command::new(std::env::current_exe().expect("current exe"))
        .arg("--fanout-child")
        .args(["--addr", &addr.to_string()])
        .args(["--subs", &subs.to_string()])
        .args(["--filtered", &filtered.to_string()])
        .args(["--filter-hi", &FANOUT_FILTER_HI.to_string()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fanout child");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    child_out.read_line(&mut line).expect("child READY");
    assert_eq!(line.trim(), "READY", "fanout child failed to subscribe");

    let mut probe = RmsClient::connect(addr)
        .expect("probe connect")
        .subscribe(1)
        .expect("probe subscribe");
    let mut writer = RmsClient::connect(addr).expect("writer connect");
    assert_eq!(writer.hello().version, 2, "server must negotiate v2");
    let mut stream = OpStream::new(initial, sc.d, 99);
    let mut delivery = ReadTally::default();
    for _ in 0..publishes {
        let op = stream.next_client_op();
        let t = Instant::now();
        writer.submit(&op).expect("pulse op");
        probe
            .next_delta()
            .expect("probe delta")
            .expect("stream open before shutdown");
        delivery.record(t.elapsed());
    }

    // The encode-once pin, from the server's own counters: one
    // unfiltered encode per publish no matter how many subscribers,
    // one filtered encode per publish for the swarm's single distinct
    // filter. With KRMS_METRICS_DISABLED=1 the registry's counters are
    // no-ops, so the pin can only be asserted when they're live.
    let metrics_text = writer.metrics().expect("metrics");
    let unfiltered_encodes = metric_value(
        &metrics_text,
        "rms_net_delta_encodes_total",
        "kind=\"unfiltered\"",
    );
    let filtered_encodes = metric_value(
        &metrics_text,
        "rms_net_delta_encodes_total",
        "kind=\"filtered\"",
    );
    if std::env::var_os("KRMS_METRICS_DISABLED").is_none() {
        assert_eq!(
            unfiltered_encodes, publishes,
            "encode-once violated: {unfiltered_encodes} unfiltered encodes over {publishes} \
             publishes"
        );
        if filtered > 0 {
            assert_eq!(
                filtered_encodes, publishes,
                "filter cache missed: {filtered_encodes} filtered encodes over {publishes} \
                 publishes of one distinct filter"
            );
        }
    }

    writer.shutdown().expect("shutdown ack");
    // The backend's graceful drain can publish trailing deltas after the
    // pulse loop's last submit (a final rebuild epoch, for instance). The
    // probe rides the same stream as the swarm, so draining it to EOF
    // gives the exact total publish count every subscriber saw.
    let mut total_publishes = publishes;
    while probe.next_delta().expect("probe drain").is_some() {
        total_publishes += 1;
    }
    server.join().expect("server thread");
    line.clear();
    child_out.read_line(&mut line).expect("child DELIVERED");
    let delivered_lines: u64 = line
        .trim()
        .strip_prefix("DELIVERED ")
        .expect("child report")
        .parse()
        .expect("child line count");
    child.wait().expect("child exit");
    assert_eq!(
        delivered_lines,
        subs as u64 * total_publishes,
        "delta lines lost in fanout ({total_publishes} total publishes)"
    );
    FanoutOutcome {
        subscribers: subs,
        filtered,
        publishes,
        unfiltered_encodes,
        filtered_encodes,
        delivered_lines,
        delivery,
    }
}

fn report_fanout(o: &FanoutOutcome) {
    println!(
        "\nfanout     subs={} ({} filtered)   publishes={}   encodes/publish: \
         {:.2} unfiltered + {:.2} filtered   delivery p50={:.0}us p99={:.0}us   \
         delivered_lines={}",
        o.subscribers,
        o.filtered,
        o.publishes,
        o.unfiltered_encodes as f64 / o.publishes.max(1) as f64,
        o.filtered_encodes as f64 / o.publishes.max(1) as f64,
        o.delivery.quantile_us(0.50),
        o.delivery.quantile_us(0.99),
        o.delivered_lines,
    );
}

/// The fanout row for `--json`.
fn fanout_json(o: &FanoutOutcome) -> String {
    JsonObject::new()
        .str("phase", "fanout")
        .int("subscribers", o.subscribers as u64)
        .int("filtered_subscribers", o.filtered as u64)
        .int("publishes", o.publishes)
        .int("unfiltered_encodes", o.unfiltered_encodes)
        .int("filtered_encodes", o.filtered_encodes)
        .num(
            "encodes_per_publish",
            o.unfiltered_encodes as f64 / o.publishes.max(1) as f64,
        )
        .int("delivered_lines", o.delivered_lines)
        .num("delivery_p50_us", o.delivery.quantile_us(0.50))
        .num("delivery_p99_us", o.delivery.quantile_us(0.99))
        .num("delivery_p999_us", o.delivery.quantile_us(0.999))
        .finish()
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("--fanout-child") {
        fanout_child();
        return;
    }
    let smoke = std::env::var_os("KRMS_BENCH_SMOKE").is_some();
    let (n_def, max_m_def, secs_def, readers_def, shards_def) = if smoke {
        (400usize, 256usize, 0.25f64, 2usize, 2usize)
    } else {
        (5_000, 1 << 12, 2.0, 4, 4)
    };
    let n: usize = flag("--n", n_def);
    let d: usize = flag("--d", 6);
    let k: usize = flag("--k", 3);
    let r: usize = flag("--r", 50);
    let eps: f64 = flag("--eps", 0.05);
    let max_m: usize = flag("--max-m", max_m_def);
    let readers: usize = flag("--readers", readers_def);
    let secs: f64 = flag("--secs", secs_def);
    let shards: usize = flag("--shards", shards_def);
    let wire_batch: usize = flag("--wire-batch", 128usize);
    let (fanout_subs_def, fanout_pubs_def) = if smoke {
        (200usize, 50u64)
    } else {
        (10_000, 200)
    };
    let fanout_subs: usize = flag("--fanout-subs", fanout_subs_def);
    let fanout_pubs: u64 = flag("--fanout-pubs", fanout_pubs_def);
    // Per-reader pacing: by default each reader issues ~2 000 queries/s
    // (a steady serving load) so reader CPU pressure does not drown the
    // applier on small hosts; `--read-qps 0` makes readers spin flat out
    // to measure raw snapshot throughput instead.
    let read_qps: u64 = flag("--read-qps", 2_000u64);
    let json_path: String = flag("--json", String::new());
    let pace = if read_qps == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(1.0 / read_qps as f64)
    };
    let window = Duration::from_secs_f64(secs);
    println!(
        "serve bench — n={n}, d={d}, k={k}, r={r}, eps={eps}, max_m={max_m}, \
         readers={readers}, read_qps={read_qps}/reader, window={secs}s{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rng = StdRng::seed_from_u64(42);
    let initial = generators::independent(&mut rng, n, d);
    let est = RegretEstimator::new(d, if smoke { 500 } else { 2_000 }.max(d), 0xE7A1);

    println!(
        "\ndiscipline  writes_per_s   reads_per_s   read_mean_us   read_p99_us   read_p999_us   mrr_{k}   notes"
    );
    let scenario = Scenario {
        d,
        k,
        r,
        eps,
        max_m,
        readers,
        pace,
        window,
    };
    let mut phases = JsonArray::new();
    let blocking = run_blocking(&initial, scenario, &est);
    report("blocking", &blocking);
    phases.push(&phase_json("blocking", &blocking));
    let service = run_backend(
        &initial,
        scenario,
        RmsService::start(scenario.builder(), initial.clone(), scenario.serve_config())
            .expect("valid bench configuration"),
        &est,
    );
    report("service", &service);
    phases.push(&phase_json("service", &service));
    let sharded = (shards > 1).then(|| {
        let backend = ShardedRmsService::start(
            scenario.builder(),
            initial.clone(),
            scenario.serve_config(),
            shards,
        )
        .expect("valid bench configuration");
        let outcome = run_backend(&initial, scenario, backend, &est);
        report("sharded", &outcome);
        outcome
    });
    if let Some(sharded) = &sharded {
        phases.push(&phase_json("sharded", sharded));
    }
    if wire_batch > 0 {
        let tcp = run_tcp(&initial, scenario, wire_batch, &est);
        report("tcp", &tcp);
        phases.push(&phase_json("tcp", &tcp));
    }
    if fanout_subs > 0 {
        let fanout = run_fanout(&initial, scenario, fanout_subs, fanout_pubs);
        report_fanout(&fanout);
        phases.push(&fanout_json(&fanout));
    }

    if !json_path.is_empty() {
        let params = JsonObject::new()
            .int("n", n as u64)
            .int("d", d as u64)
            .int("k", k as u64)
            .int("r", r as u64)
            .num("eps", eps)
            .int("max_m", max_m as u64)
            .int("readers", readers as u64)
            .int("shards", shards as u64)
            .int("wire_batch", wire_batch as u64)
            .int("fanout_subs", fanout_subs as u64)
            .int("fanout_pubs", fanout_pubs)
            .int("read_qps", read_qps)
            .num("secs", secs)
            .raw("smoke", if smoke { "true" } else { "false" })
            .finish();
        let doc = JsonObject::new()
            .str("bench", "serve")
            .raw("params", &params)
            .raw("phases", &phases.finish())
            .finish();
        write_json(std::path::Path::new(&json_path), &doc);
    }

    if blocking.reads.queries > 0 && service.reads.queries > 0 {
        println!(
            "\nreader speedup: {:.1}x QPS, {:.0}x p99.9 latency; ingestion {:.2}x",
            (service.reads.queries as f64 / service.secs)
                / (blocking.reads.queries as f64 / blocking.secs),
            blocking.reads.quantile_us(0.999) / service.reads.quantile_us(0.999).max(1e-9),
            (service.ops_applied as f64 / service.secs)
                / (blocking.ops_applied as f64 / blocking.secs).max(1.0),
        );
    }
    if let Some(sharded) = sharded {
        println!(
            "sharded ingestion: {:.2}x the single applier ({:.0} vs {:.0} writes/s) \
             at mrr {:.4} vs {:.4}",
            (sharded.ops_applied as f64 / sharded.secs)
                / (service.ops_applied as f64 / service.secs).max(1.0),
            sharded.ops_applied as f64 / sharded.secs,
            service.ops_applied as f64 / service.secs,
            sharded.mrr,
            service.mrr,
        );
    }
}
