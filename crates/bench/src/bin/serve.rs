//! Reader throughput under sustained ingestion: the serving subsystem's
//! headline experiment.
//!
//! Two disciplines absorb the same steady-state churn (alternating fresh
//! inserts and oldest-tuple deletions) for a fixed wall-clock window
//! while reader threads query the current solution as fast as they can:
//!
//! * **service** — `rms_serve::RmsService`: one applier thread drains a
//!   bounded op queue into adaptive `apply_batch` calls and publishes
//!   immutable snapshots; readers clone an `Arc` and never touch the
//!   engine.
//! * **blocking** — the pre-serve architecture: the engine behind a
//!   `Mutex`, the writer locking per operation, every reader locking to
//!   call `result()`.
//!
//! The interesting read is reader QPS and worst-case read latency during
//! ingestion: the service keeps reads at near-constant nanosecond-scale
//! latency (an `Arc` clone) regardless of write pressure, while the
//! blocking loop's readers stall behind maintenance.
//!
//! A third discipline measures scale-out:
//!
//! * **sharded** — `rms_serve::ShardedRmsService`: `S` independent
//!   appliers, each owning the id partition `id % S`, one writer thread
//!   per shard, readers merging the per-shard snapshots. The headline
//!   here is ingestion throughput versus the single applier at equal
//!   result quality (both report the Monte-Carlo max-regret-ratio of
//!   their final solution).
//!
//! ```sh
//! cargo run --release -p rms-bench --bin serve -- \
//!     [--n N] [--d D] [--k K] [--r R] [--eps E] [--max-m M]
//!     [--readers T] [--secs S] [--read-qps Q]   (Q=0: readers spin)
//!     [--shards S]                              (0 disables the sharded phase)
//! ```
//!
//! Set `KRMS_BENCH_SMOKE=1` (as CI does) for a sub-second configuration
//! that just proves the binary works.

use fdrms::{FdRms, Op};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_data::generators;
use rms_eval::RegretEstimator;
use rms_geom::{Point, PointId};
use rms_serve::{RmsService, ServeConfig, ShardedRmsService};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Endless steady-state churn: alternating fresh inserts and deletions
/// of the oldest live tuple, database size constant. `partition` builds
/// a stream confined to one residue class of `id % shards`, so per-shard
/// writer threads manage disjoint id sets.
struct OpStream {
    live: VecDeque<PointId>,
    next: PointId,
    step: u64,
    rng: StdRng,
    d: usize,
    flip: bool,
}

impl OpStream {
    fn new(initial: &[Point], d: usize, seed: u64) -> Self {
        Self::partition(initial, d, seed, 0, 1)
    }

    fn partition(initial: &[Point], d: usize, seed: u64, shard: u64, shards: u64) -> Self {
        Self {
            live: initial
                .iter()
                .map(Point::id)
                .filter(|id| id % shards == shard)
                .collect(),
            next: 10_000_000 + shard,
            step: shards,
            rng: StdRng::seed_from_u64(seed),
            d,
            flip: false,
        }
    }

    fn next_op(&mut self) -> Op {
        self.flip = !self.flip;
        if self.flip {
            let p = Point::new_unchecked(self.next, (0..self.d).map(|_| self.rng.gen()).collect());
            self.live.push_back(self.next);
            self.next += self.step;
            Op::Insert(p)
        } else {
            Op::Delete(self.live.pop_front().expect("database never drains"))
        }
    }
}

/// Per-reader tally: queries served, mean latency, and a log₂ latency
/// histogram (bucket `i` covers `[2^i, 2^(i+1))` ns) for percentiles —
/// raw maxima are dominated by scheduler preemption at these
/// granularities.
#[derive(Clone, Copy)]
struct ReadTally {
    queries: u64,
    total_ns: u64,
    max_ns: u64,
    buckets: [u64; 64],
}

impl Default for ReadTally {
    fn default() -> Self {
        Self {
            queries: 0,
            total_ns: 0,
            max_ns: 0,
            buckets: [0; 64],
        }
    }
}

impl ReadTally {
    fn record(&mut self, elapsed: Duration) {
        let ns = (elapsed.as_nanos() as u64).max(1);
        self.queries += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        self.buckets[63 - ns.leading_zeros() as usize] += 1;
    }

    fn merge(tallies: &[ReadTally]) -> ReadTally {
        tallies.iter().fold(ReadTally::default(), |mut acc, t| {
            acc.queries += t.queries;
            acc.total_ns += t.total_ns;
            acc.max_ns = acc.max_ns.max(t.max_ns);
            for (a, b) in acc.buckets.iter_mut().zip(t.buckets) {
                *a += b;
            }
            acc
        })
    }

    fn mean_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.queries as f64 / 1e3
        }
    }

    /// Upper edge of the histogram bucket containing the given quantile,
    /// microseconds.
    fn quantile_us(&self, q: f64) -> f64 {
        let target = (self.queries as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target && count > 0 {
                return 2f64.powi(i as i32 + 1) / 1e3;
            }
        }
        self.max_ns as f64 / 1e3
    }
}

/// Shared parameters of one benchmark phase.
#[derive(Clone, Copy)]
struct Scenario {
    d: usize,
    k: usize,
    r: usize,
    eps: f64,
    max_m: usize,
    readers: usize,
    /// Per-reader inter-query sleep (zero = spin flat out).
    pace: Duration,
    window: Duration,
}

struct PhaseOutcome {
    ops_applied: u64,
    reads: ReadTally,
    secs: f64,
    /// Monte-Carlo max-regret-ratio of the final published solution
    /// against the final live database — the "equal result quality"
    /// check across disciplines.
    mrr: f64,
    detail: String,
}

fn report(name: &str, o: &PhaseOutcome) {
    println!(
        "{name:<9}  {:>9.0}   {:>12.0}   {:>12.2}   {:>10.2}   {:>10.2}   {:>7.4}   {}",
        o.ops_applied as f64 / o.secs,
        o.reads.queries as f64 / o.secs,
        o.reads.mean_us(),
        o.reads.quantile_us(0.99),
        o.reads.quantile_us(0.999),
        o.mrr,
        o.detail
    );
}

/// Sharded discipline: `S` independent appliers behind the id router,
/// one writer thread per shard, readers merging per-shard snapshots.
fn run_sharded(
    initial: &[Point],
    sc: Scenario,
    shards: usize,
    est: &RegretEstimator,
) -> PhaseOutcome {
    let Scenario {
        d,
        k,
        r,
        eps,
        max_m,
        readers,
        pace,
        window,
    } = sc;
    let service = ShardedRmsService::start(
        FdRms::builder(d)
            .k(k)
            .r(r)
            .epsilon(eps)
            .max_utilities(max_m)
            .seed(7),
        initial.to_vec(),
        ServeConfig {
            queue_capacity: 4_096,
            max_batch: 1_024,
            ..ServeConfig::default()
        },
        shards,
    )
    .expect("valid bench configuration");
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = ReadTally::default();
                let mut last_epochs: Vec<u64> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let snap = handle.snapshot();
                    tally.record(t.elapsed());
                    if !last_epochs.is_empty() {
                        assert!(
                            snap.epochs.iter().zip(&last_epochs).all(|(n, l)| n >= l),
                            "per-shard epochs regressed"
                        );
                    }
                    last_epochs = snap.epochs.clone();
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                tally
            })
        })
        .collect();

    // One writer per shard, each confined to its own id residue class
    // (its slice of the initial ids plus a disjoint fresh-id sequence),
    // all submitting until the window closes.
    let streams: Vec<OpStream> = (0..shards)
        .map(|w| OpStream::partition(initial, d, 99 + w as u64, w as u64, shards as u64))
        .collect();
    let start = Instant::now();
    let writer_handles: Vec<_> = streams
        .into_iter()
        .map(|mut stream| {
            let handle = service.handle();
            std::thread::spawn(move || {
                let mut submitted = 0u64;
                while start.elapsed() < window {
                    handle.submit(stream.next_op()).expect("service alive");
                    submitted += 1;
                }
                submitted
            })
        })
        .collect();
    let submitted: u64 = writer_handles
        .into_iter()
        .map(|h| h.join().expect("writer thread"))
        .sum();
    let handle = service.handle();
    let fds = service.shutdown();
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_rejected, 0);
    assert_eq!(snap.stats.ops_applied, submitted);
    let live: Vec<Point> = fds.iter().flat_map(FdRms::live_points).collect();
    let mrr = est.mrr(&live, &snap.result, k);
    PhaseOutcome {
        ops_applied: snap.stats.ops_applied,
        reads: ReadTally::merge(&tallies),
        secs,
        mrr,
        detail: format!(
            "shards={shards} epochs={:?} max_coalesced={} avg_apply_ms={:.3}",
            snap.epochs,
            snap.stats.max_coalesced,
            snap.stats.avg_apply_ms()
        ),
    }
}

/// Service discipline: applier thread + snapshot readers.
fn run_service(initial: &[Point], sc: Scenario, est: &RegretEstimator) -> PhaseOutcome {
    let Scenario {
        d,
        k,
        r,
        eps,
        max_m,
        readers,
        pace,
        window,
    } = sc;
    let service = RmsService::start(
        FdRms::builder(d)
            .k(k)
            .r(r)
            .epsilon(eps)
            .max_utilities(max_m)
            .seed(7),
        initial.to_vec(),
        ServeConfig {
            queue_capacity: 4_096,
            max_batch: 1_024,
            ..ServeConfig::default()
        },
    )
    .expect("valid bench configuration");
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let handle = service.handle();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = ReadTally::default();
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let snap = handle.snapshot();
                    tally.record(t.elapsed());
                    assert!(snap.epoch >= last_epoch, "epochs regressed");
                    last_epoch = snap.epoch;
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                tally
            })
        })
        .collect();

    let mut stream = OpStream::new(initial, d, 99);
    let handle = service.handle();
    let start = Instant::now();
    while start.elapsed() < window {
        handle.submit(stream.next_op()).expect("service alive");
    }
    let fd = service.shutdown();
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let snap = handle.snapshot();
    assert_eq!(snap.stats.ops_rejected, 0);
    let mrr = est.mrr(&fd.live_points(), &snap.result, sc.k);
    drop(fd);
    PhaseOutcome {
        ops_applied: snap.stats.ops_applied,
        reads: ReadTally::merge(&tallies),
        secs,
        mrr,
        detail: format!(
            "epochs={} max_coalesced={} avg_apply_ms={:.3}",
            snap.epoch,
            snap.stats.max_coalesced,
            snap.stats.avg_apply_ms()
        ),
    }
}

/// Blocking discipline: one engine behind a mutex, per-op writer, readers
/// locking for every query.
fn run_blocking(initial: &[Point], sc: Scenario, est: &RegretEstimator) -> PhaseOutcome {
    let Scenario {
        d,
        k,
        r,
        eps,
        max_m,
        readers,
        pace,
        window,
    } = sc;
    let fd = FdRms::builder(d)
        .k(k)
        .r(r)
        .epsilon(eps)
        .max_utilities(max_m)
        .seed(7)
        .build(initial.to_vec())
        .expect("valid bench configuration");
    let fd = Arc::new(Mutex::new(fd));
    let stop = Arc::new(AtomicBool::new(false));

    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let fd = Arc::clone(&fd);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = ReadTally::default();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    let q = fd.lock().expect("engine lock").result();
                    tally.record(t.elapsed());
                    std::hint::black_box(q.len());
                    if !pace.is_zero() {
                        std::thread::sleep(pace);
                    }
                }
                tally
            })
        })
        .collect();

    let mut stream = OpStream::new(initial, d, 99);
    let mut applied = 0u64;
    let start = Instant::now();
    while start.elapsed() < window {
        let op = stream.next_op();
        let mut guard = fd.lock().expect("engine lock");
        match op {
            Op::Insert(p) => guard.insert(p).expect("fresh id"),
            Op::Delete(id) => guard.delete(id).expect("live id"),
            Op::Update(p) => guard.update(p).expect("live id"),
        }
        applied += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ReadTally> = reader_handles
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .collect();
    let mrr = {
        let guard = fd.lock().expect("engine lock");
        est.mrr(&guard.live_points(), &guard.result(), sc.k)
    };
    PhaseOutcome {
        ops_applied: applied,
        reads: ReadTally::merge(&tallies),
        secs,
        mrr,
        detail: String::new(),
    }
}

fn main() {
    let smoke = std::env::var_os("KRMS_BENCH_SMOKE").is_some();
    let (n_def, max_m_def, secs_def, readers_def, shards_def) = if smoke {
        (400usize, 256usize, 0.25f64, 2usize, 2usize)
    } else {
        (5_000, 1 << 12, 2.0, 4, 4)
    };
    let n: usize = flag("--n", n_def);
    let d: usize = flag("--d", 6);
    let k: usize = flag("--k", 3);
    let r: usize = flag("--r", 50);
    let eps: f64 = flag("--eps", 0.05);
    let max_m: usize = flag("--max-m", max_m_def);
    let readers: usize = flag("--readers", readers_def);
    let secs: f64 = flag("--secs", secs_def);
    let shards: usize = flag("--shards", shards_def);
    // Per-reader pacing: by default each reader issues ~2 000 queries/s
    // (a steady serving load) so reader CPU pressure does not drown the
    // applier on small hosts; `--read-qps 0` makes readers spin flat out
    // to measure raw snapshot throughput instead.
    let read_qps: u64 = flag("--read-qps", 2_000u64);
    let pace = if read_qps == 0 {
        Duration::ZERO
    } else {
        Duration::from_secs_f64(1.0 / read_qps as f64)
    };
    let window = Duration::from_secs_f64(secs);
    println!(
        "serve bench — n={n}, d={d}, k={k}, r={r}, eps={eps}, max_m={max_m}, \
         readers={readers}, read_qps={read_qps}/reader, window={secs}s{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rng = StdRng::seed_from_u64(42);
    let initial = generators::independent(&mut rng, n, d);
    let est = RegretEstimator::new(d, if smoke { 500 } else { 2_000 }.max(d), 0xE7A1);

    println!(
        "\ndiscipline  writes_per_s   reads_per_s   read_mean_us   read_p99_us   read_p999_us   mrr_{k}   notes"
    );
    let scenario = Scenario {
        d,
        k,
        r,
        eps,
        max_m,
        readers,
        pace,
        window,
    };
    let blocking = run_blocking(&initial, scenario, &est);
    report("blocking", &blocking);
    let service = run_service(&initial, scenario, &est);
    report("service", &service);
    let sharded = (shards > 1).then(|| {
        let outcome = run_sharded(&initial, scenario, shards, &est);
        report("sharded", &outcome);
        outcome
    });

    if blocking.reads.queries > 0 && service.reads.queries > 0 {
        println!(
            "\nreader speedup: {:.1}x QPS, {:.0}x p99.9 latency; ingestion {:.2}x",
            (service.reads.queries as f64 / service.secs)
                / (blocking.reads.queries as f64 / blocking.secs),
            blocking.reads.quantile_us(0.999) / service.reads.quantile_us(0.999).max(1e-9),
            (service.ops_applied as f64 / service.secs)
                / (blocking.ops_applied as f64 / blocking.secs).max(1.0),
        );
    }
    if let Some(sharded) = sharded {
        println!(
            "sharded ingestion: {:.2}x the single applier ({:.0} vs {:.0} writes/s) \
             at mrr {:.4} vs {:.4}",
            (sharded.ops_applied as f64 / sharded.secs)
                / (service.ops_applied as f64 / service.secs).max(1.0),
            sharded.ops_applied as f64 / sharded.secs,
            service.ops_applied as f64 / service.secs,
            sharded.mrr,
            service.mrr,
        );
    }
}
