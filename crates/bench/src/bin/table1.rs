//! Table I: statistics of datasets (n, d, #skylines).
//!
//! ```sh
//! cargo run --release -p rms-bench --bin table1 [-- --scale 0.05 | --full]
//! ```
//!
//! Paper reference values (full scale): BB 200, AQ 21 065, CT 77 217,
//! Movie 3 293 skyline tuples. At reduced scale the *fractions* are
//! comparable; the binary prints both.

use rms_bench::Scale;
use rms_data::NamedDataset;
use rms_skyline::skyline;

fn main() {
    let scale = Scale::from_args();
    println!("Table I — statistics of datasets ({})", scale.banner());
    println!(
        "{:<8} {:>9} {:>4} {:>10} {:>10}  paper (full scale)",
        "dataset", "n", "d", "#skylines", "fraction"
    );
    let paper = [
        ("BB", "200"),
        ("AQ", "21065"),
        ("CT", "77217"),
        ("Movie", "3293"),
        ("Indep", "see Fig. 4"),
        ("AntiCor", "see Fig. 4"),
    ];
    for (ds, (_, paper_sky)) in NamedDataset::ALL.into_iter().zip(paper) {
        let spec = ds.spec().scaled(scale.frac);
        let points = spec.generate();
        let sky = skyline(&points);
        println!(
            "{:<8} {:>9} {:>4} {:>10} {:>9.2}%  {}",
            ds.name(),
            spec.n,
            spec.d,
            sky.len(),
            100.0 * sky.len() as f64 / spec.n as f64,
            paper_sky
        );
    }
}
