//! Batched vs sequential maintenance throughput (the batch update
//! engine's headline experiment).
//!
//! Runs one mixed insert/delete/update stream over an independent dataset
//! through FD-RMS twice per batch size: once as the classic per-operation
//! loop, once chunked through `FdRms::apply_batch`. Reports wall-clock,
//! throughput, and the speedup over the sequential discipline, plus the
//! final result quality of every run (they must all sit in the same mrr
//! regime — batching trades no quality for speed).
//!
//! ```sh
//! cargo run --release -p rms-bench --bin batch -- \
//!     [--n N] [--d D] [--r R] [--ops N] [--eps E] [--max-m M] [--threads T]
//!     [--json PATH]   (emit a machine-readable per-phase report)
//! ```

use rand::{rngs::StdRng, SeedableRng};
use rms_bench::report::{write_json, JsonArray, JsonObject};
use rms_data::{generators, mixed_workload, MixedConfig, Operation};
use rms_eval::{RegretEstimator, Stopwatch};

fn flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

// Mirrors `krms::engine_ops` (the facade's canonical bridge); duplicated
// here because rms-bench sits below the facade in the crate graph. Keep
// the two in sync when `Operation` grows variants.
fn engine_ops(ops: &[Operation]) -> Vec<fdrms::Op> {
    ops.iter()
        .map(|op| match op {
            Operation::Insert(p) => fdrms::Op::Insert(p.clone()),
            Operation::Delete(id) => fdrms::Op::Delete(*id),
            Operation::Update(p) => fdrms::Op::Update(p.clone()),
        })
        .collect()
}

fn main() {
    // Defaults sit in the maintenance-heavy regime (deep k, wide ε-band,
    // large r) where per-op maintenance dominates — the regime the batch
    // engine targets. At feather-weight settings (k=1, tiny ε) both
    // disciplines are bounded by the shared cone-probe cost and batching
    // only breaks even; pass --k 1 --eps 0.02 --n 20000 to see that end.
    let n: usize = flag("--n", 5_000);
    let d: usize = flag("--d", 6);
    let k: usize = flag("--k", 3);
    let r: usize = flag("--r", 50);
    let ops: usize = flag("--ops", 4_000);
    let eps: f64 = flag("--eps", 0.05);
    let max_m: usize = flag("--max-m", 1 << 12);
    let threads: usize = flag(
        "--threads",
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
    let json_path: String = flag("--json", String::new());
    println!("batch engine throughput — n={n}, d={d}, k={k}, r={r}, ops={ops}, eps={eps}, max_m={max_m}, threads={threads}");

    let mut rng = StdRng::seed_from_u64(42);
    let points = generators::independent(&mut rng, n, d);
    let cfg = MixedConfig {
        ops,
        ..MixedConfig::default()
    };
    let workload = mixed_workload(&mut rng, points, cfg);
    let live = workload.final_state();
    let est = RegretEstimator::new(d, 10_000, 0xBA7C);
    let build = || {
        fdrms::FdRms::builder(d)
            .k(k)
            .r(r)
            .epsilon(eps)
            .max_utilities(max_m)
            .seed(7)
            .batch_threads(threads)
            .build(workload.initial.clone())
            .expect("valid configuration")
    };

    println!("\ndiscipline   batch   total_ms    ops_per_s   speedup   mrr_1");
    // Sequential baseline: the classic per-op loop.
    let mut fd = build();
    let sw = Stopwatch::start();
    for op in &workload.operations {
        match op {
            Operation::Insert(p) => fd.insert(p.clone()).expect("fresh id"),
            Operation::Delete(id) => fd.delete(*id).expect("live id"),
            Operation::Update(p) => fd.update(p.clone()).expect("live id"),
        }
    }
    let seq_ms = sw.elapsed_ms();
    let seq_stats = fd.stats();
    let total_ops = workload.operations.len() as f64;
    let seq_mrr = est.mrr(&live, &fd.result(), 1);
    let mut phases = JsonArray::new();
    phases.push(
        &JsonObject::new()
            .str("phase", "sequential")
            .int("batch", 1)
            .num("total_ms", seq_ms)
            .num("ops_per_s", total_ops * 1_000.0 / seq_ms)
            .num("speedup", 1.0)
            .num("mrr", seq_mrr)
            .finish(),
    );
    println!(
        "sequential   {:>5}   {:>8.1}   {:>10.0}   {:>6.2}x   {:.4}",
        1,
        seq_ms,
        total_ops * 1_000.0 / seq_ms,
        1.0,
        seq_mrr
    );
    eprintln!(
        "  [sequential: affected={}, requeries={}, stabilize_moves={}]",
        seq_stats.affected_utilities,
        seq_stats.topk_requeries,
        fd.stabilize_moves()
    );

    for batch in [10usize, 100, 1_000] {
        if batch > workload.operations.len() {
            break;
        }
        let mut fd = build();
        let mut affected = 0usize;
        let mut requeried = 0usize;
        let sw = Stopwatch::start();
        for chunk in workload.batches(batch) {
            let rep = fd
                .apply_batch(engine_ops(chunk))
                .expect("workload ops are valid");
            affected += rep.affected_utilities;
            requeried += rep.requeried_utilities;
        }
        let ms = sw.elapsed_ms();
        let mrr = est.mrr(&live, &fd.result(), 1);
        phases.push(
            &JsonObject::new()
                .str("phase", "batched")
                .int("batch", batch as u64)
                .num("total_ms", ms)
                .num("ops_per_s", total_ops * 1_000.0 / ms)
                .num("speedup", seq_ms / ms)
                .num("mrr", mrr)
                .finish(),
        );
        println!(
            "batched      {:>5}   {:>8.1}   {:>10.0}   {:>6.2}x   {:.4}",
            batch,
            ms,
            total_ops * 1_000.0 / ms,
            seq_ms / ms,
            mrr
        );
        eprintln!(
            "  [batched {batch}: affected={affected}, requeries={requeried}, stabilize_moves={}]",
            fd.stabilize_moves()
        );
    }

    if !json_path.is_empty() {
        let params = JsonObject::new()
            .int("n", n as u64)
            .int("d", d as u64)
            .int("k", k as u64)
            .int("r", r as u64)
            .int("ops", ops as u64)
            .num("eps", eps)
            .int("max_m", max_m as u64)
            .int("threads", threads as u64)
            .finish();
        let doc = JsonObject::new()
            .str("bench", "batch")
            .raw("params", &params)
            .raw("phases", &phases.finish())
            .finish();
        write_json(std::path::Path::new(&json_path), &doc);
    }
}
