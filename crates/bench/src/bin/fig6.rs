//! Fig. 6: update time and maximum regret ratios with varying result size
//! r (k = 1), all eight algorithms on all six datasets.
//!
//! Paper grid: r ∈ {10, 40, 70, 100} (BB: {5, 10, 15, 20, 25}).
//!
//! ```sh
//! cargo run --release -p rms-bench --bin fig6 \
//!     [-- --scale 0.02 --ops 300 --algos FD-RMS,Sphere,HS --save]
//! ```
//!
//! The slow baselines (Greedy, GeoGreedy at high d; DMM at d > 7) dominate
//! the runtime; restrict with `--algos` for quick runs.

use rms_bench::{maybe_save, run_cells, Algo, Cell, Scale};
use rms_data::NamedDataset;
use rms_eval::format_table;

fn main() {
    let scale = Scale::from_args();
    let algos = Algo::filter_from_args().unwrap_or_else(|| Algo::ALL.to_vec());
    println!(
        "Fig. 6 — varying the result size r, k = 1 ({})",
        scale.banner()
    );
    println!(
        "algorithms: {}",
        algos
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut cells = Vec::new();
    for ds in NamedDataset::ALL {
        let r_grid: &[usize] = if ds == NamedDataset::Bb {
            &[5, 10, 15, 20, 25]
        } else {
            &[10, 40, 70, 100]
        };
        for &r in r_grid {
            for &algo in &algos {
                // The paper's DMM variants exhaust memory at d > 7 and
                // GeoGreedy cannot scale past d = 7 — skip those cells,
                // as the original figures leave them blank.
                let d = ds.spec().d;
                if d > 7 && matches!(algo, Algo::DmmRrms | Algo::DmmGreedy | Algo::GeoGreedy) {
                    continue;
                }
                cells.push(Cell {
                    experiment: "fig6".into(),
                    spec: ds.spec().scaled(scale.frac),
                    algo,
                    k: 1,
                    r,
                    eps: 0.02,
                    param: "r".into(),
                    value: r as f64,
                });
            }
        }
    }
    let records = run_cells(&cells, scale);
    println!("{}", format_table(&records));
    maybe_save("fig6", &records);
    println!(
        "Expected shape (paper): FD-RMS fastest overall (up to 3 orders of \
         magnitude vs Sphere on large-skyline datasets like CT/AntiCor), \
         Greedy slowest; FD-RMS mrr within ~0.01 of the best static algorithm."
    );
}
