//! Minimal machine-readable report emission for the perf-gating benches.
//!
//! The `batch` and `serve` binaries accept `--json PATH` and write one
//! JSON object each (per-phase throughput, latency quantiles where the
//! phase has readers, and mrr). `scripts/bench_report.sh` assembles those
//! fragments into the checked-in `BENCH_7.json` that perf PRs diff
//! against. Hand-rolled writer: the workspace deliberately carries no
//! JSON dependency, and the schema is flat enough that a tiny builder is
//! clearer than a serializer.

use std::fmt::Write as _;

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental JSON object builder.
#[derive(Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&json_str(key));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push_str(&json_str(v));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        self.buf.push_str(&json_f64(v));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental JSON array builder over pre-rendered values.
#[derive(Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pre-rendered JSON value.
    pub fn push(&mut self, v: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(v);
    }

    /// Renders the array.
    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

/// Writes a rendered JSON document to `path` (with a trailing newline),
/// creating parent directories as needed.
pub fn write_json(path: &std::path::Path, doc: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(path, format!("{doc}\n")).expect("write json report");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_render_valid_json() {
        let mut arr = JsonArray::new();
        arr.push(&JsonObject::new().str("phase", "a").num("x", 1.5).finish());
        arr.push(&JsonObject::new().int("n", 7).finish());
        let doc = JsonObject::new()
            .str("bench", "batch")
            .raw("phases", &arr.finish())
            .finish();
        assert_eq!(
            doc,
            r#"{"bench":"batch","phases":[{"phase":"a","x":1.5},{"n":7}]}"#
        );
    }

    #[test]
    fn non_finite_and_escapes() {
        let doc = JsonObject::new()
            .num("nan", f64::NAN)
            .num("inf", f64::INFINITY)
            .str("s", "a\"b\\c\nd")
            .finish();
        assert_eq!(doc, r#"{"nan":null,"inf":null,"s":"a\"b\\c\nd"}"#);
    }
}
