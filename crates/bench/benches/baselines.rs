//! Recompute-latency benches for the static baselines plus skyline
//! computation (`table1_skyline` group: the substrate behind Table I /
//! Fig. 4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rms_baselines::{
    DmmGreedy, DmmRrms, EpsKernel, Greedy, GreedyStar, HittingSet, Sphere, StaticRms,
};
use rms_data::generators;
use rms_geom::Point;
use rms_skyline::{skyline, skyline_bnl};

fn db(seed: u64, n: usize, d: usize) -> Vec<Point> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    generators::anticorrelated(&mut rng, n, d)
}

fn bench_table1_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_skyline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[5_000usize, 20_000] {
        let points = db(1, n, 6);
        group.bench_with_input(BenchmarkId::new("sfs", n), &n, |b, _| {
            b.iter(|| black_box(skyline(&points).len()));
        });
        if n <= 5_000 {
            group.bench_with_input(BenchmarkId::new("bnl", n), &n, |b, _| {
                b.iter(|| black_box(skyline_bnl(&points).len()));
            });
        }
    }
    group.finish();
}

fn bench_static_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_recompute");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let points = db(2, 3_000, 4);
    let sky = skyline(&points);
    let r = 20;
    eprintln!("baseline_recompute: |skyline| = {}", sky.len());

    let algos: Vec<Box<dyn StaticRms>> = vec![
        Box::new(Greedy),
        Box::new(GreedyStar::default()),
        Box::new(DmmRrms::default()),
        Box::new(DmmGreedy::default()),
        Box::new(EpsKernel::default()),
        Box::new(HittingSet::default()),
        Box::new(Sphere::default()),
    ];
    for algo in algos {
        group.bench_function(algo.name(), |b| {
            b.iter(|| black_box(algo.compute(&sky, &points, 1, r).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_skyline, bench_static_recompute);
criterion_main!(benches);
