//! Batched vs sequential update throughput across batch sizes.
//!
//! Each iteration drains one batch of steady-state churn (half inserts of
//! fresh tuples, half deletions of the oldest live tuples, database size
//! constant) either through `FdRms::apply_batch` or through the classic
//! per-operation loop. The interesting read is the *ratio* between the
//! two disciplines at each batch size: the batched path recomputes every
//! affected utility once against the final database and shards that work
//! across threads, while the sequential path pays per-op recomputation
//! and stabilisation.
//!
//! Set `KRMS_BENCH_SMOKE=1` (as CI does) to run a tiny configuration
//! that just proves the bench binary still works.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fdrms::{FdRms, Op};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_data::generators;
use rms_geom::{Point, PointId};
use std::collections::VecDeque;

fn smoke() -> bool {
    std::env::var_os("KRMS_BENCH_SMOKE").is_some()
}

/// Steady-state churn state: a maintained FD-RMS instance plus the queue
/// of live ids, oldest first.
struct Churn {
    fd: FdRms,
    live: VecDeque<PointId>,
    next: PointId,
    rng: StdRng,
    d: usize,
}

impl Churn {
    fn new(seed: u64, n: usize, d: usize, k: usize, r: usize, eps: f64, max_m: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = generators::independent(&mut rng, n, d);
        let live: VecDeque<PointId> = points.iter().map(Point::id).collect();
        let fd = FdRms::builder(d)
            .k(k)
            .r(r)
            .epsilon(eps)
            .max_utilities(max_m)
            .seed(seed)
            .build(points)
            .expect("valid bench configuration");
        Self {
            fd,
            live,
            next: 1_000_000,
            rng,
            d,
        }
    }

    /// One batch of `size` ops: alternating fresh inserts and deletions
    /// of the oldest live tuples.
    fn make_ops(&mut self, size: usize) -> Vec<Op> {
        let mut ops = Vec::with_capacity(size);
        for i in 0..size {
            if i % 2 == 0 {
                let p =
                    Point::new_unchecked(self.next, (0..self.d).map(|_| self.rng.gen()).collect());
                self.live.push_back(self.next);
                self.next += 1;
                ops.push(Op::Insert(p));
            } else {
                let victim = self.live.pop_front().expect("database never drains");
                ops.push(Op::Delete(victim));
            }
        }
        ops
    }
}

fn bench_batch_throughput(c: &mut Criterion) {
    // Maintenance-heavy configuration (deep k, wide ε-band, large r) —
    // the regime the batch engine targets; see `src/bin/batch.rs` for
    // the full sweep including the feather-weight end.
    let (n, k, r, eps, max_m, sizes): (usize, usize, usize, f64, usize, &[usize]) = if smoke() {
        (400, 2, 10, 0.05, 256, &[2, 32])
    } else {
        (5_000, 3, 50, 0.05, 1 << 11, &[16, 64, 256, 1_000])
    };
    let mut group = c.benchmark_group("batch_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &size in sizes {
        group.bench_with_input(BenchmarkId::new("batched", size), &size, |b, &size| {
            let mut ch = Churn::new(1, n, 6, k, r, eps, max_m);
            b.iter(|| {
                let ops = ch.make_ops(size);
                black_box(
                    ch.fd
                        .apply_batch(ops)
                        .expect("churn ops are valid")
                        .affected_utilities,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", size), &size, |b, &size| {
            let mut ch = Churn::new(1, n, 6, k, r, eps, max_m);
            b.iter(|| {
                for op in ch.make_ops(size) {
                    match op {
                        Op::Insert(p) => ch.fd.insert(p).expect("fresh id"),
                        Op::Delete(id) => ch.fd.delete(id).expect("live id"),
                        Op::Update(p) => ch.fd.update(p).expect("live id"),
                    }
                }
                black_box(ch.fd.m())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
