//! Micro-benchmarks for the dual-tree indexes (Section III-C), including
//! the `ablation_dualtree` (cone tree vs brute-force scan) and
//! `ablation_kd_rebuild` (lazy-deletion threshold) studies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_data::generators;
use rms_geom::{sample_utilities, Point};
use rms_index::{ConeTree, KdTree};

fn db(seed: u64, n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::independent(&mut rng, n, d)
}

fn bench_kdtree_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_topk");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 50_000] {
        let points = db(1, n, 6);
        let tree = KdTree::build(6, points.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let us = sample_utilities(&mut rng, 6, 64);
        let mut i = 0;
        group.bench_with_input(BenchmarkId::new("tree", n), &n, |b, _| {
            b.iter(|| {
                let u = &us[i % us.len()];
                i += 1;
                black_box(tree.top_k(u, 10))
            });
        });
        let mut j = 0;
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &n, |b, _| {
            b.iter(|| {
                let u = &us[j % us.len()];
                j += 1;
                black_box(rms_geom::top_k(&points, u, 10))
            });
        });
    }
    group.finish();
}

fn bench_kdtree_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_updates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let points = db(3, 20_000, 6);
    group.bench_function("insert", |b| {
        let tree = KdTree::build(6, points.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut next = 1_000_000u64;
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                let p = Point::new_unchecked(next, (0..6).map(|_| rng.gen()).collect());
                next += 1;
                t.insert(p).unwrap();
                black_box(t.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Ablation: k-d tree lazy-deletion rebuild threshold sweep. Smaller
/// fractions rebuild more eagerly (tighter boxes, slower updates); larger
/// fractions leave stale boxes (faster deletes, slower queries).
fn bench_ablation_kd_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kd_rebuild");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &frac in &[0.1f64, 0.5, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(frac), &frac, |b, &frac| {
            let points = db(5, 10_000, 5);
            let mut rng = StdRng::seed_from_u64(6);
            let us = sample_utilities(&mut rng, 5, 16);
            b.iter_batched(
                || KdTree::build_with_rebuild_fraction(5, points.clone(), frac).unwrap(),
                |mut t| {
                    // Delete a third, query throughout.
                    for i in 0..3_000u64 {
                        t.delete(i).unwrap();
                        if i % 100 == 0 {
                            black_box(t.top_k(&us[(i / 100) as usize % us.len()], 10));
                        }
                    }
                    black_box(t.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Ablation: cone-tree pruning vs scanning all M utility thresholds on an
/// insertion (the paper's UI versus the naive alternative).
fn bench_ablation_dualtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dualtree");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[1_024usize, 8_192] {
        let mut rng = StdRng::seed_from_u64(7);
        let us = sample_utilities(&mut rng, 6, m);
        let points = db(8, 20_000, 6);
        let mut tree = ConeTree::build(us);
        // Realistic thresholds: (1 − ε)·ω_1 per utility.
        for i in 0..m {
            let u = tree.utility(i).clone();
            let omega = rms_geom::top1(&points, &u).unwrap().score;
            tree.set_threshold(i, 0.99 * omega);
        }
        let probes: Vec<Point> = (0..64)
            .map(|i| Point::new_unchecked(i, (0..6).map(|_| rng.gen()).collect()))
            .collect();
        let mut i = 0;
        group.bench_with_input(BenchmarkId::new("conetree", m), &m, |b, _| {
            b.iter(|| {
                let p = &probes[i % probes.len()];
                i += 1;
                black_box(tree.affected_by(p))
            });
        });
        let mut j = 0;
        group.bench_with_input(BenchmarkId::new("scan", m), &m, |b, _| {
            b.iter(|| {
                let p = &probes[j % probes.len()];
                j += 1;
                black_box(tree.affected_by_scan(p))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kdtree_topk,
    bench_kdtree_updates,
    bench_ablation_kd_rebuild,
    bench_ablation_dualtree
);
criterion_main!(benches);
