//! Micro-benchmarks for the dynamic set cover (the paper's core device)
//! and the `ablation_stability` / `ablation_level_base` studies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_setcover::{DynamicSetCover, ElemId, LevelBase, SetId};

/// Builds a random instance: `n_sets` sets over `n_elems` elements with
/// the given membership probability, all elements in the universe.
fn random_instance(
    seed: u64,
    n_sets: SetId,
    n_elems: ElemId,
    p: f64,
    base: LevelBase,
) -> DynamicSetCover {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = DynamicSetCover::new(base);
    c.insert_set(u64::MAX, 0..n_elems).unwrap(); // safety net set
    for s in 0..n_sets {
        let members: Vec<ElemId> = (0..n_elems).filter(|_| rng.gen_bool(p)).collect();
        c.insert_set(s, members).unwrap();
    }
    for u in 0..n_elems {
        c.insert_element(u).unwrap();
    }
    c.greedy().unwrap();
    c
}

fn bench_greedy_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover_greedy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[256u32, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let cover = random_instance(7, 200, m, 0.05, LevelBase::TWO);
            b.iter_batched(
                || cover.clone(),
                |mut cov| {
                    cov.greedy().unwrap();
                    black_box(cov.solution_size())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_element_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover_element_churn");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("remove_insert_cycle_m1024", |b| {
        let cover = random_instance(11, 200, 1024, 0.05, LevelBase::TWO);
        let mut i = 0u32;
        b.iter_batched(
            || cover.clone(),
            |mut cov| {
                let u = i % 1024;
                i += 1;
                cov.remove_element(u).unwrap();
                cov.insert_element(u).unwrap();
                black_box(cov.solution_size())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_membership_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover_membership_churn");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("set_remove_reinsert_m1024", |b| {
        let cover = random_instance(13, 200, 1024, 0.05, LevelBase::TWO);
        b.iter_batched(
            || cover.clone(),
            |mut cov| {
                // Remove a mid-sized set and re-add it: triggers
                // reassignments plus stabilisation.
                let _ = cov.remove_set(100).unwrap();
                let members: Vec<ElemId> = (0..1024).filter(|u| u % 7 == 3).collect();
                cov.insert_set(100, members).unwrap();
                black_box(cov.solution_size())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Ablation: level base (paper footnote 2 allows any base > 1). Larger
/// bases mean fewer levels (smaller |C| bound constant) but coarser
/// stability, i.e. more element moves per violation.
fn bench_ablation_level_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_level_base");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &base in &[1.5f64, 2.0, 3.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(base), &base, |b, &base| {
            b.iter_batched(
                || random_instance(17, 150, 512, 0.06, LevelBase::new(base)),
                |mut cov| {
                    for u in 0..64u32 {
                        cov.remove_element(u).unwrap();
                    }
                    for u in 0..64u32 {
                        cov.insert_element(u).unwrap();
                    }
                    black_box((cov.solution_size(), cov.stabilize_moves()))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_init,
    bench_element_churn,
    bench_membership_churn,
    bench_ablation_level_base
);
criterion_main!(benches);
