//! FD-RMS update-latency benches, grouped by the paper figure whose hot
//! path they isolate: `fig5_eps` (effect of ε), `fig6_r` (effect of r),
//! `fig7_k` (effect of k), `fig8_scale` (effect of d and n).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fdrms::FdRms;
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_data::generators;
use rms_geom::Point;

fn build_fd(
    seed: u64,
    n: usize,
    d: usize,
    k: usize,
    r: usize,
    eps: f64,
    max_m: usize,
) -> (FdRms, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = generators::independent(&mut rng, n, d);
    let fd = FdRms::builder(d)
        .k(k)
        .r(r)
        .epsilon(eps)
        .max_utilities(max_m)
        .seed(seed)
        .build(points)
        .unwrap();
    (fd, rng)
}

/// One insert + one delete (steady-state churn), the figure panels' x-axis
/// varied per group below.
fn churn_once(fd: &mut FdRms, rng: &mut StdRng, next: &mut u64, d: usize) {
    let p = Point::new_unchecked(*next, (0..d).map(|_| rng.gen()).collect());
    *next += 1;
    fd.insert(p).unwrap();
    // Delete a uniformly random live tuple via the result of a probe id
    // sweep (ids 0..n are the initial tuples; recycle through them).
    let victim = *next - 1; // delete what we just inserted half the time
    if victim % 2 == 0 {
        fd.delete(victim).unwrap();
    } else {
        // remove an old tuple if still present, else the fresh one
        let old = victim % 5_000;
        if fd.contains(old) {
            fd.delete(old).unwrap();
        } else {
            fd.delete(victim).unwrap();
        }
    }
}

fn bench_fig5_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_eps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &eps in &[0.0001f64, 0.0064, 0.0512] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let (mut fd, mut rng) = build_fd(1, 5_000, 6, 1, 50, eps, 1 << 12);
            let mut next = 1_000_000u64;
            b.iter(|| {
                churn_once(&mut fd, &mut rng, &mut next, 6);
                black_box(fd.m())
            });
        });
    }
    group.finish();
}

fn bench_fig6_r(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_r");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &r in &[10usize, 40, 70, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let (mut fd, mut rng) = build_fd(2, 5_000, 6, 1, r, 0.02, 1 << 12);
            let mut next = 1_000_000u64;
            b.iter(|| {
                churn_once(&mut fd, &mut rng, &mut next, 6);
                black_box(fd.m())
            });
        });
    }
    group.finish();
}

fn bench_fig7_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[1usize, 2, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let (mut fd, mut rng) = build_fd(3, 5_000, 6, k, 50, 0.02, 1 << 12);
            let mut next = 1_000_000u64;
            b.iter(|| {
                churn_once(&mut fd, &mut rng, &mut next, 6);
                black_box(fd.m())
            });
        });
    }
    group.finish();
}

fn bench_fig8_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_scale");
    for &d in &[4usize, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let (mut fd, mut rng) = build_fd(4, 5_000, d, 1, 50, 0.02, 1 << 12);
            let mut next = 1_000_000u64;
            b.iter(|| {
                churn_once(&mut fd, &mut rng, &mut next, d);
                black_box(fd.m())
            });
        });
    }
    for &n in &[2_000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            let (mut fd, mut rng) = build_fd(5, n, 6, 1, 50, 0.02, 1 << 12);
            let mut next = 1_000_000u64;
            b.iter(|| {
                churn_once(&mut fd, &mut rng, &mut next, 6);
                black_box(fd.m())
            });
        });
    }
    group.finish();
}

/// Ablation: stability maintenance versus greedy-from-scratch after every
/// operation — quantifies what the paper's dynamic set cover buys over
/// the naive "rerun greedy on the maintained set system" strategy.
fn bench_ablation_stability(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_stability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("maintained", |b| {
        let (mut fd, mut rng) = build_fd(6, 5_000, 6, 1, 50, 0.02, 1 << 11);
        let mut next = 1_000_000u64;
        b.iter(|| {
            churn_once(&mut fd, &mut rng, &mut next, 6);
            black_box(fd.result_ids().len())
        });
    });
    group.bench_function("rebuild_from_scratch", |b| {
        // The honest static comparison: rebuild the whole FD-RMS state
        // (top-k results + greedy cover) per operation.
        let mut rng = StdRng::seed_from_u64(7);
        let mut points = generators::independent(&mut rng, 2_000, 6);
        let mut next = 1_000_000u64;
        b.iter(|| {
            let p = Point::new_unchecked(next, (0..6).map(|_| rng.gen()).collect());
            next += 1;
            points.push(p);
            points.swap_remove(rng.gen_range(0..points.len()));
            let fd = FdRms::builder(6)
                .r(50)
                .epsilon(0.02)
                .max_utilities(1 << 11)
                .build(points.clone())
                .unwrap();
            black_box(fd.result_ids().len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig5_eps,
    bench_fig6_r,
    bench_fig7_k,
    bench_fig8_scale,
    bench_ablation_stability
);
criterion_main!(benches);
