//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// A simple stopwatch.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as a float.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts and returns the lap duration.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.start;
        self.start = now;
        lap
    }
}

/// Accumulates per-operation update times and reports the paper's
/// "average update time" metric.
#[derive(Debug, Default, Clone)]
pub struct UpdateTimer {
    total: Duration,
    count: u64,
    max: Duration,
}

impl UpdateTimer {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a single update closure and records it.
    pub fn record<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.add(t.elapsed());
        out
    }

    /// Adds an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
        self.count += 1;
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of recorded operations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Average update time in milliseconds (0 when nothing recorded).
    pub fn avg_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_secs_f64() * 1e3 / self.count as f64
        }
    }

    /// Worst single update in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max.as_secs_f64() * 1e3
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &UpdateTimer) {
        self.total += other.total;
        self.count += other.count;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_something() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_ms() >= 4.0);
        let lap = sw.lap();
        assert!(lap.as_millis() >= 4);
        assert!(sw.elapsed_ms() < 5.0);
    }

    #[test]
    fn update_timer_averages() {
        let mut t = UpdateTimer::new();
        assert_eq!(t.avg_ms(), 0.0);
        t.add(Duration::from_millis(10));
        t.add(Duration::from_millis(20));
        assert_eq!(t.count(), 2);
        assert!((t.avg_ms() - 15.0).abs() < 0.01);
        assert!((t.max_ms() - 20.0).abs() < 0.01);
    }

    #[test]
    fn record_returns_closure_value() {
        let mut t = UpdateTimer::new();
        let v = t.record(|| 42);
        assert_eq!(v, 42);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = UpdateTimer::new();
        a.add(Duration::from_millis(1));
        let mut b = UpdateTimer::new();
        b.add(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.avg_ms() - 2.0).abs() < 0.01);
        assert!((a.max_ms() - 3.0).abs() < 0.01);
    }
}
