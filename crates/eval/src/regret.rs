//! Monte-Carlo estimation of the maximum k-regret ratio.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rms_geom::{Point, Utility};

/// A reusable test set of utility vectors for estimating `mrr_k`.
///
/// The paper draws 500 K vectors once per experiment and reports the
/// maximum regret found. Reusing one estimator across all algorithms in a
/// comparison guarantees they face the same test directions.
#[derive(Debug, Clone)]
pub struct RegretEstimator {
    utilities: Vec<Utility>,
}

impl RegretEstimator {
    /// Samples `count` utility vectors of dimension `d` from the given
    /// seed. The standard basis is always included so coordinate-extreme
    /// regret is never missed.
    pub fn new(d: usize, count: usize, seed: u64) -> Self {
        assert!(count >= d, "need at least d test vectors");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            utilities: rms_geom::with_basis_prefix(&mut rng, d, count),
        }
    }

    /// Wraps an explicit vector pool.
    pub fn from_utilities(utilities: Vec<Utility>) -> Self {
        assert!(!utilities.is_empty());
        Self { utilities }
    }

    /// Number of test vectors.
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// Whether the pool is empty (cannot happen post-construction).
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// Estimates `mrr_k(Q)` over the database `points`.
    ///
    /// For each test vector `u` the k-regret ratio is
    /// `max(0, 1 − ω(u, Q) / ω_k(u, P))`; the estimate is the maximum over
    /// the pool. Returns 0 for an empty database and 1 for an empty `Q`
    /// on a nonempty database.
    pub fn mrr(&self, points: &[Point], q: &[Point], k: usize) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        if q.is_empty() {
            return 1.0;
        }
        let k = k.max(1);
        let mut worst = 0.0f64;
        for u in &self.utilities {
            let rr = regret_ratio(points, q, u, k);
            if rr > worst {
                worst = rr;
            }
        }
        worst
    }
}

/// The k-regret ratio of `q` over `points` for a single utility vector.
fn regret_ratio(points: &[Point], q: &[Point], u: &Utility, k: usize) -> f64 {
    // ω_k(u, P): kth largest score (or smallest when |P| < k).
    let omega_k = kth_largest_score(points, u, k);
    if omega_k <= 0.0 {
        return 0.0;
    }
    let best_q = q
        .iter()
        .map(|p| u.score(p))
        .fold(f64::NEG_INFINITY, f64::max);
    (1.0 - best_q / omega_k).max(0.0)
}

/// kth largest score without materialising a full sort: a small binary
/// min-heap of the k best.
fn kth_largest_score(points: &[Point], u: &Utility, k: usize) -> f64 {
    let k = k.min(points.len());
    let mut heap = std::collections::BinaryHeap::with_capacity(k + 1);
    for p in points {
        let s = u.score(p);
        heap.push(std::cmp::Reverse(OrdF64(s)));
        if heap.len() > k {
            heap.pop();
        }
    }
    heap.pop()
        .map(|std::cmp::Reverse(OrdF64(s))| s)
        .unwrap_or(0.0)
}

/// Total order wrapper for finite scores.
#[derive(PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite scores")
    }
}

/// One-shot convenience wrapper around [`RegretEstimator::mrr`] with a
/// fresh test set.
pub fn max_regret_ratio(
    points: &[Point],
    q: &[Point],
    k: usize,
    test_vectors: usize,
    seed: u64,
) -> f64 {
    let d = match points.first() {
        Some(p) => p.dim(),
        None => return 0.0,
    };
    RegretEstimator::new(d, test_vectors.max(d), seed).mrr(points, q, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Vec<Point> {
        [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ]
        .iter()
        .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
        .collect()
    }

    #[test]
    fn paper_example_mrr2_of_q1() {
        // Example 1: mrr_2(Q1 = {p3, p4}) ≈ 0.444 attained at u = (0, 1):
        // ω_2(u, P) = 0.9 (p7), ω(u, Q1) = 0.5 ⇒ 1 − 0.5/0.9 ≈ 0.444.
        let db = fig1();
        let q1 = vec![db[2].clone(), db[3].clone()];
        let est = RegretEstimator::new(2, 20_000, 7);
        let mrr = est.mrr(&db, &q1, 2);
        assert!((mrr - 0.444).abs() < 0.01, "mrr {mrr}");
    }

    #[test]
    fn paper_example_zero_regret() {
        // Example 1: Q2 = {p1, p2, p4} is a (2, 0)-regret set.
        let db = fig1();
        let q2 = vec![db[0].clone(), db[1].clone(), db[3].clone()];
        let est = RegretEstimator::new(2, 20_000, 7);
        assert!(est.mrr(&db, &q2, 2) < 1e-9);
    }

    #[test]
    fn paper_example_rms22_optimum() {
        // Example 2: Q* = {p1, p4} for RMS(2,2) with mrr_2 ≈ 0.05.
        let db = fig1();
        let q = vec![db[0].clone(), db[3].clone()];
        let est = RegretEstimator::new(2, 50_000, 7);
        let mrr = est.mrr(&db, &q, 2);
        assert!((mrr - 0.05).abs() < 0.015, "mrr {mrr}");
    }

    #[test]
    fn mrr_decreases_with_k() {
        let db = fig1();
        let q = vec![db[3].clone()];
        let est = RegretEstimator::new(2, 5_000, 3);
        let m1 = est.mrr(&db, &q, 1);
        let m3 = est.mrr(&db, &q, 3);
        assert!(m3 <= m1 + 1e-12);
    }

    #[test]
    fn edge_cases() {
        let est = RegretEstimator::new(2, 100, 1);
        let db = fig1();
        assert_eq!(est.mrr(&[], &db, 1), 0.0);
        assert_eq!(est.mrr(&db, &[], 1), 1.0);
        // Q = P gives zero regret for any k.
        assert!(est.mrr(&db, &db, 1) < 1e-12);
    }

    #[test]
    fn estimator_is_deterministic() {
        let db = fig1();
        let q = vec![db[1].clone()];
        let a = RegretEstimator::new(2, 1000, 5).mrr(&db, &q, 1);
        let b = RegretEstimator::new(2, 1000, 5).mrr(&db, &q, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn one_shot_wrapper() {
        let db = fig1();
        let q = vec![db[0].clone(), db[3].clone()];
        let v = max_regret_ratio(&db, &q, 1, 2000, 11);
        assert!((0.0..=1.0).contains(&v));
        assert_eq!(max_regret_ratio(&[], &q, 1, 100, 0), 0.0);
    }

    #[test]
    fn more_vectors_never_lower_the_estimate() {
        // A superset pool can only find worse (or equal) regret.
        let db = fig1();
        let q = vec![db[2].clone()];
        let small = RegretEstimator::new(2, 500, 9).mrr(&db, &q, 1);
        let big = RegretEstimator::new(2, 5_000, 9).mrr(&db, &q, 1);
        // Different seeds of sample_utilities share the basis prefix; the
        // larger pool is not a strict superset, so allow tiny slack.
        assert!(big >= small - 0.02);
    }
}
