//! Experiment result records and table formatting.

use serde::{Deserialize, Serialize};

/// One measured data point of an experiment: a (dataset, algorithm,
/// parameter) cell of a paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig6"`.
    pub experiment: String,
    /// Dataset name, e.g. `"AntiCor"`.
    pub dataset: String,
    /// Algorithm name, e.g. `"FD-RMS"`.
    pub algorithm: String,
    /// The varied parameter's name (`"r"`, `"k"`, `"d"`, `"n"`, `"eps"`).
    pub param: String,
    /// The varied parameter's value.
    pub value: f64,
    /// Average update time in milliseconds.
    pub update_ms: f64,
    /// Estimated maximum k-regret ratio of the reported result.
    pub mrr: f64,
}

impl ExperimentRecord {
    /// Tab-separated header matching [`ExperimentRecord::to_row`].
    pub const HEADER: &'static str = "experiment\tdataset\talgorithm\tparam\tvalue\tupdate_ms\tmrr";

    /// Serialises to a tab-separated row (no external CSV crate offline).
    pub fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{:.6}\t{:.6}",
            self.experiment,
            self.dataset,
            self.algorithm,
            self.param,
            self.value,
            self.update_ms,
            self.mrr
        )
    }

    /// Parses a row produced by [`ExperimentRecord::to_row`].
    pub fn from_row(row: &str) -> Option<Self> {
        let mut it = row.split('\t');
        Some(Self {
            experiment: it.next()?.to_string(),
            dataset: it.next()?.to_string(),
            algorithm: it.next()?.to_string(),
            param: it.next()?.to_string(),
            value: it.next()?.parse().ok()?,
            update_ms: it.next()?.parse().ok()?,
            mrr: it.next()?.parse().ok()?,
        })
    }
}

/// Formats records as an aligned text table grouped the way the paper's
/// figures are: one block per dataset, one row per parameter value, one
/// column pair (time, mrr) per algorithm.
pub fn format_table(records: &[ExperimentRecord]) -> String {
    use std::collections::BTreeMap;
    /// Per-algorithm (time, mrr) cells keyed by parameter value bits.
    type CellsByValue<'a> = BTreeMap<u64, BTreeMap<&'a str, (f64, f64)>>;
    let mut out = String::new();
    // dataset -> value -> algorithm -> (time, mrr)
    let mut by_ds: BTreeMap<&str, CellsByValue> = BTreeMap::new();
    let mut algos: Vec<&str> = Vec::new();
    for r in records {
        if !algos.contains(&r.algorithm.as_str()) {
            algos.push(&r.algorithm);
        }
        by_ds
            .entry(&r.dataset)
            .or_default()
            .entry(r.value.to_bits())
            .or_default()
            .insert(&r.algorithm, (r.update_ms, r.mrr));
    }
    for (ds, rows) in by_ds {
        let param = records
            .iter()
            .find(|r| r.dataset == ds)
            .map(|r| r.param.as_str())
            .unwrap_or("x");
        out.push_str(&format!("== {ds} ==\n{param:>10}"));
        for a in &algos {
            out.push_str(&format!(" | {a:>14} ms {a:>10} mrr"));
        }
        out.push('\n');
        for (bits, cells) in rows {
            let v = f64::from_bits(bits);
            out.push_str(&format!("{v:>10.4}"));
            for a in &algos {
                match cells.get(a) {
                    Some((t, m)) => out.push_str(&format!(" | {t:>17.4} {m:>14.4}")),
                    None => out.push_str(&format!(" | {:>17} {:>14}", "-", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ds: &str, algo: &str, v: f64) -> ExperimentRecord {
        ExperimentRecord {
            experiment: "fig6".into(),
            dataset: ds.into(),
            algorithm: algo.into(),
            param: "r".into(),
            value: v,
            update_ms: 1.25,
            mrr: 0.05,
        }
    }

    #[test]
    fn row_roundtrip() {
        let r = rec("Indep", "FD-RMS", 50.0);
        let parsed = ExperimentRecord::from_row(&r.to_row()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(ExperimentRecord::from_row("only\ttwo").is_none());
        assert!(ExperimentRecord::from_row("a\tb\tc\td\tnot_a_number\t1\t2").is_none());
    }

    #[test]
    fn table_contains_all_cells() {
        let recs = vec![
            rec("Indep", "FD-RMS", 10.0),
            rec("Indep", "Greedy", 10.0),
            rec("AntiCor", "FD-RMS", 10.0),
        ];
        let table = format_table(&recs);
        assert!(table.contains("== Indep =="));
        assert!(table.contains("== AntiCor =="));
        assert!(table.contains("FD-RMS"));
        assert!(table.contains("Greedy"));
        // Missing cell rendered as dash.
        assert!(table.contains('-'));
    }

    #[test]
    fn serde_traits_derive() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<ExperimentRecord>();
    }
}
