//! Evaluation layer: maximum k-regret ratio estimation and experiment
//! bookkeeping.
//!
//! The paper measures result quality as the maximum k-regret ratio
//! `mrr_k(Q)` estimated over "a test set of 500K random utility vectors"
//! (Section IV-A) and efficiency as the average wall-clock update time per
//! operation. This crate provides both measurement tools plus the record
//! types the bench harness prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod record;
mod regret;
mod timer;

pub use record::{format_table, ExperimentRecord};
pub use regret::{max_regret_ratio, RegretEstimator};
pub use timer::{Stopwatch, UpdateTimer};
