//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rms_geom::{
    dominates, kth_score, normalize_to_unit_box, sample_utilities, top1, top_k, top_k_approx,
    Point, Utility,
};

fn arb_point(d: usize, id: u64) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..=1.0, d).prop_map(move |c| Point::new_unchecked(id, c))
}

fn arb_points(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0.0f64..=1.0, d), n).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, c)| Point::new_unchecked(i as u64, c))
            .collect()
    })
}

fn arb_utility(d: usize) -> impl Strategy<Value = Utility> {
    prop::collection::vec(0.01f64..=1.0, d).prop_map(|w| Utility::new(w).unwrap())
}

proptest! {
    /// Dominance is transitive on random triples (when the premises hold).
    #[test]
    fn dominance_transitive(
        a in arb_point(4, 0),
        b in arb_point(4, 1),
        c in arb_point(4, 2),
    ) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    /// A dominating point never scores lower under any nonnegative utility.
    #[test]
    fn dominance_implies_score_order(
        a in arb_point(3, 0),
        b in arb_point(3, 1),
        u in arb_utility(3),
    ) {
        if dominates(&a, &b) {
            prop_assert!(u.score(&a) >= u.score(&b) - 1e-12);
        }
    }

    /// top_k returns ranks in consistent order and agrees with a full sort.
    #[test]
    fn topk_agrees_with_sort(
        pts in arb_points(3, 1..40),
        u in arb_utility(3),
        k in 1usize..10,
    ) {
        let got = top_k(&pts, &u, k);
        let mut all: Vec<(f64, u64)> =
            pts.iter().map(|p| (u.score(p), p.id())).collect();
        all.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        let want: Vec<u64> = all.iter().take(k).map(|r| r.1).collect();
        let got_ids: Vec<u64> = got.iter().map(|r| r.id).collect();
        prop_assert_eq!(got_ids, want);
    }

    /// ω_k is monotone nonincreasing in k.
    #[test]
    fn kth_score_monotone(pts in arb_points(4, 3..30), u in arb_utility(4)) {
        let mut prev = f64::INFINITY;
        for k in 1..=pts.len() {
            let s = kth_score(&pts, &u, k).unwrap();
            prop_assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    /// The ε-approximate top-k always contains the exact top-k and only
    /// points above the threshold.
    #[test]
    fn approx_topk_sandwich(
        pts in arb_points(3, 2..40),
        u in arb_utility(3),
        k in 1usize..5,
        eps in 0.0f64..0.5,
    ) {
        let k = k.min(pts.len());
        let exact: Vec<u64> = top_k(&pts, &u, k).iter().map(|r| r.id).collect();
        let approx = top_k_approx(&pts, &u, k, eps);
        let omega_k = kth_score(&pts, &u, k).unwrap();
        for id in &exact {
            prop_assert!(approx.iter().any(|r| r.id == *id));
        }
        for r in &approx {
            prop_assert!(r.score >= (1.0 - eps) * omega_k - 1e-12);
        }
    }

    /// Normalisation maps every coordinate into [0, 1] and keeps ids.
    #[test]
    fn normalization_bounds(rows in prop::collection::vec(
        prop::collection::vec(-50.0f64..50.0, 3), 1..30)
    ) {
        let pts: Vec<Point> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| Point::new_unchecked(i as u64, r.iter().map(|x| x.abs()).collect()))
            .collect();
        let norm = normalize_to_unit_box(&pts).unwrap();
        prop_assert_eq!(norm.len(), pts.len());
        for (orig, n) in pts.iter().zip(&norm) {
            prop_assert_eq!(orig.id(), n.id());
            for &c in n.coords() {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
            }
        }
    }

    /// top1 equals top_k(1) on nonempty input.
    #[test]
    fn top1_is_topk1(pts in arb_points(2, 1..20), u in arb_utility(2)) {
        let t1 = top1(&pts, &u).unwrap();
        let tk = top_k(&pts, &u, 1);
        prop_assert_eq!(t1, tk[0].clone());
    }

    /// Sampled utilities stay on the unit sphere in the positive orthant.
    #[test]
    fn sampling_invariants(seed in 0u64..1000, d in 2usize..8) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for u in sample_utilities(&mut rng, d, 16) {
            let norm: f64 = u.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
            prop_assert!((norm - 1.0).abs() < 1e-9);
            prop_assert!(u.weights().iter().all(|&w| w >= 0.0));
        }
    }
}
