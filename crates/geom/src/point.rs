//! Database tuples as points in the nonnegative orthant.

use crate::error::GeomError;
use serde::{Deserialize, Serialize};

/// Identifier of a tuple in a database.
///
/// Ids are assigned by data generators / loaders and are stable across
/// insertions and deletions; the whole workspace breaks score ties by id
/// (ascending), which implements the paper's "any consistent rule" for
/// tie-breaking.
pub type PointId = u64;

/// A tuple with `d` nonnegative numeric attributes (Section II-A).
///
/// `Point` is immutable after construction: a tuple *update* in the dynamic
/// model is represented as a deletion followed by an insertion, exactly as
/// in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    id: PointId,
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point after validating that every coordinate is finite and
    /// nonnegative and that the dimensionality is positive.
    pub fn new(id: PointId, coords: Vec<f64>) -> Result<Self, GeomError> {
        if coords.is_empty() {
            return Err(GeomError::EmptyDimensions);
        }
        for (dim, &value) in coords.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value });
            }
            if value < 0.0 {
                return Err(GeomError::NegativeCoordinate { dim, value });
            }
        }
        Ok(Self {
            id,
            coords: coords.into_boxed_slice(),
        })
    }

    /// Creates a point without validation.
    ///
    /// Intended for generators that construct coordinates already known to
    /// be finite and nonnegative; debug builds still assert the contract.
    pub fn new_unchecked(id: PointId, coords: Vec<f64>) -> Self {
        debug_assert!(!coords.is_empty());
        debug_assert!(coords.iter().all(|c| c.is_finite() && *c >= 0.0));
        Self {
            id,
            coords: coords.into_boxed_slice(),
        }
    }

    /// The tuple identifier.
    #[inline]
    pub fn id(&self) -> PointId {
        self.id
    }

    /// The number of attributes `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The attribute values.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The value of attribute `i` (`p[i]` in the paper, zero-indexed here).
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Euclidean norm `‖p‖`.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Returns a copy of this point with a different id.
    ///
    /// Useful for re-inserting a logically identical tuple under a fresh
    /// identity in streaming workloads.
    pub fn with_id(&self, id: PointId) -> Self {
        Self {
            id,
            coords: self.coords.clone(),
        }
    }
}

/// Rescales a set of raw tuples so that every attribute spans `[0, 1]`.
///
/// The paper assumes "the range of values on each dimension is scaled to
/// `[0, 1]`" (Section II-A, footnote 1: the maximum k-regret ratio is
/// scale-invariant, so this loses no generality). Dimensions that are
/// constant across the input are mapped to `1.0` so that they do not
/// distort scores.
///
/// Returns an error when `points` mixes dimensionalities.
pub fn normalize_to_unit_box(points: &[Point]) -> Result<Vec<Point>, GeomError> {
    let Some(first) = points.first() else {
        return Ok(Vec::new());
    };
    let d = first.dim();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points {
        if p.dim() != d {
            return Err(GeomError::DimensionMismatch {
                left: d,
                right: p.dim(),
            });
        }
        for (i, &c) in p.coords().iter().enumerate() {
            lo[i] = lo[i].min(c);
            hi[i] = hi[i].max(c);
        }
    }
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let coords = p
            .coords()
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let span = hi[i] - lo[i];
                if span <= f64::EPSILON {
                    1.0
                } else {
                    (c - lo[i]) / span
                }
            })
            .collect();
        out.push(Point::new_unchecked(p.id(), coords));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_coordinates() {
        assert!(Point::new(0, vec![0.1, 0.2]).is_ok());
        assert_eq!(Point::new(0, vec![]), Err(GeomError::EmptyDimensions));
        assert!(matches!(
            Point::new(0, vec![0.1, f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { dim: 1, .. })
        ));
        assert!(matches!(
            Point::new(0, vec![-0.5]),
            Err(GeomError::NegativeCoordinate { dim: 0, .. })
        ));
        assert!(matches!(
            Point::new(0, vec![f64::INFINITY]),
            Err(GeomError::NonFiniteCoordinate { dim: 0, .. })
        ));
    }

    #[test]
    fn accessors_roundtrip() {
        let p = Point::new(7, vec![0.25, 0.5, 1.0]).unwrap();
        assert_eq!(p.id(), 7);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[0.25, 0.5, 1.0]);
        assert_eq!(p.coord(1), 0.5);
        assert!((p.norm() - (0.0625f64 + 0.25 + 1.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn with_id_preserves_coords() {
        let p = Point::new(1, vec![0.3, 0.4]).unwrap();
        let q = p.with_id(99);
        assert_eq!(q.id(), 99);
        assert_eq!(q.coords(), p.coords());
    }

    #[test]
    fn normalize_maps_to_unit_box() {
        let pts = vec![
            Point::new(0, vec![10.0, 5.0]).unwrap(),
            Point::new(1, vec![20.0, 5.0]).unwrap(),
            Point::new(2, vec![15.0, 5.0]).unwrap(),
        ];
        let norm = normalize_to_unit_box(&pts).unwrap();
        assert_eq!(norm[0].coords(), &[0.0, 1.0]); // constant dim -> 1.0
        assert_eq!(norm[1].coords(), &[1.0, 1.0]);
        assert_eq!(norm[2].coords(), &[0.5, 1.0]);
    }

    #[test]
    fn normalize_empty_and_mismatched() {
        assert!(normalize_to_unit_box(&[]).unwrap().is_empty());
        let pts = vec![
            Point::new(0, vec![1.0]).unwrap(),
            Point::new(1, vec![1.0, 2.0]).unwrap(),
        ];
        assert!(matches!(
            normalize_to_unit_box(&pts),
            Err(GeomError::DimensionMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn point_implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Point>();
    }
}
