//! Geometry substrate for the k-regret minimizing set (k-RMS) problem.
//!
//! This crate provides the vocabulary types shared by every other crate in
//! the workspace:
//!
//! * [`Point`] — a database tuple with `d` nonnegative numeric attributes,
//!   interpreted as a point in the nonnegative orthant of `R^d`.
//! * [`Utility`] — a nonnegative unit vector modelling a linear utility
//!   function `f(p) = ⟨u, p⟩` (Section II-A of the paper).
//! * Uniform sampling of utility vectors from the nonnegative orthant of the
//!   unit sphere, and the standard-basis prefix used by FD-RMS.
//! * Pareto dominance tests used by the skyline operator.
//! * Brute-force top-k / ε-approximate top-k reference implementations used
//!   as ground truth by the index structures and the test suites.
//!
//! All scoring follows the paper's conventions: attribute values are scaled
//! to `[0, 1]`, utility vectors are normalised to unit length (`‖u‖ = 1`),
//! and ties between equal scores are broken by tuple id (a "consistent
//! rule" in the sense of Section II-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dominance;
mod error;
mod point;
mod topk;
mod utility;

pub use dominance::{dominates, strictly_dominates, DominanceRelation};
pub use error::GeomError;
pub use point::{normalize_to_unit_box, Point, PointId};
pub use topk::{kth_score, top1, top_k, top_k_approx, RankedPoint};
pub use utility::{sample_utilities, standard_basis, with_basis_prefix, Utility};

/// Numerical tolerance used by geometric predicates throughout the
/// workspace.
///
/// Attribute values live in `[0, 1]` and scores in `[0, √d]`, so an absolute
/// epsilon is appropriate.
pub const GEOM_EPS: f64 = 1e-12;
