//! Linear utility functions as nonnegative unit vectors.

use crate::error::GeomError;
use crate::point::Point;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// A linear utility function, represented by a nonnegative unit vector
/// `u ∈ U = {u ∈ R^d_+ : ‖u‖ = 1}` (Section II-A).
///
/// The score of a tuple `p` is the inner product `⟨u, p⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utility {
    weights: Box<[f64]>,
}

impl Utility {
    /// Creates a utility vector from raw weights, validating nonnegativity
    /// and normalising to unit length.
    pub fn new(weights: Vec<f64>) -> Result<Self, GeomError> {
        if weights.is_empty() {
            return Err(GeomError::EmptyDimensions);
        }
        for (dim, &value) in weights.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeomError::NonFiniteCoordinate { dim, value });
            }
            if value < 0.0 {
                return Err(GeomError::NegativeCoordinate { dim, value });
            }
        }
        let norm = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            return Err(GeomError::ZeroNorm);
        }
        let weights = weights.into_iter().map(|w| w / norm).collect();
        Ok(Self { weights })
    }

    /// The `i`-th standard basis vector of `R^d` (used by FD-RMS as the
    /// first `d` sampled utilities, Algorithm 2 Line 1).
    pub fn basis(d: usize, i: usize) -> Self {
        assert!(i < d, "basis index {i} out of range for dimension {d}");
        let mut weights = vec![0.0; d];
        weights[i] = 1.0;
        Self {
            weights: weights.into_boxed_slice(),
        }
    }

    /// The number of dimensions `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The (unit-norm) weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The score `f(p) = ⟨u, p⟩` of a tuple under this utility function.
    ///
    /// Panics in debug builds if dimensionalities differ.
    #[inline]
    pub fn score(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        dot(&self.weights, p.coords())
    }

    /// Inner product with another utility vector (cosine similarity, since
    /// both are unit vectors).
    #[inline]
    pub fn cosine(&self, other: &Utility) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        dot(&self.weights, other.weights())
    }

    /// Euclidean distance to another utility vector, used by δ-net
    /// arguments (proof of Theorem 2).
    pub fn distance(&self, other: &Utility) -> f64 {
        self.weights
            .iter()
            .zip(other.weights.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Samples `count` utility vectors uniformly from the nonnegative orthant
/// of the unit sphere.
///
/// Uses the standard Gaussian-normalisation construction: draw `d`
/// independent standard normals, take absolute values, and normalise. The
/// result is uniform on the intersection of the sphere with `R^d_+`.
pub fn sample_utilities<R: Rng + ?Sized>(rng: &mut R, d: usize, count: usize) -> Vec<Utility> {
    assert!(d > 0, "dimension must be positive");
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut w = Vec::with_capacity(d);
        for _ in 0..d {
            let x: f64 = StandardNormal.sample(rng);
            w.push(x.abs());
        }
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= f64::EPSILON {
            continue; // astronomically unlikely; resample
        }
        for x in &mut w {
            *x /= norm;
        }
        out.push(Utility {
            weights: w.into_boxed_slice(),
        });
    }
    out
}

/// The `d` standard basis vectors of `R^d_+`.
pub fn standard_basis(d: usize) -> Vec<Utility> {
    (0..d).map(|i| Utility::basis(d, i)).collect()
}

/// Draws `m` utility vectors where the first `d` are the standard basis and
/// the remaining `m − d` are uniform samples — exactly the pool FD-RMS
/// uses (Algorithm 2, Line 1).
///
/// Panics if `m < d`.
pub fn with_basis_prefix<R: Rng + ?Sized>(rng: &mut R, d: usize, m: usize) -> Vec<Utility> {
    assert!(m >= d, "need at least d vectors to include the basis");
    let mut out = standard_basis(d);
    out.extend(sample_utilities(rng, d, m - d));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_normalises_and_validates() {
        let u = Utility::new(vec![3.0, 4.0]).unwrap();
        assert!((u.weights()[0] - 0.6).abs() < 1e-12);
        assert!((u.weights()[1] - 0.8).abs() < 1e-12);
        assert!(matches!(
            Utility::new(vec![0.0, 0.0]),
            Err(GeomError::ZeroNorm)
        ));
        assert!(matches!(
            Utility::new(vec![-1.0, 1.0]),
            Err(GeomError::NegativeCoordinate { .. })
        ));
        assert!(matches!(
            Utility::new(vec![]),
            Err(GeomError::EmptyDimensions)
        ));
        assert!(matches!(
            Utility::new(vec![f64::NAN]),
            Err(GeomError::NonFiniteCoordinate { .. })
        ));
    }

    #[test]
    fn basis_vectors() {
        let u = Utility::basis(3, 1);
        assert_eq!(u.weights(), &[0.0, 1.0, 0.0]);
        let b = standard_basis(4);
        assert_eq!(b.len(), 4);
        for (i, u) in b.iter().enumerate() {
            assert_eq!(u.weights()[i], 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Utility::basis(2, 2);
    }

    #[test]
    fn score_matches_inner_product() {
        let u = Utility::new(vec![0.42, 0.91]).unwrap();
        // Example 1 from the paper: u1 = (0.42, 0.91) (already ~unit norm),
        // p2 = (0.6, 0.8) ⇒ score ≈ 0.98.
        let p2 = Point::new(2, vec![0.6, 0.8]).unwrap();
        assert!((u.score(&p2) - 0.98).abs() < 1e-2);
    }

    #[test]
    fn sampled_utilities_are_unit_nonnegative() {
        let mut rng = StdRng::seed_from_u64(42);
        for u in sample_utilities(&mut rng, 5, 200) {
            let norm: f64 = u.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
            assert!(u.weights().iter().all(|&w| w >= 0.0));
            assert_eq!(u.dim(), 5);
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = sample_utilities(&mut StdRng::seed_from_u64(7), 4, 10);
        let b = sample_utilities(&mut StdRng::seed_from_u64(7), 4, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn basis_prefix_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let us = with_basis_prefix(&mut rng, 3, 8);
        assert_eq!(us.len(), 8);
        for (i, u) in us.iter().take(3).enumerate() {
            assert_eq!(u.weights()[i], 1.0);
        }
    }

    #[test]
    fn cosine_and_distance() {
        let a = Utility::basis(2, 0);
        let b = Utility::basis(2, 1);
        assert!((a.cosine(&b)).abs() < 1e-12);
        assert!((a.distance(&b) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn sampled_mean_direction_is_diagonalish() {
        // Uniform samples on the positive orthant should average near the
        // diagonal direction; a gross bias would indicate a broken sampler.
        let mut rng = StdRng::seed_from_u64(99);
        let us = sample_utilities(&mut rng, 3, 4000);
        let mut mean = [0.0f64; 3];
        for u in &us {
            for (m, w) in mean.iter_mut().zip(u.weights()) {
                *m += w;
            }
        }
        let n = us.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        let spread = mean
            .iter()
            .map(|m| (m - mean[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(spread < 0.03, "mean direction skewed: {mean:?}");
    }
}
