//! Pareto dominance between tuples (the skyline's core predicate).

use crate::point::Point;

/// The outcome of comparing two points under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceRelation {
    /// The left point dominates the right one.
    Dominates,
    /// The right point dominates the left one.
    DominatedBy,
    /// Neither dominates the other (they are incomparable or equal).
    Incomparable,
    /// The two points have identical coordinates.
    Equal,
}

/// Returns `true` iff `p` dominates `q`: `p` is at least as good on every
/// attribute and strictly better on at least one (Section I; "as good"
/// means larger, since larger attribute values are preferred after the
/// `[0,1]` scaling).
#[inline]
pub fn dominates(p: &Point, q: &Point) -> bool {
    debug_assert_eq!(p.dim(), q.dim());
    let mut strictly_better = false;
    for (a, b) in p.coords().iter().zip(q.coords().iter()) {
        if a < b {
            return false;
        }
        if a > b {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Full three-way comparison of two points under Pareto dominance.
pub fn strictly_dominates(p: &Point, q: &Point) -> DominanceRelation {
    debug_assert_eq!(p.dim(), q.dim());
    let mut p_better = false;
    let mut q_better = false;
    for (a, b) in p.coords().iter().zip(q.coords().iter()) {
        if a > b {
            p_better = true;
        } else if b > a {
            q_better = true;
        }
        if p_better && q_better {
            return DominanceRelation::Incomparable;
        }
    }
    match (p_better, q_better) {
        (true, false) => DominanceRelation::Dominates,
        (false, true) => DominanceRelation::DominatedBy,
        (false, false) => DominanceRelation::Equal,
        (true, true) => unreachable!("early-returned above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new_unchecked(0, coords.to_vec())
    }

    #[test]
    fn basic_dominance() {
        assert!(dominates(&p(&[0.5, 0.5]), &p(&[0.4, 0.5])));
        assert!(dominates(&p(&[0.5, 0.6]), &p(&[0.4, 0.5])));
        assert!(!dominates(&p(&[0.5, 0.4]), &p(&[0.4, 0.5])));
        assert!(!dominates(&p(&[0.4, 0.5]), &p(&[0.4, 0.5]))); // equal
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric() {
        let a = p(&[0.3, 0.7, 0.1]);
        let b = p(&[0.3, 0.8, 0.2]);
        assert!(!dominates(&a, &a));
        assert!(dominates(&b, &a));
        assert!(!dominates(&a, &b));
    }

    #[test]
    fn three_way_relation() {
        assert_eq!(
            strictly_dominates(&p(&[1.0, 1.0]), &p(&[0.0, 0.0])),
            DominanceRelation::Dominates
        );
        assert_eq!(
            strictly_dominates(&p(&[0.0, 0.0]), &p(&[1.0, 1.0])),
            DominanceRelation::DominatedBy
        );
        assert_eq!(
            strictly_dominates(&p(&[1.0, 0.0]), &p(&[0.0, 1.0])),
            DominanceRelation::Incomparable
        );
        assert_eq!(
            strictly_dominates(&p(&[0.5, 0.5]), &p(&[0.5, 0.5])),
            DominanceRelation::Equal
        );
    }

    #[test]
    fn paper_example_fig1() {
        // In Fig. 1, p5 = (0.4, 0.3) is dominated by p8 = (0.6, 0.6);
        // p1 = (0.2, 1.0) and p4 = (1.0, 0.1) are incomparable.
        let p5 = p(&[0.4, 0.3]);
        let p8 = p(&[0.6, 0.6]);
        let p1 = p(&[0.2, 1.0]);
        let p4 = p(&[1.0, 0.1]);
        assert!(dominates(&p8, &p5));
        assert_eq!(
            strictly_dominates(&p1, &p4),
            DominanceRelation::Incomparable
        );
    }
}
