//! Brute-force top-k scoring over a set of points.
//!
//! These are the *reference* implementations of `Φ_k(u, P)`,
//! `Φ_{k,ε}(u, P)`, `ω_k(u, P)` (Section II-A). The index crate provides
//! faster equivalents; every index test compares against these.

use crate::point::{Point, PointId};
use crate::utility::Utility;

/// A point together with its score under some utility vector.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPoint {
    /// Tuple identifier.
    pub id: PointId,
    /// Score `⟨u, p⟩`.
    pub score: f64,
}

/// Orders by descending score, breaking ties by ascending id (the
/// workspace-wide consistent tie-breaking rule).
#[inline]
fn rank_cmp(a: &RankedPoint, b: &RankedPoint) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .expect("scores are finite")
        .then_with(|| a.id.cmp(&b.id))
}

/// The top-k tuples `Φ_k(u, P)` in descending score order.
///
/// Returns fewer than `k` entries when `|P| < k`.
pub fn top_k(points: &[Point], u: &Utility, k: usize) -> Vec<RankedPoint> {
    let mut ranked: Vec<RankedPoint> = points
        .iter()
        .map(|p| RankedPoint {
            id: p.id(),
            score: u.score(p),
        })
        .collect();
    let k = k.min(ranked.len());
    if k == 0 {
        return Vec::new();
    }
    ranked.select_nth_unstable_by(k - 1, rank_cmp);
    ranked.truncate(k);
    ranked.sort_unstable_by(rank_cmp);
    ranked
}

/// The top-1 tuple `ϕ(u, P)` and its score `ω(u, P)`, or `None` on empty
/// input.
pub fn top1(points: &[Point], u: &Utility) -> Option<RankedPoint> {
    points
        .iter()
        .map(|p| RankedPoint {
            id: p.id(),
            score: u.score(p),
        })
        .min_by(rank_cmp)
}

/// The k-th largest score `ω_k(u, P)`; `None` when `|P| < k` or `k == 0`.
pub fn kth_score(points: &[Point], u: &Utility, k: usize) -> Option<f64> {
    if k == 0 || points.len() < k {
        return None;
    }
    Some(top_k(points, u, k)[k - 1].score)
}

/// The ε-approximate top-k set `Φ_{k,ε}(u, P) = {p : ⟨u,p⟩ ≥ (1−ε)·ω_k}`,
/// in descending score order.
///
/// Every member of the exact top-k is always included (their scores are
/// `≥ ω_k ≥ (1−ε)·ω_k`). When `|P| ≤ k` all points qualify.
pub fn top_k_approx(points: &[Point], u: &Utility, k: usize, eps: f64) -> Vec<RankedPoint> {
    debug_assert!((0.0..1.0).contains(&eps));
    let Some(omega_k) = kth_score(points, u, k.min(points.len().max(1))) else {
        return top_k(points, u, points.len());
    };
    let threshold = (1.0 - eps) * omega_k;
    let mut out: Vec<RankedPoint> = points
        .iter()
        .filter_map(|p| {
            let score = u.score(p);
            (score >= threshold).then_some(RankedPoint { id: p.id(), score })
        })
        .collect();
    out.sort_unstable_by(rank_cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8-tuple example database of Fig. 1.
    fn fig1() -> Vec<Point> {
        let rows = [
            (1, 0.2, 1.0),
            (2, 0.6, 0.8),
            (3, 0.7, 0.5),
            (4, 1.0, 0.1),
            (5, 0.4, 0.3),
            (6, 0.2, 0.7),
            (7, 0.3, 0.9),
            (8, 0.6, 0.6),
        ];
        rows.iter()
            .map(|&(id, x, y)| Point::new_unchecked(id, vec![x, y]))
            .collect()
    }

    #[test]
    fn paper_example_top2() {
        let db = fig1();
        // Example 1: Φ2(u1, P) = {p1, p2} for u1 = (0.42, 0.91).
        let u1 = Utility::new(vec![0.42, 0.91]).unwrap();
        let ids: Vec<_> = top_k(&db, &u1, 2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2]);
        // Φ2(u2, P) = {p2, p4} for u2 = (0.91, 0.42).
        let u2 = Utility::new(vec![0.91, 0.42]).unwrap();
        let ids: Vec<_> = top_k(&db, &u2, 2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 2]);
    }

    #[test]
    fn top1_and_kth_score_agree_with_topk() {
        let db = fig1();
        let u = Utility::new(vec![0.5, 0.5]).unwrap();
        let t = top_k(&db, &u, 3);
        assert_eq!(top1(&db, &u).unwrap(), t[0]);
        assert_eq!(kth_score(&db, &u, 3).unwrap(), t[2].score);
    }

    #[test]
    fn boundary_conditions() {
        let db = fig1();
        let u = Utility::new(vec![1.0, 1.0]).unwrap();
        assert!(top_k(&db, &u, 0).is_empty());
        assert_eq!(top_k(&db, &u, 100).len(), db.len());
        assert!(top1(&[], &u).is_none());
        assert!(kth_score(&db, &u, 0).is_none());
        assert!(kth_score(&db, &u, 9).is_none());
        assert_eq!(top_k_approx(&[], &u, 2, 0.1).len(), 0);
    }

    #[test]
    fn approx_contains_exact_topk() {
        let db = fig1();
        for eps in [0.0, 0.05, 0.3] {
            for kk in 1..=4usize {
                let u = Utility::new(vec![0.7, 0.3]).unwrap();
                let exact: Vec<_> = top_k(&db, &u, kk).iter().map(|r| r.id).collect();
                let approx: Vec<_> = top_k_approx(&db, &u, kk, eps)
                    .iter()
                    .map(|r| r.id)
                    .collect();
                for id in &exact {
                    assert!(approx.contains(id), "eps={eps} k={kk}");
                }
                assert!(approx.len() >= exact.len());
            }
        }
    }

    #[test]
    fn approx_threshold_is_respected() {
        let db = fig1();
        let u = Utility::new(vec![0.42, 0.91]).unwrap();
        let k = 2;
        let eps = 0.1;
        let omega_k = kth_score(&db, &u, k).unwrap();
        for r in top_k_approx(&db, &u, k, eps) {
            assert!(r.score >= (1.0 - eps) * omega_k - 1e-12);
        }
    }

    #[test]
    fn ties_break_by_id() {
        let db = vec![
            Point::new_unchecked(5, vec![0.5, 0.5]),
            Point::new_unchecked(2, vec![0.5, 0.5]),
            Point::new_unchecked(9, vec![0.5, 0.5]),
        ];
        let u = Utility::new(vec![1.0, 1.0]).unwrap();
        let ids: Vec<_> = top_k(&db, &u, 3).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert_eq!(top1(&db, &u).unwrap().id, 2);
    }
}
