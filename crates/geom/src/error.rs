//! Error type for constructing geometric objects from raw user data.

use std::fmt;

/// Errors raised when validating tuples and utility vectors.
///
/// The k-RMS formulation requires every attribute to be a finite,
/// nonnegative number and every utility vector to be a nonnegative unit
/// vector; these are the ways raw input can violate that contract.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Index of the offending dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// A coordinate was negative (tuples live in the nonnegative orthant).
    NegativeCoordinate {
        /// Index of the offending dimension.
        dim: usize,
        /// The offending value.
        value: f64,
    },
    /// A point or utility vector had zero dimensions.
    EmptyDimensions,
    /// Two objects that must agree on dimensionality did not.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A utility vector had (near-)zero norm and cannot be normalised.
    ZeroNorm,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NonFiniteCoordinate { dim, value } => {
                write!(f, "coordinate {dim} is not finite: {value}")
            }
            GeomError::NegativeCoordinate { dim, value } => {
                write!(f, "coordinate {dim} is negative: {value}")
            }
            GeomError::EmptyDimensions => write!(f, "objects must have at least one dimension"),
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::ZeroNorm => write!(f, "utility vector has zero norm"),
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GeomError::NonFiniteCoordinate {
            dim: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("coordinate 2"));
        let e = GeomError::NegativeCoordinate {
            dim: 0,
            value: -1.0,
        };
        assert!(e.to_string().contains("negative"));
        let e = GeomError::DimensionMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        assert!(GeomError::EmptyDimensions.to_string().contains("dimension"));
        assert!(GeomError::ZeroNorm.to_string().contains("zero norm"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GeomError>();
    }
}
