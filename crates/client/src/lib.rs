//! # rms-client — a typed, std-only client for the krms serving protocol
//!
//! Speaks the line protocol of `rms-serve`'s TCP front end (v1 verbs
//! plus the v2 `HELLO`/`BATCH`/`SUBSCRIBE`/`METRICS` extensions) over a plain
//! `std::net::TcpStream`. The encoding and reply parsing are
//! implemented here from the protocol specification, *not* shared with
//! the server crate, so the wire format has two independent in-tree
//! implementations testing each other.
//!
//! ```no_run
//! use rms_client::{ClientOp, RmsClient};
//!
//! let mut client = RmsClient::connect("127.0.0.1:7878").unwrap();
//! client.insert(42, &[0.9, 0.8]).unwrap();
//! client.submit_batch(&[
//!     ClientOp::insert(43, vec![0.5, 0.5]),
//!     ClientOp::delete(7),
//! ]).unwrap();
//! let q = client.query().unwrap();
//! println!("epoch(s) {:?}: solution {:?}", q.epochs, q.ids);
//!
//! // Push mode: the connection becomes a delta stream.
//! let mut sub = client.subscribe(1).unwrap();
//! while let Some(delta) = sub.next_delta().unwrap() {
//!     println!("v{} +{:?} -{:?} (ids now {:?})",
//!              delta.version, delta.added, delta.removed, sub.ids());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The newest protocol version this client speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// The server's cap on op lines per `BATCH` frame (a larger header makes
/// the server close the connection). [`RmsClient::submit_batch`] chunks
/// transparently, so callers never need to check it themselves.
pub const MAX_BATCH_LINES: usize = 1 << 16;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was closed mid-reply.
    Io(std::io::Error),
    /// The server replied `ERR <reason>`; the connection is still usable.
    Server(String),
    /// The reply did not have the documented shape.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One mutation, as the client encodes it (ids and raw coordinates — no
/// dependency on the engine's types).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Insert a fresh tuple.
    Insert {
        /// Tuple id (must not be live).
        id: u64,
        /// Attribute values, one per dimension.
        coords: Vec<f64>,
    },
    /// Delete a live tuple.
    Delete {
        /// Tuple id (must be live).
        id: u64,
    },
    /// Replace a live tuple's attributes.
    Update {
        /// Tuple id (must be live).
        id: u64,
        /// Replacement attribute values.
        coords: Vec<f64>,
    },
}

impl ClientOp {
    /// Shorthand for [`ClientOp::Insert`].
    pub fn insert(id: u64, coords: Vec<f64>) -> Self {
        ClientOp::Insert { id, coords }
    }

    /// Shorthand for [`ClientOp::Delete`].
    pub fn delete(id: u64) -> Self {
        ClientOp::Delete { id }
    }

    /// Shorthand for [`ClientOp::Update`].
    pub fn update(id: u64, coords: Vec<f64>) -> Self {
        ClientOp::Update { id, coords }
    }

    fn encode(&self) -> String {
        fn coords_str(coords: &[f64]) -> String {
            coords
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        }
        match self {
            ClientOp::Insert { id, coords } => format!("INSERT {id} {}", coords_str(coords)),
            ClientOp::Delete { id } => format!("DELETE {id}"),
            ClientOp::Update { id, coords } => format!("UPDATE {id} {}", coords_str(coords)),
        }
    }
}

/// What the server advertised in its `HELLO` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// The negotiated protocol version (min of both sides).
    pub version: u32,
    /// Tuple dimensionality `d`.
    pub dim: usize,
    /// Rank depth `k`.
    pub k: usize,
    /// Result size budget `r`.
    pub r: usize,
    /// Shard count (1 for a single service).
    pub shards: usize,
}

/// A parsed `QUERY` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Per-shard publication epochs (one entry against a single
    /// service).
    pub epochs: Vec<u64>,
    /// Live tuples `n`.
    pub n: usize,
    /// Ids of the published solution, ascending.
    pub ids: Vec<u64>,
}

/// A parsed `STATS` reply: every `key=value` field, with typed access to
/// the common ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    fields: BTreeMap<String, String>,
}

impl ServerStats {
    /// The raw value of `key`, if the server reported it.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// `key` parsed as an integer.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// Per-shard publication epochs (from `epoch=` or `epochs=`).
    pub fn epochs(&self) -> Vec<u64> {
        parse_epoch_fields(&self.fields)
    }

    /// Operations the engine accepted so far.
    pub fn ops_applied(&self) -> Option<u64> {
        self.get_u64("ops_applied")
    }

    /// Operations validation rejected so far.
    pub fn ops_rejected(&self) -> Option<u64> {
        self.get_u64("ops_rejected")
    }
}

/// One pushed `DELTA` line, already parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Per-shard epochs after the delta.
    pub epochs: Vec<u64>,
    /// Scalar version after the delta (epoch, or epoch-vector sum).
    pub version: u64,
    /// Scalar version the delta applies on top of.
    pub from: u64,
    /// Live tuples after the delta.
    pub n: usize,
    /// Ids that entered (or changed within) the solution.
    pub added: Vec<u64>,
    /// Ids that left the solution.
    pub removed: Vec<u64>,
}

/// A typed client connection. Every call sends one request line and
/// reads one reply line; [`RmsClient::subscribe`] consumes the client
/// and turns the connection into a push-mode [`Subscription`].
#[derive(Debug)]
pub struct RmsClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    hello: ServerHello,
}

impl RmsClient {
    /// Connects and negotiates protocol v2 (`HELLO v2`). The returned
    /// client still speaks every v1 verb; [`RmsClient::hello`] reports
    /// what the server advertised.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Self {
            reader,
            writer: stream,
            hello: ServerHello {
                version: 1,
                dim: 0,
                k: 0,
                r: 0,
                shards: 1,
            },
        };
        let reply = client.roundtrip(&format!("HELLO v{PROTOCOL_VERSION}"))?;
        client.hello = parse_hello(&reply)?;
        Ok(client)
    }

    /// What the server advertised at connect time.
    pub fn hello(&self) -> ServerHello {
        self.hello
    }

    /// Sets (or clears, with `None`) the socket read timeout for replies
    /// and pushed deltas.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<String, ClientError> {
        read_ok_line(&mut self.reader)
    }

    fn roundtrip(&mut self, line: &str) -> Result<String, ClientError> {
        self.send(line)?;
        self.read_reply()
    }

    /// Submits one mutation; `Ok` means the server acknowledged the
    /// enqueue (`OK queued`).
    pub fn submit(&mut self, op: &ClientOp) -> Result<(), ClientError> {
        self.roundtrip(&op.encode()).map(|_| ())
    }

    /// Enqueues an insertion.
    pub fn insert(&mut self, id: u64, coords: &[f64]) -> Result<(), ClientError> {
        self.submit(&ClientOp::insert(id, coords.to_vec()))
    }

    /// Enqueues a deletion.
    pub fn delete(&mut self, id: u64) -> Result<(), ClientError> {
        self.submit(&ClientOp::delete(id))
    }

    /// Enqueues an attribute update.
    pub fn update(&mut self, id: u64, coords: &[f64]) -> Result<(), ClientError> {
        self.submit(&ClientOp::update(id, coords.to_vec()))
    }

    /// Submits `ops` as one pipelined `BATCH`: all op lines go out in a
    /// single write and the server acknowledges once for all of them —
    /// the ingest hot path amortization (requires a v2 server, which
    /// [`RmsClient::connect`] negotiates).
    ///
    /// A frame the server rejects as *malformed* queues none of its ops
    /// (all-or-nothing at the framing level). A mid-batch failure after
    /// framing — the server shutting down part-way — can leave a prefix
    /// queued; the `ERR` reply reports how many (`… (i of n queued)`),
    /// so retrying the whole batch against a recovered server may
    /// re-apply that prefix. Batches above the server's per-frame cap
    /// ([`MAX_BATCH_LINES`]) are split into multiple frames
    /// transparently (one ack each; the returned count sums them).
    pub fn submit_batch(&mut self, ops: &[ClientOp]) -> Result<usize, ClientError> {
        let mut total = 0;
        for chunk in ops.chunks(MAX_BATCH_LINES.max(1)) {
            let mut lines = format!("BATCH {}\n", chunk.len());
            for op in chunk {
                lines.push_str(&op.encode());
                lines.push('\n');
            }
            self.writer.write_all(lines.as_bytes())?;
            let reply = self.read_reply()?;
            total += field(&reply, "n")
                .and_then(|v| v.parse::<usize>().ok())
                .ok_or_else(|| ClientError::Protocol(format!("no n= in batch ack `{reply}`")))?;
        }
        Ok(total)
    }

    /// Reads the published solution.
    pub fn query(&mut self) -> Result<QueryResult, ClientError> {
        let reply = self.roundtrip("QUERY")?;
        let fields = parse_fields(&reply);
        let epochs = parse_epoch_fields(&fields);
        if epochs.is_empty() {
            return Err(ClientError::Protocol(format!(
                "no epoch(s) in query reply `{reply}`"
            )));
        }
        let n = fields
            .get("n")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("no n= in query reply `{reply}`")))?;
        let ids = fields
            .get("ids")
            .map(|v| parse_id_list(v))
            .transpose()?
            .ok_or_else(|| ClientError::Protocol(format!("no ids= in query reply `{reply}`")))?;
        Ok(QueryResult { epochs, n, ids })
    }

    /// Reads service metrics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let reply = self.roundtrip("STATS")?;
        Ok(ServerStats {
            fields: parse_fields(&reply),
        })
    }

    /// Reads the server's Prometheus text exposition (`METRICS`,
    /// requires a v2 server, which [`RmsClient::connect`] negotiates):
    /// the `OK metrics lines=N` header is followed by `N` raw exposition
    /// lines, returned joined with `\n` (trailing newline included, as
    /// a scrape endpoint would serve it; empty string when the server
    /// exposes no metric families).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = self.roundtrip("METRICS")?;
        let lines: usize = field(&reply, "lines")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("no lines= in metrics ack `{reply}`")))?;
        let mut body = String::new();
        let mut line = String::new();
        for i in 0..lines {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(format!(
                    "metrics body truncated: got {i} of {lines} lines"
                )));
            }
            body.push_str(line.trim_end_matches(['\r', '\n']));
            body.push('\n');
        }
        Ok(body)
    }

    /// Asks the server to drain and stop (`SHUTDOWN`).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip("SHUTDOWN").map(|_| ())
    }

    /// Switches the connection to push mode: the server acknowledges
    /// with the starting solution and then streams one `DELTA` line per
    /// `every` published epochs. The returned [`Subscription`] applies
    /// each delta to its mirror of the solution as it yields it.
    pub fn subscribe(self, every: u64) -> Result<Subscription, ClientError> {
        self.subscribe_line(&format!("SUBSCRIBE every={every}"))
    }

    /// Like [`RmsClient::subscribe`], but with a server-side id-range
    /// filter (`SUBSCRIBE every=K ids=LO..HI`, bounds inclusive): the
    /// ack's starting ids and every streamed delta's `+`/`-` lists are
    /// sliced to the range before they cross the wire, so the
    /// subscription mirrors only the `[lo, hi]` slice of the solution.
    /// Header-only `DELTA` lines still arrive for versions whose slice
    /// is empty, so [`Subscription::epochs`] tracks every version.
    pub fn subscribe_filtered(
        self,
        every: u64,
        lo: u64,
        hi: u64,
    ) -> Result<Subscription, ClientError> {
        self.subscribe_line(&format!("SUBSCRIBE every={every} ids={lo}..{hi}"))
    }

    fn subscribe_line(mut self, request: &str) -> Result<Subscription, ClientError> {
        let reply = self.roundtrip(request)?;
        let fields = parse_fields(&reply);
        let epochs = parse_epoch_fields(&fields);
        if epochs.is_empty() {
            return Err(ClientError::Protocol(format!(
                "no epoch(s) in subscribe ack `{reply}`"
            )));
        }
        let ids = fields
            .get("ids")
            .map(|v| parse_id_list(v))
            .transpose()?
            .ok_or_else(|| ClientError::Protocol(format!("no ids= in subscribe ack `{reply}`")))?;
        Ok(Subscription {
            reader: self.reader,
            solution: ids.into_iter().collect(),
            epochs,
        })
    }
}

/// A push-mode connection produced by [`RmsClient::subscribe`]: yields
/// parsed [`Delta`]s and maintains the solution they reconstruct.
#[derive(Debug)]
pub struct Subscription {
    reader: BufReader<TcpStream>,
    solution: BTreeSet<u64>,
    epochs: Vec<u64>,
}

impl Subscription {
    /// The reconstructed solution ids (base state plus every delta
    /// yielded so far), ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.solution.iter().copied().collect()
    }

    /// Per-shard epochs of the last yielded delta (the base state's
    /// before any delta arrives).
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// Blocks for the next delta, applies it to the mirrored solution,
    /// and returns it; `Ok(None)` means the stream ended (server
    /// shutdown).
    pub fn next_delta(&mut self) -> Result<Option<Delta>, ClientError> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            let delta = parse_delta(trimmed)?;
            for id in &delta.removed {
                self.solution.remove(id);
            }
            for id in &delta.added {
                self.solution.insert(*id);
            }
            self.epochs.clone_from(&delta.epochs);
            return Ok(Some(delta));
        }
    }
}

impl Iterator for Subscription {
    type Item = Result<Delta, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_delta().transpose()
    }
}

/// Reads one reply line, mapping `ERR …` to [`ClientError::Server`] and
/// EOF to an unexpected-close error.
fn read_ok_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )));
    }
    let line = line.trim_end();
    if let Some(msg) = line.strip_prefix("ERR ") {
        return Err(ClientError::Server(msg.to_string()));
    }
    if line == "ERR" {
        return Err(ClientError::Server(String::new()));
    }
    if !line.starts_with("OK") {
        return Err(ClientError::Protocol(format!(
            "reply is neither OK nor ERR: `{line}`"
        )));
    }
    Ok(line.to_string())
}

/// Splits a reply into its `key=value` fields (tokens without `=` are
/// ignored).
fn parse_fields(line: &str) -> BTreeMap<String, String> {
    line.split_whitespace()
        .filter_map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

/// One token's `key=value` value, straight off a reply line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|tok| {
        tok.split_once('=')
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| v)
    })
}

/// The epoch vector of a reply: `epochs=e0,e1,…` (sharded) or `epoch=E`
/// (single); empty when neither field is present.
fn parse_epoch_fields(fields: &BTreeMap<String, String>) -> Vec<u64> {
    if let Some(v) = fields.get("epochs") {
        return parse_id_list(v).unwrap_or_default();
    }
    if let Some(v) = fields.get("epoch") {
        if let Ok(e) = v.parse() {
            return vec![e];
        }
    }
    Vec::new()
}

/// Parses a comma-separated id list (empty string → empty list).
fn parse_id_list(raw: &str) -> Result<Vec<u64>, ClientError> {
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|tok| {
            tok.parse()
                .map_err(|_| ClientError::Protocol(format!("invalid id `{tok}`")))
        })
        .collect()
}

fn parse_hello(reply: &str) -> Result<ServerHello, ClientError> {
    let version = reply
        .split_whitespace()
        .nth(1)
        .and_then(|tok| tok.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("no version in hello reply `{reply}`")))?;
    let get = |key: &str| field(reply, key).and_then(|v| v.parse().ok());
    Ok(ServerHello {
        version,
        dim: get("dim").unwrap_or(0),
        k: get("k").unwrap_or(0),
        r: get("r").unwrap_or(0),
        shards: get("shards").unwrap_or(1),
    })
}

/// Parses one pushed `DELTA` line.
fn parse_delta(line: &str) -> Result<Delta, ClientError> {
    let rest = line
        .strip_prefix("DELTA")
        .ok_or_else(|| ClientError::Protocol(format!("expected a DELTA line, got `{line}`")))?;
    let mut epochs = Vec::new();
    let mut version = None;
    let mut from = None;
    let mut n = None;
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("epoch=") {
            let e = v
                .parse()
                .map_err(|_| ClientError::Protocol(format!("invalid epoch `{v}`")))?;
            epochs = vec![e];
            version.get_or_insert(e);
        } else if let Some(v) = tok.strip_prefix("epochs=") {
            epochs = parse_id_list(v)?;
        } else if let Some(v) = tok.strip_prefix("version=") {
            version = Some(
                v.parse()
                    .map_err(|_| ClientError::Protocol(format!("invalid version `{v}`")))?,
            );
        } else if let Some(v) = tok.strip_prefix("from=") {
            from = Some(
                v.parse()
                    .map_err(|_| ClientError::Protocol(format!("invalid from `{v}`")))?,
            );
        } else if let Some(v) = tok.strip_prefix("n=") {
            n = Some(
                v.parse()
                    .map_err(|_| ClientError::Protocol(format!("invalid n `{v}`")))?,
            );
        } else if let Some(v) = tok.strip_prefix('+') {
            added = parse_id_list(v)?;
        } else if let Some(v) = tok.strip_prefix('-') {
            removed = parse_id_list(v)?;
        }
    }
    let version = version.or_else(|| (!epochs.is_empty()).then(|| epochs.iter().sum()));
    match (version, from, n) {
        (Some(version), Some(from), Some(n)) if !epochs.is_empty() => Ok(Delta {
            epochs,
            version,
            from,
            n,
            added,
            removed,
        }),
        _ => Err(ClientError::Protocol(format!(
            "incomplete DELTA line `{line}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_ops() {
        assert_eq!(
            ClientOp::insert(7, vec![0.5, 0.25]).encode(),
            "INSERT 7 0.5 0.25"
        );
        assert_eq!(ClientOp::delete(9).encode(), "DELETE 9");
        assert_eq!(ClientOp::update(3, vec![1.0, 0.0]).encode(), "UPDATE 3 1 0");
    }

    #[test]
    fn parses_single_service_delta() {
        let d = parse_delta("DELTA epoch=7 from=5 n=120 +10,11 -3").unwrap();
        assert_eq!(d.epochs, vec![7]);
        assert_eq!(d.version, 7);
        assert_eq!(d.from, 5);
        assert_eq!(d.n, 120);
        assert_eq!(d.added, vec![10, 11]);
        assert_eq!(d.removed, vec![3]);
    }

    #[test]
    fn parses_sharded_delta_and_empty_sets() {
        let d = parse_delta("DELTA epochs=2,0,1 version=3 from=1 n=60").unwrap();
        assert_eq!(d.epochs, vec![2, 0, 1]);
        assert_eq!(d.version, 3);
        assert_eq!(d.from, 1);
        assert!(d.added.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn rejects_malformed_deltas() {
        assert!(parse_delta("NOPE epoch=1 from=0 n=1").is_err());
        assert!(parse_delta("DELTA from=0 n=1").is_err(), "no epochs");
        assert!(parse_delta("DELTA epoch=1 n=1").is_err(), "no from");
        assert!(parse_delta("DELTA epoch=x from=0 n=1").is_err());
    }

    #[test]
    fn parses_hello() {
        let h = parse_hello("OK v2 dim=4 k=2 r=16 shards=3").unwrap();
        assert_eq!(
            h,
            ServerHello {
                version: 2,
                dim: 4,
                k: 2,
                r: 16,
                shards: 3
            }
        );
        assert!(parse_hello("OK queued").is_err());
    }
}
