//! Named datasets matching the paper's evaluation (Table I).
//!
//! The four real datasets are replaced by synthetic stand-ins with the same
//! `(n, d)` and generator mixes chosen so that the skyline fraction falls in
//! the same regime as Table I:
//!
//! | name  | n       | d  | paper #skylines | stand-in recipe |
//! |-------|---------|----|-----------------|-----------------|
//! | BB    | 21 961  | 5  | 200 (0.9%)      | strongly correlated |
//! | AQ    | 382 168 | 9  | 21 065 (5.5%)   | correlated/independent mixture |
//! | CT    | 581 012 | 8  | 77 217 (13%)    | independent with mild anti-correlation |
//! | Movie | 13 176  | 12 | 3 293 (25%)     | independent (high-d ⇒ large skyline) |
//!
//! Indep and AntiCor are generated exactly as in the paper ([9]), default
//! `n = 100 K`, `d = 6`.
//!
//! Every spec carries a `scale` factor so experiments can run at a fraction
//! of the paper's cardinality while keeping d and the distribution shape;
//! the bench harness records the scale it used.

use crate::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rms_geom::Point;

/// The six datasets of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedDataset {
    /// Basketball player/season stand-in (21 961 × 5, tiny skyline).
    Bb,
    /// Beijing air-quality stand-in (382 168 × 9).
    Aq,
    /// Forest cover-type stand-in (581 012 × 8).
    Ct,
    /// MovieLens tag-genome stand-in (13 176 × 12, large skyline).
    Movie,
    /// Independent synthetic data (exact paper construction).
    Indep,
    /// Anti-correlated synthetic data (exact paper construction).
    AntiCor,
}

impl NamedDataset {
    /// All six datasets in the order the paper lists them.
    pub const ALL: [NamedDataset; 6] = [
        NamedDataset::Bb,
        NamedDataset::Aq,
        NamedDataset::Ct,
        NamedDataset::Movie,
        NamedDataset::Indep,
        NamedDataset::AntiCor,
    ];

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            NamedDataset::Bb => "BB",
            NamedDataset::Aq => "AQ",
            NamedDataset::Ct => "CT",
            NamedDataset::Movie => "Movie",
            NamedDataset::Indep => "Indep",
            NamedDataset::AntiCor => "AntiCor",
        }
    }

    /// The default specification (paper-scale `n`, paper `d`).
    pub fn spec(self) -> DatasetSpec {
        match self {
            NamedDataset::Bb => DatasetSpec::new(self, 21_961, 5),
            NamedDataset::Aq => DatasetSpec::new(self, 382_168, 9),
            NamedDataset::Ct => DatasetSpec::new(self, 581_012, 8),
            NamedDataset::Movie => DatasetSpec::new(self, 13_176, 12),
            NamedDataset::Indep => DatasetSpec::new(self, 100_000, 6),
            NamedDataset::AntiCor => DatasetSpec::new(self, 100_000, 6),
        }
    }
}

/// A concrete dataset recipe: which family, how many tuples, how many
/// dimensions, and the RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which named dataset this spec derives from.
    pub dataset: NamedDataset,
    /// Number of tuples to generate.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl DatasetSpec {
    /// Creates a spec with the default seed.
    pub fn new(dataset: NamedDataset, n: usize, d: usize) -> Self {
        Self {
            dataset,
            n,
            d,
            seed: 0x5eed_0000 ^ (d as u64) << 32 ^ n as u64,
        }
    }

    /// Returns a copy scaled to `n.ceil(n * scale)` tuples (dimension and
    /// distribution unchanged). `scale` must be in `(0, 1]`.
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.n = ((self.n as f64) * scale).ceil().max(1.0) as usize;
        self
    }

    /// Returns a copy with a different cardinality.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Returns a copy with a different dimensionality.
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialises the dataset.
    pub fn generate(&self) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.dataset {
            // Strongly correlated ⇒ sub-1% skyline, like the BB stats data
            // where good players are good across the board.
            NamedDataset::Bb => generators::correlated(&mut rng, self.n, self.d),
            // Pollutant concentrations correlate with each other but not
            // with the meteorological attributes: mixture.
            NamedDataset::Aq => generators::mixture(&mut rng, self.n, self.d, 0.85),
            // Cartographic attributes: mostly independent with a mild
            // anti-correlated component (elevation vs temperature-like
            // trade-offs).
            NamedDataset::Ct => blend_anticor(&mut rng, self.n, self.d, 0.15),
            // Tag-relevance vectors behave like independent coordinates in
            // high dimension: large skylines.
            NamedDataset::Movie => generators::independent(&mut rng, self.n, self.d),
            NamedDataset::Indep => generators::independent(&mut rng, self.n, self.d),
            NamedDataset::AntiCor => generators::anticorrelated(&mut rng, self.n, self.d),
        }
    }
}

/// Independent points with a `frac` admixture of anti-correlated points.
fn blend_anticor<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize, frac: f64) -> Vec<Point> {
    let n_anti = (n as f64 * frac).round() as usize;
    let mut pts = generators::anticorrelated(rng, n_anti, d);
    let rest = generators::independent(rng, n - n_anti, d);
    pts.extend(
        rest.into_iter()
            .enumerate()
            .map(|(i, p)| p.with_id((n_anti + i) as u64)),
    );
    pts
}

/// Looks a dataset up by its (case-insensitive) paper name.
pub fn dataset_by_name(name: &str) -> Option<NamedDataset> {
    NamedDataset::ALL
        .into_iter()
        .find(|ds| ds.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table1_dimensions() {
        assert_eq!(NamedDataset::Bb.spec().n, 21_961);
        assert_eq!(NamedDataset::Bb.spec().d, 5);
        assert_eq!(NamedDataset::Aq.spec().d, 9);
        assert_eq!(NamedDataset::Ct.spec().n, 581_012);
        assert_eq!(NamedDataset::Movie.spec().d, 12);
        assert_eq!(NamedDataset::Indep.spec().n, 100_000);
        assert_eq!(NamedDataset::AntiCor.spec().d, 6);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("bb"), Some(NamedDataset::Bb));
        assert_eq!(dataset_by_name("ANTICOR"), Some(NamedDataset::AntiCor));
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = NamedDataset::Indep.spec().scaled(0.001);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn scaled_changes_only_n() {
        let spec = NamedDataset::Ct.spec();
        let small = spec.scaled(0.01);
        assert_eq!(small.d, spec.d);
        assert_eq!(small.n, (spec.n as f64 * 0.01).ceil() as usize);
        let pts = small.generate();
        assert_eq!(pts.len(), small.n);
        assert!(pts.iter().all(|p| p.dim() == spec.d));
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn scaled_rejects_bad_scale() {
        let _ = NamedDataset::Bb.spec().scaled(0.0);
    }

    #[test]
    fn standins_hit_table1_skyline_regimes() {
        // At 1/10 scale the *fraction* of skyline tuples should sit in the
        // same regime as Table I: BB ≪ AQ < CT < Movie.
        let frac = |ds: NamedDataset| {
            let pts = ds.spec().scaled(0.02).generate();
            let sky = pts
                .iter()
                .filter(|p| !pts.iter().any(|q| rms_geom::dominates(q, p)))
                .count();
            sky as f64 / pts.len() as f64
        };
        let bb = frac(NamedDataset::Bb);
        let movie = frac(NamedDataset::Movie);
        assert!(bb < 0.05, "BB skyline fraction too large: {bb}");
        assert!(movie > 0.1, "Movie skyline fraction too small: {movie}");
        assert!(bb < movie);
    }
}
