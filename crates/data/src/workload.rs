//! Dynamic workloads: sequences of tuple insertions and deletions.
//!
//! Implements the experimental protocol of Section IV-A: "First, we
//! randomly picked 50% of tuples as the initial dataset P0; Second, we
//! inserted the remaining 50% of tuples one by one …; Third, we randomly
//! deleted 50% of tuples one by one …. The k-RMS results were recorded 10
//! times when 10%, 20%, …, 100% of the operations were performed."

use rand::seq::SliceRandom;
use rand::Rng;
use rms_geom::{Point, PointId};

/// A single database update `Δ_t` (Section II-B). The paper models an
/// update as delete-then-insert; the explicit [`Operation::Update`]
/// variant lets batch consumers (the FD-RMS engine) exploit the fact that
/// the tuple id is retained.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// `Δ_t = 〈p, +〉`: insert tuple `p`.
    Insert(Point),
    /// `Δ_t = 〈p, −〉`: delete the tuple with this id.
    Delete(PointId),
    /// Replace the attributes of the live tuple with this id.
    Update(Point),
}

impl Operation {
    /// `true` for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Operation::Insert(_))
    }

    /// `true` for deletions.
    pub fn is_delete(&self) -> bool {
        matches!(self, Operation::Delete(_))
    }

    /// `true` for attribute updates.
    pub fn is_update(&self) -> bool {
        matches!(self, Operation::Update(_))
    }
}

/// Tuning knobs for workload generation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Fraction of tuples in the initial database `P0` (paper: 0.5).
    pub initial_fraction: f64,
    /// Fraction of tuples deleted in the deletion phase (paper: 0.5).
    pub delete_fraction: f64,
    /// Number of evenly spaced checkpoints at which results are recorded
    /// (paper: 10).
    pub checkpoints: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            initial_fraction: 0.5,
            delete_fraction: 0.5,
            checkpoints: 10,
        }
    }
}

/// A fully materialised dynamic workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The initial database `P0`.
    pub initial: Vec<Point>,
    /// The operation sequence `Δ` applied after `P0`.
    pub operations: Vec<Operation>,
    /// Indices into `operations` *after which* a result should be recorded
    /// (the last one equals `operations.len() − 1`).
    pub checkpoints: Vec<usize>,
}

impl Workload {
    /// Number of insert operations in the sequence.
    pub fn num_inserts(&self) -> usize {
        self.operations.iter().filter(|o| o.is_insert()).count()
    }

    /// Number of delete operations in the sequence.
    pub fn num_deletes(&self) -> usize {
        self.operations.iter().filter(|o| o.is_delete()).count()
    }

    /// Number of update operations in the sequence.
    pub fn num_updates(&self) -> usize {
        self.operations.iter().filter(|o| o.is_update()).count()
    }

    /// The operation sequence chunked into batches of (at most)
    /// `batch_size` operations, in stream order — the shape the FD-RMS
    /// batch engine ingests. The final batch may be shorter.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[Operation]> {
        assert!(batch_size > 0, "batch size must be positive");
        self.operations.chunks(batch_size)
    }

    /// Replays the workload against a plain vector, returning the database
    /// state after every operation was applied. Used by tests as ground
    /// truth for dynamic data structures.
    pub fn final_state(&self) -> Vec<Point> {
        let mut db: Vec<Point> = self.initial.clone();
        for op in &self.operations {
            match op {
                Operation::Insert(p) => db.push(p.clone()),
                Operation::Delete(id) => {
                    let pos = db
                        .iter()
                        .position(|p| p.id() == *id)
                        .expect("workload deletes only live tuples");
                    db.swap_remove(pos);
                }
                Operation::Update(p) => {
                    let pos = db
                        .iter()
                        .position(|q| q.id() == p.id())
                        .expect("workload updates only live tuples");
                    db[pos] = p.clone();
                }
            }
        }
        db
    }
}

/// Generates the paper's insert-then-delete workload over `points`.
///
/// The tuple order is shuffled with `rng`; deletions are drawn uniformly
/// from all tuples present at deletion time (both initial and inserted
/// ones), as in the paper's "randomly deleted 50% of tuples".
pub fn paper_workload<R: Rng + ?Sized>(
    rng: &mut R,
    points: Vec<Point>,
    config: WorkloadConfig,
) -> Workload {
    assert!((0.0..=1.0).contains(&config.initial_fraction));
    assert!((0.0..=1.0).contains(&config.delete_fraction));
    let mut points = points;
    points.shuffle(rng);
    let n = points.len();
    let n_init = ((n as f64) * config.initial_fraction).round() as usize;
    let initial: Vec<Point> = points[..n_init].to_vec();
    let inserts: Vec<Point> = points[n_init..].to_vec();

    let mut operations: Vec<Operation> = inserts.into_iter().map(Operation::Insert).collect();

    // Deletions target a random delete_fraction of the full tuple set.
    let n_del = ((n as f64) * config.delete_fraction).round() as usize;
    let mut all_ids: Vec<PointId> = points.iter().map(|p| p.id()).collect();
    all_ids.shuffle(rng);
    operations.extend(all_ids.into_iter().take(n_del).map(Operation::Delete));

    let total = operations.len();
    let checkpoints = if total == 0 || config.checkpoints == 0 {
        Vec::new()
    } else {
        (1..=config.checkpoints)
            .map(|i| (total * i / config.checkpoints).max(1) - 1)
            .collect()
    };

    Workload {
        initial,
        operations,
        checkpoints,
    }
}

/// Tuning knobs for [`mixed_workload`] generation.
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Fraction of tuples in the initial database `P0`.
    pub initial_fraction: f64,
    /// Number of operations to generate.
    pub ops: usize,
    /// Relative weight of insertions.
    pub insert_weight: u32,
    /// Relative weight of deletions.
    pub delete_weight: u32,
    /// Relative weight of attribute updates.
    pub update_weight: u32,
    /// Number of evenly spaced result checkpoints.
    pub checkpoints: usize,
}

impl Default for MixedConfig {
    fn default() -> Self {
        Self {
            initial_fraction: 0.5,
            ops: 0, // 0 ⇒ one operation per non-initial tuple
            insert_weight: 2,
            delete_weight: 1,
            update_weight: 1,
            checkpoints: 10,
        }
    }
}

/// Generates an interleaved insert/delete/update stream — the batch-mode
/// workload the FD-RMS engine ingests (chunk it with
/// [`Workload::batches`]).
///
/// A random `initial_fraction` of `points` seeds `P0`; the rest form the
/// insertion pool, drawn in shuffled order. Deletions target a uniformly
/// random live tuple. Updates perturb a uniformly random live tuple's
/// attributes by at most ±5% per coordinate (clamped to `[0, 1]`),
/// modelling drifting measurements while keeping the distribution shape.
/// Operations that cannot apply (empty pool or empty database) fall back
/// to another kind, so exactly `ops` operations are produced whenever any
/// kind remains applicable.
pub fn mixed_workload<R: Rng + ?Sized>(
    rng: &mut R,
    points: Vec<Point>,
    config: MixedConfig,
) -> Workload {
    assert!((0.0..=1.0).contains(&config.initial_fraction));
    let total_weight = config.insert_weight + config.delete_weight + config.update_weight;
    assert!(total_weight > 0, "at least one operation kind must be on");
    let mut points = points;
    points.shuffle(rng);
    let n = points.len();
    let n_init = ((n as f64) * config.initial_fraction).round() as usize;
    let initial: Vec<Point> = points[..n_init].to_vec();
    // Pool popped back-to-front keeps the shuffled draw order.
    let mut pool: Vec<Point> = points[n_init..].iter().rev().cloned().collect();
    let mut live: Vec<Point> = initial.clone();

    let target_ops = if config.ops == 0 {
        n - n_init
    } else {
        config.ops
    };
    let mut operations: Vec<Operation> = Vec::with_capacity(target_ops);
    while operations.len() < target_ops {
        let roll = rng.gen_range(0..total_weight);
        let want_insert = roll < config.insert_weight;
        let want_delete = !want_insert && roll < config.insert_weight + config.delete_weight;
        if (want_insert || live.is_empty()) && !pool.is_empty() {
            let p = pool.pop().expect("checked nonempty");
            live.push(p.clone());
            operations.push(Operation::Insert(p));
        } else if live.is_empty() {
            break; // nothing left to delete, update, or insert
        } else if want_delete && !want_insert {
            let idx = rng.gen_range(0..live.len());
            operations.push(Operation::Delete(live.swap_remove(idx).id()));
        } else {
            let idx = rng.gen_range(0..live.len());
            let old = &live[idx];
            let coords: Vec<f64> = old
                .coords()
                .iter()
                .map(|&c| (c + rng.gen_range(-0.05..=0.05)).clamp(0.0, 1.0))
                .collect();
            let p = Point::new_unchecked(old.id(), coords);
            live[idx] = p.clone();
            operations.push(Operation::Update(p));
        }
    }

    let total = operations.len();
    let checkpoints = if total == 0 || config.checkpoints == 0 {
        Vec::new()
    } else {
        (1..=config.checkpoints)
            .map(|i| (total * i / config.checkpoints).max(1) - 1)
            .collect()
    };
    Workload {
        initial,
        operations,
        checkpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rms_geom::Point;

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new_unchecked(i as u64, vec![i as f64 / n as f64, 0.5]))
            .collect()
    }

    #[test]
    fn paper_split_is_50_50() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = paper_workload(&mut rng, points(1000), WorkloadConfig::default());
        assert_eq!(w.initial.len(), 500);
        assert_eq!(w.num_inserts(), 500);
        assert_eq!(w.num_deletes(), 500);
        assert_eq!(w.checkpoints.len(), 10);
        assert_eq!(*w.checkpoints.last().unwrap(), w.operations.len() - 1);
    }

    #[test]
    fn deletes_only_live_tuples_in_order() {
        let mut rng = StdRng::seed_from_u64(17);
        let w = paper_workload(&mut rng, points(200), WorkloadConfig::default());
        // Replaying must never panic (the expect() in final_state asserts
        // deletions always hit live tuples: inserts all precede deletes).
        let fin = w.final_state();
        assert_eq!(fin.len(), 100); // 200 − 50% deleted
    }

    #[test]
    fn inserts_precede_deletes() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = paper_workload(&mut rng, points(100), WorkloadConfig::default());
        let first_delete = w.operations.iter().position(|o| !o.is_insert()).unwrap();
        assert!(w.operations[..first_delete].iter().all(|o| o.is_insert()));
        assert!(w.operations[first_delete..].iter().all(|o| !o.is_insert()));
    }

    #[test]
    fn checkpoints_are_monotone() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = paper_workload(&mut rng, points(333), WorkloadConfig::default());
        for pair in w.checkpoints.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn custom_config_fractions() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = WorkloadConfig {
            initial_fraction: 0.8,
            delete_fraction: 0.1,
            checkpoints: 4,
        };
        let w = paper_workload(&mut rng, points(100), cfg);
        assert_eq!(w.initial.len(), 80);
        assert_eq!(w.num_inserts(), 20);
        assert_eq!(w.num_deletes(), 10);
        assert_eq!(w.checkpoints.len(), 4);
    }

    #[test]
    fn empty_input_yields_empty_workload() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = paper_workload(&mut rng, Vec::new(), WorkloadConfig::default());
        assert!(w.initial.is_empty());
        assert!(w.operations.is_empty());
        assert!(w.checkpoints.is_empty());
    }

    #[test]
    fn batches_chunk_in_stream_order() {
        let mut rng = StdRng::seed_from_u64(31);
        let w = paper_workload(&mut rng, points(100), WorkloadConfig::default());
        let rejoined: Vec<Operation> = w.batches(7).flatten().cloned().collect();
        assert_eq!(rejoined, w.operations);
        let sizes: Vec<usize> = w.batches(7).map(<[Operation]>::len).collect();
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 7));
        assert_eq!(w.batches(1_000_000).count(), 1);
    }

    #[test]
    fn mixed_workload_interleaves_all_kinds() {
        let mut rng = StdRng::seed_from_u64(37);
        let cfg = MixedConfig {
            ops: 400,
            ..MixedConfig::default()
        };
        let w = mixed_workload(&mut rng, points(300), cfg);
        assert_eq!(w.operations.len(), 400);
        assert!(w.num_inserts() > 0);
        assert!(w.num_deletes() > 0);
        assert!(w.num_updates() > 0);
        assert_eq!(
            w.num_inserts() + w.num_deletes() + w.num_updates(),
            w.operations.len()
        );
        // Replay must hit only live tuples (final_state panics otherwise)
        // and updated coordinates stay in the unit box.
        let fin = w.final_state();
        assert!(!fin.is_empty());
        for op in &w.operations {
            if let Operation::Update(p) = op {
                assert!(p.coords().iter().all(|c| (0.0..=1.0).contains(c)));
            }
        }
        assert_eq!(w.checkpoints.len(), 10);
    }

    #[test]
    fn mixed_workload_defaults_to_one_op_per_spare_tuple() {
        let mut rng = StdRng::seed_from_u64(41);
        let w = mixed_workload(&mut rng, points(200), MixedConfig::default());
        assert_eq!(w.initial.len(), 100);
        assert_eq!(w.operations.len(), 100);
    }

    #[test]
    fn mixed_workload_is_seed_deterministic() {
        let cfg = MixedConfig {
            ops: 120,
            ..MixedConfig::default()
        };
        let w1 = mixed_workload(&mut StdRng::seed_from_u64(43), points(80), cfg);
        let w2 = mixed_workload(&mut StdRng::seed_from_u64(43), points(80), cfg);
        assert_eq!(w1.initial, w2.initial);
        assert_eq!(w1.operations, w2.operations);
    }

    #[test]
    fn workload_is_seed_deterministic() {
        let w1 = paper_workload(
            &mut StdRng::seed_from_u64(9),
            points(50),
            WorkloadConfig::default(),
        );
        let w2 = paper_workload(
            &mut StdRng::seed_from_u64(9),
            points(50),
            WorkloadConfig::default(),
        );
        assert_eq!(w1.initial, w2.initial);
        assert_eq!(w1.operations, w2.operations);
    }
}
