//! Synthetic dataset generators.
//!
//! `independent` and `anticorrelated` follow the constructions of
//! Börzsönyi, Kossmann, Stocker — "The Skyline Operator" (ICDE 2001),
//! which the paper cites ([9]) as the source of its Indep and AntiCor
//! datasets. `correlated` is the third classic family from that paper and
//! is used by the real-data stand-ins.

use rand::Rng;
use rms_geom::Point;

/// Truncated-normal sample in `[0, 1]` with the given mean and standard
/// deviation (rejection sampling, as in the original skyline generator).
fn trunc_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    loop {
        let v = mean + sd * box_muller(rng);
        if (0.0..=1.0).contains(&v) {
            return v;
        }
    }
}

/// Standard normal via Box–Muller (rand's distributions feature set is not
/// available offline).
fn box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Independent dataset: `n` points uniform on the unit hypercube `[0,1]^d`,
/// attributes mutually independent.
pub fn independent<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Vec<Point> {
    assert!(d > 0);
    (0..n)
        .map(|id| {
            let coords = (0..d).map(|_| rng.gen::<f64>()).collect();
            Point::new_unchecked(id as u64, coords)
        })
        .collect()
}

/// Correlated dataset: points concentrated around the diagonal, so a tuple
/// good in one dimension tends to be good in all. Skylines are tiny.
///
/// Construction (Börzsönyi et al.): pick a base value `v` from a truncated
/// normal centred at 0.5, then set each attribute to a truncated normal
/// centred at `v` with small spread.
pub fn correlated<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Vec<Point> {
    assert!(d > 0);
    (0..n)
        .map(|id| {
            let v = trunc_normal(rng, 0.5, 0.25);
            let coords = (0..d).map(|_| trunc_normal(rng, v, 0.05)).collect();
            Point::new_unchecked(id as u64, coords)
        })
        .collect()
}

/// Anti-correlated dataset: points concentrated around the hyperplane
/// `Σ x_i ≈ d/2`, so a tuple good in one dimension tends to be bad in the
/// others. Skylines are large, which is the hard regime for k-RMS.
///
/// Construction (Börzsönyi et al.): draw a plane offset `v` from a tight
/// truncated normal around 0.5, spread `v·d` mass over the `d` attributes
/// by repeatedly moving mass between random pairs of coordinates.
pub fn anticorrelated<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize) -> Vec<Point> {
    assert!(d > 0);
    (0..n)
        .map(|id| {
            let v = trunc_normal(rng, 0.5, 0.05);
            let mut coords = vec![v; d];
            // Redistribute mass between pairs: keeps the sum constant while
            // anti-correlating the attributes.
            for _ in 0..d * 4 {
                let i = rng.gen_range(0..d);
                let j = rng.gen_range(0..d);
                if i == j {
                    continue;
                }
                // Maximum transferable mass keeping both in [0, 1].
                let max_shift = (coords[i]).min(1.0 - coords[j]);
                let shift = rng.gen::<f64>() * max_shift;
                coords[i] -= shift;
                coords[j] += shift;
            }
            Point::new_unchecked(id as u64, coords)
        })
        .collect()
}

/// Clustered mixture: `frac_corr` of the points from the correlated family
/// and the rest independent. Used by the real-data stand-ins to hit the
/// skyline-size regimes of Table I.
pub fn mixture<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize, frac_corr: f64) -> Vec<Point> {
    assert!((0.0..=1.0).contains(&frac_corr));
    let n_corr = (n as f64 * frac_corr).round() as usize;
    let mut pts = correlated(rng, n_corr, d);
    let indep = independent(rng, n - n_corr, d);
    pts.extend(
        indep
            .into_iter()
            .enumerate()
            .map(|(i, p)| p.with_id((n_corr + i) as u64)),
    );
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(20210405)
    }

    #[test]
    fn independent_shape_and_bounds() {
        let pts = independent(&mut rng(), 1000, 6);
        assert_eq!(pts.len(), 1000);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.id(), i as u64);
            assert_eq!(p.dim(), 6);
            assert!(p.coords().iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn correlated_attributes_correlate() {
        let pts = correlated(&mut rng(), 4000, 2);
        let corr = pearson(&pts, 0, 1);
        assert!(
            corr > 0.8,
            "expected strong positive correlation, got {corr}"
        );
    }

    #[test]
    fn anticorrelated_attributes_anticorrelate() {
        let pts = anticorrelated(&mut rng(), 4000, 2);
        let corr = pearson(&pts, 0, 1);
        assert!(corr < -0.5, "expected anti-correlation, got {corr}");
    }

    #[test]
    fn anticorrelated_sum_is_stable() {
        let d = 5;
        let pts = anticorrelated(&mut rng(), 2000, d);
        for p in &pts {
            let sum: f64 = p.coords().iter().sum();
            assert!((sum - d as f64 * 0.5).abs() < d as f64 * 0.3, "sum={sum}");
            assert!(p.coords().iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = anticorrelated(&mut StdRng::seed_from_u64(5), 50, 4);
        let b = anticorrelated(&mut StdRng::seed_from_u64(5), 50, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn mixture_fraction() {
        let pts = mixture(&mut rng(), 1000, 3, 0.3);
        assert_eq!(pts.len(), 1000);
        // Ids must stay unique and dense.
        let mut ids: Vec<u64> = pts.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn skyline_size_ordering_sanity() {
        // The classic regime: corr skyline << indep skyline << anticor
        // skyline for the same (n, d).
        let n = 3000;
        let d = 4;
        let sky = |pts: &[Point]| {
            pts.iter()
                .filter(|p| !pts.iter().any(|q| rms_geom::dominates(q, p)))
                .count()
        };
        let c = sky(&correlated(&mut rng(), n, d));
        let i = sky(&independent(&mut rng(), n, d));
        let a = sky(&anticorrelated(&mut rng(), n, d));
        assert!(c < i, "corr={c} indep={i}");
        assert!(i < a, "indep={i} anticor={a}");
    }

    fn pearson(pts: &[Point], i: usize, j: usize) -> f64 {
        let n = pts.len() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for p in pts {
            let x = p.coord(i);
            let y = p.coord(j);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let cov = sxy / n - (sx / n) * (sy / n);
        let vx = sxx / n - (sx / n) * (sx / n);
        let vy = syy / n - (sy / n) * (sy / n);
        cov / (vx.sqrt() * vy.sqrt())
    }
}
