//! Dataset generation and dynamic workloads for k-RMS experiments.
//!
//! The paper evaluates on four real datasets (BB, AQ, CT, Movie) and two
//! synthetic families (Indep, AntiCor, generated as in Börzsönyi et al.,
//! "The Skyline Operator", ICDE 2001). The real datasets are not
//! redistributable offline, so this crate ships *stand-ins*: synthetic
//! generators with the same cardinality and dimensionality, tuned to
//! produce skylines in the same size regime as Table I (see `DESIGN.md`
//! §2 for the substitution rationale).
//!
//! It also implements the paper's dynamic workload (Section IV-A):
//! start from a random 50% of the tuples, insert the remaining 50% one by
//! one, then delete a random 50% one by one, recording the k-RMS result at
//! every 10% of the operation sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod generators;
pub mod workload;

pub use catalog::{dataset_by_name, DatasetSpec, NamedDataset};
pub use generators::{anticorrelated, correlated, independent};
pub use workload::{
    mixed_workload, paper_workload, MixedConfig, Operation, Workload, WorkloadConfig,
};
