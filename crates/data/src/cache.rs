//! Compact binary serialization of datasets.
//!
//! Large benchmark datasets (up to 581 012 × 8 at full scale) are expensive
//! to regenerate on every harness run, so the bench crate caches them on
//! disk. The format is a minimal little-endian layout over plain byte
//! buffers:
//!
//! ```text
//! magic  u32  = 0x4B524D53 ("KRMS")
//! n      u64
//! d      u32
//! then n records: id u64, d × f64 coordinates
//! ```

use rms_geom::Point;

/// Magic number guarding against decoding foreign files.
const MAGIC: u32 = 0x4B52_4D53;

/// Errors from decoding a dataset buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the KRMS magic number.
    BadMagic,
    /// The buffer ended before the declared number of records.
    Truncated,
    /// Header declared zero dimensions.
    ZeroDimensions,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a KRMS dataset buffer"),
            DecodeError::Truncated => write!(f, "dataset buffer is truncated"),
            DecodeError::ZeroDimensions => write!(f, "dataset header declares d = 0"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian reader over a byte slice; each `get_*` consumes from the
/// front. Bounds are checked up front by [`decode`], so reads here assume
/// enough bytes remain.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        u32::from_le_bytes(head.try_into().expect("4-byte split"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        u64::from_le_bytes(head.try_into().expect("8-byte split"))
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Encodes a dataset into the compact binary format.
///
/// Panics if the points do not all share one dimensionality.
pub fn encode(points: &[Point]) -> Vec<u8> {
    let d = points.first().map_or(0, |p| p.dim());
    let mut buf = Vec::with_capacity(16 + points.len() * (8 + d * 8));
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(points.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(d as u32).to_le_bytes());
    for p in points {
        assert_eq!(p.dim(), d, "mixed dimensionality in dataset");
        buf.extend_from_slice(&p.id().to_le_bytes());
        for &c in p.coords() {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    buf
}

/// Decodes a dataset previously produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<Point>, DecodeError> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let n = buf.get_u64_le() as usize;
    let d = buf.get_u32_le() as usize;
    if n > 0 && d == 0 {
        return Err(DecodeError::ZeroDimensions);
    }
    let record = 8 + d * 8;
    if n.checked_mul(record)
        .is_none_or(|need| buf.remaining() < need)
    {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = buf.get_u64_le();
        let coords: Vec<f64> = (0..d).map(|_| buf.get_f64_le()).collect();
        out.push(Point::new_unchecked(id, coords));
    }
    Ok(out)
}

/// Writes an encoded dataset to `path` (creating parent directories).
pub fn save(path: &std::path::Path, points: &[Point]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(points))
}

/// Loads a dataset from `path`, returning `None` when the file is absent
/// or fails to decode (callers regenerate in that case).
pub fn load(path: &std::path::Path) -> Option<Vec<Point>> {
    let raw = std::fs::read(path).ok()?;
    decode(&raw).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Point> {
        vec![
            Point::new_unchecked(3, vec![0.1, 0.2, 0.3]),
            Point::new_unchecked(9, vec![1.0, 0.0, 0.5]),
        ]
    }

    #[test]
    fn roundtrip() {
        let pts = sample();
        assert_eq!(decode(&encode(&pts)).unwrap(), pts);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<Point>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&0xDEAD_BEEF_u32.to_le_bytes());
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&2u32.to_le_bytes());
        assert_eq!(decode(&raw), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let full = encode(&sample());
        let cut = &full[..full.len() - 4];
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_zero_dims_with_records() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC.to_le_bytes());
        raw.extend_from_slice(&5u64.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode(&raw), Err(DecodeError::ZeroDimensions));
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join("krms-cache-test");
        let path = dir.join("ds.krms");
        let pts = sample();
        save(&path, &pts).unwrap();
        assert_eq!(load(&path).unwrap(), pts);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).is_none());
    }
}
