//! Compact binary serialization of datasets.
//!
//! Large benchmark datasets (up to 581 012 × 8 at full scale) are expensive
//! to regenerate on every harness run, so the bench crate caches them on
//! disk. The format is a minimal little-endian layout built with `bytes`:
//!
//! ```text
//! magic  u32  = 0x4B524D53 ("KRMS")
//! n      u64
//! d      u32
//! then n records: id u64, d × f64 coordinates
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rms_geom::Point;

/// Magic number guarding against decoding foreign files.
const MAGIC: u32 = 0x4B52_4D53;

/// Errors from decoding a dataset buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the KRMS magic number.
    BadMagic,
    /// The buffer ended before the declared number of records.
    Truncated,
    /// Header declared zero dimensions.
    ZeroDimensions,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a KRMS dataset buffer"),
            DecodeError::Truncated => write!(f, "dataset buffer is truncated"),
            DecodeError::ZeroDimensions => write!(f, "dataset header declares d = 0"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a dataset into the compact binary format.
///
/// Panics if the points do not all share one dimensionality.
pub fn encode(points: &[Point]) -> Bytes {
    let d = points.first().map_or(0, |p| p.dim());
    let mut buf = BytesMut::with_capacity(16 + points.len() * (8 + d * 8));
    buf.put_u32_le(MAGIC);
    buf.put_u64_le(points.len() as u64);
    buf.put_u32_le(d as u32);
    for p in points {
        assert_eq!(p.dim(), d, "mixed dimensionality in dataset");
        buf.put_u64_le(p.id());
        for &c in p.coords() {
            buf.put_f64_le(c);
        }
    }
    buf.freeze()
}

/// Decodes a dataset previously produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Result<Vec<Point>, DecodeError> {
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    if buf.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let n = buf.get_u64_le() as usize;
    let d = buf.get_u32_le() as usize;
    if n > 0 && d == 0 {
        return Err(DecodeError::ZeroDimensions);
    }
    let record = 8 + d * 8;
    if buf.remaining() < n * record {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = buf.get_u64_le();
        let coords: Vec<f64> = (0..d).map(|_| buf.get_f64_le()).collect();
        out.push(Point::new_unchecked(id, coords));
    }
    Ok(out)
}

/// Writes an encoded dataset to `path` (creating parent directories).
pub fn save(path: &std::path::Path, points: &[Point]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, encode(points))
}

/// Loads a dataset from `path`, returning `None` when the file is absent
/// or fails to decode (callers regenerate in that case).
pub fn load(path: &std::path::Path) -> Option<Vec<Point>> {
    let raw = std::fs::read(path).ok()?;
    decode(Bytes::from(raw)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Point> {
        vec![
            Point::new_unchecked(3, vec![0.1, 0.2, 0.3]),
            Point::new_unchecked(9, vec![1.0, 0.0, 0.5]),
        ]
    }

    #[test]
    fn roundtrip() {
        let pts = sample();
        assert_eq!(decode(encode(&pts)).unwrap(), pts);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(decode(encode(&[])).unwrap(), Vec::<Point>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(0xDEAD_BEEF);
        raw.put_u64_le(0);
        raw.put_u32_le(2);
        assert_eq!(decode(raw.freeze()), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let full = encode(&sample());
        let cut = full.slice(0..full.len() - 4);
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
        assert_eq!(decode(Bytes::new()), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_zero_dims_with_records() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(MAGIC);
        raw.put_u64_le(5);
        raw.put_u32_le(0);
        assert_eq!(decode(raw.freeze()), Err(DecodeError::ZeroDimensions));
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let dir = std::env::temp_dir().join("krms-cache-test");
        let path = dir.join("ds.krms");
        let pts = sample();
        save(&path, &pts).unwrap();
        assert_eq!(load(&path).unwrap(), pts);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).is_none());
    }
}
