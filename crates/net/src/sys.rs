//! The one `unsafe` corner of the workspace: thin `extern "C"`
//! declarations against the libc that `std` already links, covering
//! exactly the readiness surface the reactor needs — `epoll` (Linux),
//! `poll(2)` as the portable fallback, a nonblocking pipe for the
//! waker, socket buffer knobs, and the `RLIMIT_NOFILE` raise used by
//! the fan-out bench.
//!
//! Everything else in `rms-net` is safe Rust; this module wraps each
//! call in a safe function that owns the invariant making it sound
//! (valid fd, correctly-sized out-buffer, null-terminated nothing —
//! these are all plain-old-data syscalls).
//!
//! Constants are the Linux generic ABI values (x86_64 and aarch64
//! agree on all of them); the workspace builds and runs on Linux only.
#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// --- epoll ------------------------------------------------------------

/// `epoll_ctl` op: add a descriptor to the interest list.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: remove a descriptor from the interest list.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change a registered descriptor's event mask.
pub const EPOLL_CTL_MOD: c_int = 3;
/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: both directions closed (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer half-closed its write side (must be requested).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. The kernel ABI packs it on x86_64 (so the
/// 64-bit `data` field sits at offset 4); other architectures use
/// natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-owned cookie; the reactor stores the connection token.
    pub data: u64,
}

// --- poll(2) fallback -------------------------------------------------

/// Readable.
pub const POLLIN: i16 = 0x001;
/// Writable.
pub const POLLOUT: i16 = 0x004;
/// Error condition (reported regardless of `events`).
pub const POLLERR: i16 = 0x008;
/// Hangup (reported regardless of `events`).
pub const POLLHUP: i16 = 0x010;

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct PollFd {
    /// The descriptor to poll (negative entries are skipped by the
    /// kernel, which `poll(2)` documents as the way to leave holes).
    pub fd: c_int,
    /// Requested readiness (`POLLIN`/`POLLOUT`).
    pub events: i16,
    /// Kernel-reported readiness.
    pub revents: i16,
}

// --- misc constants ---------------------------------------------------

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const O_NONBLOCK: c_int = 0o4000;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;
const RLIMIT_NOFILE: c_int = 7;
const EINTR: i32 = 4;

#[repr(C)]
#[derive(Clone, Copy)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Converts an optional wait timeout to the millisecond argument shared
/// by `epoll_wait` and `poll`: `None` blocks indefinitely, sub-ms
/// remainders round *up* so a timer never fires early.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
            c_int::try_from(ms).unwrap_or(c_int::MAX)
        }
    }
}

/// Creates an epoll instance (close-on-exec).
pub fn epoll_create() -> io::Result<RawFd> {
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    // SAFETY: no pointers; the kernel returns a fresh fd or -1.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds, modifies, or removes `fd` on the epoll set `epfd`.
pub fn epoll_control(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
    // duration of the call (DEL ignores it entirely).
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// Waits for readiness on `epfd`, filling `events` up to its capacity.
/// Returns the number of ready entries; retries `EINTR` internally.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout: Option<Duration>,
) -> io::Result<usize> {
    let max = c_int::try_from(events.len()).unwrap_or(c_int::MAX).max(1);
    loop {
        // SAFETY: `events` is a live buffer of `max` epoll_event slots.
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), max, timeout_ms(timeout)) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.raw_os_error() == Some(EINTR) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `poll(2)` over the given descriptor set; retries `EINTR` internally.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live buffer of `fds.len()` pollfd slots.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
        match cvt(n) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.raw_os_error() == Some(EINTR) => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Creates a pipe with both ends nonblocking — the reactor's waker.
/// Returns `(read_end, write_end)`.
pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds: [c_int; 2] = [-1, -1];
    // SAFETY: `fds` is a live 2-slot out-buffer.
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    for fd in fds {
        if let Err(e) = set_nonblocking(fd) {
            close_fd(fds[0]);
            close_fd(fds[1]);
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

/// Puts `fd` into nonblocking mode via `fcntl`.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on a caller-supplied fd; no pointers.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL) })?;
    // SAFETY: as above.
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) }).map(|_| ())
}

/// Closes `fd`, ignoring errors (the only caller-visible failure,
/// `EBADF`, would mean a double close we cannot recover anyway).
pub fn close_fd(fd: RawFd) {
    // SAFETY: closing a caller-owned fd.
    let _ = unsafe { close(fd) };
}

/// Reads up to `buf.len()` bytes from a raw fd (the waker pipe).
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live out-buffer of the advertised length.
    let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        #[allow(clippy::cast_sign_loss)]
        Ok(n as usize)
    }
}

/// Writes up to `buf.len()` bytes to a raw fd (the waker pipe).
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live in-buffer of the advertised length.
    let n = unsafe { write(fd, buf.as_ptr().cast::<c_void>(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        #[allow(clippy::cast_sign_loss)]
        Ok(n as usize)
    }
}

fn set_buffer(fd: RawFd, opt: c_int, bytes: usize) -> io::Result<()> {
    let val = c_int::try_from(bytes).unwrap_or(c_int::MAX);
    // SAFETY: `val` is a live c_int for the duration of the call and
    // optlen advertises exactly its size.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            opt,
            std::ptr::addr_of!(val).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    })
    .map(|_| ())
}

/// Sets `SO_SNDBUF` on a socket (the kernel clamps to its minimum and
/// doubles for bookkeeping, per `socket(7)`). The reactor uses this to
/// bound how much a slow subscriber can hide in the kernel before the
/// userspace write queue — and its eviction policy — sees the pressure.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, SO_SNDBUF, bytes)
}

/// Sets `SO_RCVBUF` on a socket; see [`set_send_buffer`]. Test clients
/// shrink their receive window with this to provoke eviction quickly.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    set_buffer(fd, SO_RCVBUF, bytes)
}

/// Raises the soft `RLIMIT_NOFILE` toward `target`, capped at the hard
/// limit, and returns the resulting soft limit. The 10k-subscriber
/// fan-out bench calls this before opening its socket flood.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live out-buffer of the right layout.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    let want = target.min(lim.max);
    if want > lim.cur {
        let new = Rlimit {
            cur: want,
            max: lim.max,
        };
        // SAFETY: `new` is a live in-buffer of the right layout.
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
        return Ok(want);
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trip_and_nonblocking_empty_read() {
        let (r, w) = nonblocking_pipe().unwrap();
        let mut buf = [0u8; 8];
        // Empty nonblocking pipe: read must WouldBlock, not block.
        let err = read_fd(r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(write_fd(w, b"x").unwrap(), 1);
        assert_eq!(read_fd(r, &mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'x');
        close_fd(r);
        close_fd(w);
    }

    #[test]
    fn nofile_raise_reports_a_usable_limit() {
        let lim = raise_nofile_limit(1 << 20).unwrap();
        assert!(lim >= 256, "soft nofile limit suspiciously low: {lim}");
    }

    #[test]
    fn timeout_rounding_never_fires_early() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
        // 1.2 ms rounds up to 2 ms.
        assert_eq!(timeout_ms(Some(Duration::from_micros(1200))), 2);
    }
}
