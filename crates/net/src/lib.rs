//! `rms-net` — a readiness-driven reactor for the FD-RMS serving
//! stack, dependency-free beyond `std` and `rms-metrics`.
//!
//! # Model
//!
//! One [`Reactor`] per thread multiplexes an accepting listener, every
//! adopted connection, and a self-pipe [`Waker`] through a single
//! poller — epoll on Linux with a transparent `poll(2)` fallback
//! (forced via the [`FORCE_POLL_ENV`] environment variable for
//! testing). Protocol logic is a [`Handler`] called back on accepted
//! sockets, complete inbound lines, injected commands, and timer
//! ticks; it stages output into bounded per-connection write queues of
//! shared [`std::sync::Arc`]`<[u8]>` segments and never blocks.
//!
//! Connection concurrency therefore costs O(active sockets) per
//! wakeup, not a thread per connection, and a buffer encoded once can
//! be fanned out to any number of write queues by reference.
//!
//! # Backpressure and eviction
//!
//! Each connection's unwritten bytes are capped
//! ([`ReactorConfig::write_queue_cap`]); a peer that cannot keep up
//! past the cap is *evicted*: queued bytes are dropped, a final `ERR`
//! line is queued in their place, reads stop, and the socket closes
//! once the notice flushes or the linger deadline passes. Reactor
//! health is observable via the `rms_net_poll_wakeups_total`,
//! `rms_net_write_queue_bytes`, and `rms_net_evicted_subscribers_total`
//! metric families ([`NetMetrics`]).
//!
//! # Safety boundary
//!
//! All `unsafe` lives in the [`sys`] module — thin FFI declarations
//! for the handful of kernel entry points (`epoll_*`, `poll`, `pipe`,
//! `fcntl`, `setsockopt`, `getrlimit`/`setrlimit`) that `std` links
//! but does not expose. The rest of the crate compiles under
//! `deny(unsafe_code)`.

mod conn;
mod poller;
mod reactor;
pub mod sys;

pub use conn::{Conn, ConnPhase, LineStep, WriteQueue, MAX_LINE_BYTES};
pub use poller::{Event, Interest, Poller, Token, Waker, FORCE_POLL_ENV};
pub use reactor::{Ctx, Handler, Injector, NetMetrics, Reactor, ReactorConfig};
pub use sys::{raise_nofile_limit, set_recv_buffer, set_send_buffer};
