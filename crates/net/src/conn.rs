//! Per-connection state: a cursor-based line reader and a bounded
//! write queue of shared [`Arc<[u8]>`] segments.
//!
//! The write queue stores reference-counted buffers rather than copied
//! bytes, so a delta encoded once per publish costs each subscriber an
//! `Arc` clone plus queue bookkeeping — never a re-encode or a memcpy
//! (until the kernel actually accepts the bytes).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::poller::Token;

/// Hard cap on a single inbound line. A peer that streams this many
/// bytes without a newline is not speaking the protocol; the reactor
/// closes the connection.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Outcome of pulling one line out of the read buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum LineStep {
    /// A complete line (without the trailing `\n`, `\r\n` trimmed).
    Line(String),
    /// No complete line buffered yet.
    Incomplete,
    /// The peer overran [`MAX_LINE_BYTES`] or sent invalid UTF-8.
    Malformed,
}

/// A bounded FIFO of shared write segments. `bytes` counts unwritten
/// bytes only — the front segment's already-flushed prefix is excluded.
#[derive(Debug, Default)]
pub struct WriteQueue {
    segments: VecDeque<(Arc<[u8]>, usize)>,
    bytes: usize,
}

impl WriteQueue {
    /// Unwritten bytes currently queued.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Appends a shared segment without any capacity check (the
    /// reactor enforces the cap so eviction notices can bypass it).
    pub fn enqueue(&mut self, segment: &Arc<[u8]>) {
        if segment.is_empty() {
            return;
        }
        self.bytes += segment.len();
        self.segments.push_back((Arc::clone(segment), 0));
    }

    /// Drops everything queued, returning how many bytes were pending.
    pub fn clear(&mut self) -> usize {
        self.segments.clear();
        std::mem::take(&mut self.bytes)
    }

    /// Writes as much as the socket accepts. Returns the number of
    /// bytes flushed; `WouldBlock` is success (partial flush).
    pub fn flush_into(&mut self, stream: &mut TcpStream) -> io::Result<usize> {
        let mut flushed = 0usize;
        while let Some((segment, offset)) = self.segments.front_mut() {
            match stream.write(&segment[*offset..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    flushed += n;
                    self.bytes -= n;
                    *offset += n;
                    if *offset == segment.len() {
                        self.segments.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(flushed)
    }
}

/// Lifecycle of a reactor-owned connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnPhase {
    /// Normal request/response (or streaming) service.
    Open,
    /// Queue overflow: reads stopped, a final `ERR` line is queued,
    /// and the connection closes once it flushes or the linger
    /// deadline passes.
    Evicted,
    /// Graceful close requested: flush the queue, then close.
    Closing,
}

/// One nonblocking connection: socket, read cursor, write queue, and
/// lifecycle flags. All I/O is driven by the reactor on readiness.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Poller token for this connection.
    pub token: Token,
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending outbound segments.
    pub queue: WriteQueue,
    /// Lifecycle phase.
    pub phase: ConnPhase,
    /// Reads intentionally paused by the handler (backpressure or
    /// push-mode subscriber).
    pub paused: bool,
    /// Peer sent EOF (half-close); no more lines will arrive.
    pub eof: bool,
    /// The handler's `on_eof` callback already fired for this
    /// connection (it fires at most once).
    pub eof_handled: bool,
    /// Deadline for force-closing an evicted/closing connection whose
    /// peer never drains the final bytes.
    pub linger_deadline: Option<Instant>,
    /// Interest currently registered with the poller: (read, write).
    pub registered: (bool, bool),
}

impl Conn {
    /// Wraps an already-nonblocking socket.
    #[must_use]
    pub fn new(stream: TcpStream, token: Token) -> Conn {
        Conn {
            stream,
            token,
            rbuf: Vec::new(),
            rpos: 0,
            queue: WriteQueue::default(),
            phase: ConnPhase::Open,
            paused: false,
            eof: false,
            eof_handled: false,
            linger_deadline: None,
            registered: (true, false),
        }
    }

    /// Whether this connection still wants read readiness events.
    #[must_use]
    pub fn wants_read(&self) -> bool {
        self.phase == ConnPhase::Open && !self.paused && !self.eof
    }

    /// Reads everything currently available into the buffer. Returns
    /// `Ok(true)` if the connection should be torn down (hard error).
    /// Sets [`Conn::eof`] on clean peer shutdown.
    pub fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return false;
                }
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    /// Extracts the next complete line, advancing the cursor. The
    /// buffer is compacted only once fully consumed, so a pump over
    /// many buffered lines is O(total bytes), not O(lines²).
    pub fn take_line(&mut self) -> LineStep {
        let pending = &self.rbuf[self.rpos..];
        match pending.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut end = nl;
                if end > 0 && pending[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = match std::str::from_utf8(&pending[..end]) {
                    Ok(s) => s.to_owned(),
                    Err(_) => return LineStep::Malformed,
                };
                self.rpos += nl + 1;
                if self.rpos == self.rbuf.len() {
                    self.rbuf.clear();
                    self.rpos = 0;
                }
                LineStep::Line(line)
            }
            None if pending.len() > MAX_LINE_BYTES => LineStep::Malformed,
            None => {
                if self.rpos > 0 && self.rpos == self.rbuf.len() {
                    self.rbuf.clear();
                    self.rpos = 0;
                }
                LineStep::Incomplete
            }
        }
    }

    /// Whether unconsumed inbound bytes remain buffered (a paused
    /// connection may hold complete lines the pump must revisit on
    /// resume without waiting for fresh readiness).
    #[must_use]
    pub fn has_buffered_input(&self) -> bool {
        self.rpos < self.rbuf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn sock_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn line_extraction_handles_partials_and_crlf() {
        let (mut client, server) = sock_pair();
        let mut conn = Conn::new(server, Token(1));
        client.write_all(b"QUERY\r\nSTA").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!conn.fill());
        assert_eq!(conn.take_line(), LineStep::Line("QUERY".into()));
        assert_eq!(conn.take_line(), LineStep::Incomplete);
        client.write_all(b"TS\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!conn.fill());
        assert_eq!(conn.take_line(), LineStep::Line("STATS".into()));
        assert!(!conn.has_buffered_input());
    }

    #[test]
    fn oversized_line_is_malformed() {
        let (mut client, server) = sock_pair();
        let mut conn = Conn::new(server, Token(1));
        let blob = vec![b'x'; MAX_LINE_BYTES + 2];
        client.write_all(&blob).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!conn.fill());
        assert_eq!(conn.take_line(), LineStep::Malformed);
    }

    #[test]
    fn write_queue_tracks_partial_flush() {
        let (_client, server) = sock_pair();
        let mut queue = WriteQueue::default();
        let seg: Arc<[u8]> = Arc::from(&b"hello\n"[..]);
        queue.enqueue(&seg);
        queue.enqueue(&seg);
        assert_eq!(queue.bytes(), 12);
        let mut stream = server;
        let n = queue.flush_into(&mut stream).unwrap();
        assert_eq!(n, 12);
        assert!(queue.is_empty());
        assert_eq!(queue.bytes(), 0);
    }
}
