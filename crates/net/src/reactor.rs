//! The event loop: one thread multiplexing a listener, a waker pipe,
//! and every adopted connection through a single [`Poller`].
//!
//! The reactor owns all sockets and all I/O; protocol logic lives in a
//! [`Handler`] implementation that is called back on accepted sockets,
//! complete inbound lines, injected commands, and timer ticks. The
//! handler never performs I/O itself — it stages outbound bytes via
//! [`Ctx::push`] and the reactor flushes them as the kernel permits.
//! Keeping every handler callback non-blocking is what bounds tail
//! latency: one stalled subscriber can delay nothing but itself.

use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rms_metrics::{Counter, Gauge, Registry};

use crate::conn::{Conn, ConnPhase, LineStep};
use crate::poller::{Event, Interest, Poller, Token, Waker};
use crate::sys;

/// Token reserved for the waker pipe.
const WAKER_TOKEN: Token = Token(0);
/// Token reserved for the listener, when one is attached.
const LISTENER_TOKEN: Token = Token(1);
/// First token handed to a connection.
const FIRST_CONN_TOKEN: usize = 2;

/// Tuning knobs for a reactor.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Per-connection cap on queued unwritten bytes. Exceeding it
    /// triggers the slow-subscriber eviction policy.
    pub write_queue_cap: usize,
    /// Final line queued to an evicted connection (newline appended).
    pub evict_notice: String,
    /// How long an evicted or draining connection may linger while the
    /// peer drains its final bytes before the socket is dropped.
    pub evict_linger: Duration,
    /// Optional `SO_SNDBUF` applied to adopted sockets (tests shrink
    /// this to force queue growth without megabytes of traffic).
    pub send_buffer: Option<usize>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            write_queue_cap: 256 * 1024,
            evict_notice: "ERR subscriber too slow; closing connection".to_owned(),
            evict_linger: Duration::from_secs(2),
            send_buffer: None,
        }
    }
}

/// Reactor-level metric families. Registered get-or-create, so every
/// reactor thread shares one set of cells per registry.
#[derive(Clone)]
pub struct NetMetrics {
    /// `rms_net_poll_wakeups_total`
    pub poll_wakeups: Counter,
    /// `rms_net_write_queue_bytes`
    pub write_queue_bytes: Gauge,
    /// `rms_net_evicted_subscribers_total`
    pub evicted_subscribers: Counter,
}

impl NetMetrics {
    fn new(registry: &Registry) -> NetMetrics {
        NetMetrics {
            poll_wakeups: registry.register_counter(
                "rms_net_poll_wakeups_total",
                "Reactor poller wakeups (events, timers, and waker signals)",
                &[],
            ),
            write_queue_bytes: registry.register_gauge(
                "rms_net_write_queue_bytes",
                "Unwritten bytes queued across all reactor connections",
                &[],
            ),
            evicted_subscribers: registry.register_counter(
                "rms_net_evicted_subscribers_total",
                "Connections evicted for overflowing their write queue",
                &[],
            ),
        }
    }
}

/// Thread-safe handle for pushing commands into a running reactor.
/// Commands are delivered to [`Handler::on_cmd`] in injection order.
pub struct Injector<C> {
    inbox: Arc<Mutex<Vec<C>>>,
    waker: Waker,
}

impl<C> Clone for Injector<C> {
    fn clone(&self) -> Self {
        Injector {
            inbox: Arc::clone(&self.inbox),
            waker: self.waker.clone(),
        }
    }
}

impl<C> Injector<C> {
    /// Queues a command and wakes the reactor. Never blocks: the inbox
    /// is an unbounded vector swapped out wholesale by the loop, so the
    /// lock is held for a push (here) or a `mem::take` (there).
    pub fn inject(&self, cmd: C) {
        // rms-analyze: allow(lock-poison-policy, "rms-net sits below rms-serve and cannot call its recover_poisoned; the inbox is a plain Vec that a panicking holder cannot tear, so propagating the panic is this crate's audited poison stance")
        self.inbox.lock().expect("reactor inbox poisoned").push(cmd);
        self.waker.wake();
    }
}

/// Protocol logic driven by the reactor. Every callback MUST return
/// promptly — no blocking syscalls, no lock-held channel sends; stage
/// output with [`Ctx::push`] / [`Ctx::push_line`] instead. A handler
/// learns about every connection teardown — eviction, graceful close,
/// peer disconnect, or I/O error — through exactly one
/// [`Handler::on_close`] call.
pub trait Handler {
    /// Command type delivered through [`Injector::inject`].
    type Cmd: Send + 'static;

    /// A fresh socket from the attached listener. The handler either
    /// adopts it here ([`Ctx::adopt`]) or hands it to a peer reactor's
    /// injector.
    fn on_accept(&mut self, stream: TcpStream, ctx: &mut Ctx<'_>);

    /// A complete inbound line from an adopted connection.
    fn on_line(&mut self, token: Token, line: &str, ctx: &mut Ctx<'_>);

    /// An injected command.
    fn on_cmd(&mut self, cmd: Self::Cmd, ctx: &mut Ctx<'_>);

    /// At least one timer registered via [`Ctx::set_timer`] came due.
    /// Fired once per loop iteration regardless of how many expired.
    fn on_tick(&mut self, now: Instant, ctx: &mut Ctx<'_>);

    /// The peer half-closed (EOF) with every buffered line already
    /// delivered. Fires at most once per connection, before the
    /// reactor's own flush-and-close takes over — the last chance to
    /// queue a final diagnostic line (e.g. a truncated-framing error).
    fn on_eof(&mut self, _token: Token, _ctx: &mut Ctx<'_>) {}

    /// A connection was torn down. The token is dead; drop any state
    /// keyed on it.
    fn on_close(&mut self, token: Token);
}

/// Mutable loop state exposed to handler callbacks.
pub struct Ctx<'a> {
    conns: &'a mut HashMap<usize, Conn>,
    poller: &'a mut Poller,
    next_token: &'a mut usize,
    timers: &'a mut BinaryHeap<std::cmp::Reverse<Instant>>,
    repump: &'a mut Vec<Token>,
    metrics: &'a NetMetrics,
    cfg: &'a ReactorConfig,
    stop: &'a mut bool,
    draining: &'a mut bool,
}

impl Ctx<'_> {
    /// Adopts a socket into this reactor: switches it nonblocking,
    /// applies the configured `SO_SNDBUF`, registers read interest,
    /// and returns its token.
    pub fn adopt(&mut self, stream: TcpStream) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        if let Some(bytes) = self.cfg.send_buffer {
            sys::set_send_buffer(stream.as_raw_fd(), bytes)?;
        }
        let token = Token(*self.next_token);
        *self.next_token += 1;
        self.poller
            .register(stream.as_raw_fd(), token, Interest::READ)?;
        self.conns.insert(token.0, Conn::new(stream, token));
        Ok(token)
    }

    /// Number of live connections.
    #[must_use]
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Tokens of every live connection (snapshot).
    #[must_use]
    pub fn tokens(&self) -> Vec<Token> {
        self.conns.values().map(|c| c.token).collect()
    }

    /// Unwritten bytes queued for one connection (0 if unknown).
    #[must_use]
    pub fn queued_bytes(&self, token: Token) -> usize {
        self.conns.get(&token.0).map_or(0, |c| c.queue.bytes())
    }

    /// Queues a shared segment for `token`, flushing opportunistically.
    /// Overflowing [`ReactorConfig::write_queue_cap`] triggers the
    /// eviction policy; pushes to evicted/closing/unknown connections
    /// are silently dropped. Returns `false` when the push was dropped
    /// or tripped eviction (the handler hears about the eventual
    /// teardown via [`Handler::on_close`]).
    pub fn push(&mut self, token: Token, segment: &Arc<[u8]>) -> bool {
        let Some(conn) = self.conns.get_mut(&token.0) else {
            return false;
        };
        if conn.phase != ConnPhase::Open {
            return false;
        }
        conn.queue.enqueue(segment);
        self.metrics.write_queue_bytes.add(segment.len() as i64);
        match conn.queue.flush_into(&mut conn.stream) {
            Ok(flushed) => {
                if flushed > 0 {
                    self.metrics.write_queue_bytes.add(-(flushed as i64));
                }
            }
            Err(_) => {
                let dropped = conn.queue.clear();
                self.metrics.write_queue_bytes.add(-(dropped as i64));
                conn.phase = ConnPhase::Closing;
                return false;
            }
        }
        if conn.queue.bytes() > self.cfg.write_queue_cap {
            let notice = format!("{}\n", self.cfg.evict_notice);
            self.evict_inner(token, &notice);
            return false;
        }
        true
    }

    /// Queues a text line (newline appended) for `token`.
    pub fn push_line(&mut self, token: Token, line: &str) -> bool {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        let segment: Arc<[u8]> = Arc::from(bytes);
        self.push(token, &segment)
    }

    /// Applies the eviction policy to `token` with a custom final line
    /// (newline appended): queued bytes are dropped, the notice is
    /// queued past the cap, reads stop, and the connection closes once
    /// the notice flushes or the linger deadline passes.
    pub fn evict(&mut self, token: Token, notice: &str) {
        let line = format!("{notice}\n");
        self.evict_inner(token, &line);
    }

    fn evict_inner(&mut self, token: Token, notice_line: &str) {
        let Some(conn) = self.conns.get_mut(&token.0) else {
            return;
        };
        if conn.phase == ConnPhase::Evicted {
            return;
        }
        let dropped = conn.queue.clear();
        self.metrics.write_queue_bytes.add(-(dropped as i64));
        let segment: Arc<[u8]> = Arc::from(notice_line.as_bytes());
        conn.queue.enqueue(&segment);
        self.metrics.write_queue_bytes.add(segment.len() as i64);
        if let Ok(flushed) = conn.queue.flush_into(&mut conn.stream) {
            self.metrics.write_queue_bytes.add(-(flushed as i64));
        }
        conn.phase = ConnPhase::Evicted;
        let deadline = Instant::now() + self.cfg.evict_linger;
        conn.linger_deadline = Some(deadline);
        self.timers.push(std::cmp::Reverse(deadline));
        self.metrics.evicted_subscribers.inc();
    }

    /// Requests a graceful close: pending bytes flush first, then the
    /// socket is torn down (bounded by the linger deadline).
    pub fn close(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(&token.0) {
            if conn.phase == ConnPhase::Open {
                conn.phase = ConnPhase::Closing;
                let deadline = Instant::now() + self.cfg.evict_linger;
                conn.linger_deadline = Some(deadline);
                self.timers.push(std::cmp::Reverse(deadline));
            }
        }
    }

    /// Stops delivering inbound lines for `token` until
    /// [`Ctx::resume_read`]. Already-buffered bytes stay buffered.
    pub fn pause_read(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(&token.0) {
            conn.paused = true;
        }
    }

    /// Resumes line delivery; lines already buffered are pumped on the
    /// current loop iteration without waiting for fresh readiness.
    pub fn resume_read(&mut self, token: Token) {
        if let Some(conn) = self.conns.get_mut(&token.0) {
            conn.paused = false;
            if conn.has_buffered_input() {
                self.repump.push(token);
            }
        }
    }

    /// Registers a wall-clock wakeup; [`Handler::on_tick`] fires on the
    /// first loop iteration at or after `at`.
    pub fn set_timer(&mut self, at: Instant) {
        self.timers.push(std::cmp::Reverse(at));
    }

    /// Begins draining: the listener (if any) stops accepting, open
    /// connections switch to flush-then-close, and the reactor exits
    /// once every connection is gone.
    pub fn begin_drain(&mut self) {
        *self.draining = true;
        let deadline = Instant::now() + self.cfg.evict_linger;
        for conn in self.conns.values_mut() {
            if conn.phase == ConnPhase::Open {
                conn.phase = ConnPhase::Closing;
                conn.linger_deadline = Some(deadline);
            }
        }
        self.timers.push(std::cmp::Reverse(deadline));
    }

    /// Whether [`Ctx::begin_drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        *self.draining
    }

    /// Stops the loop immediately after the current iteration;
    /// remaining queued bytes are dropped.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A single-threaded readiness-driven event loop. Construct, attach an
/// optional listener, grab [`Injector`]s for other threads, then
/// consume it with [`Reactor::run`] on its dedicated thread.
pub struct Reactor<C> {
    poller: Poller,
    waker: Waker,
    inbox: Arc<Mutex<Vec<C>>>,
    listener: Option<TcpListener>,
    cfg: ReactorConfig,
    metrics: NetMetrics,
}

impl<C: Send + 'static> Reactor<C> {
    /// Creates a reactor; metric families are registered (get-or-create)
    /// on `registry`.
    pub fn new(cfg: ReactorConfig, registry: &Registry) -> io::Result<Reactor<C>> {
        let mut poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(waker.poll_fd(), WAKER_TOKEN, Interest::READ)?;
        Ok(Reactor {
            poller,
            waker,
            inbox: Arc::new(Mutex::new(Vec::new())),
            listener: None,
            cfg,
            metrics: NetMetrics::new(registry),
        })
    }

    /// Whether this reactor runs on the `poll(2)` fallback backend.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        self.poller.is_fallback()
    }

    /// Attaches the accepting listener (switched to nonblocking here).
    /// At most one reactor in a group should hold the listener; the
    /// others receive sockets via injected commands.
    pub fn set_listener(&mut self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        self.poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        self.listener = Some(listener);
        Ok(())
    }

    /// A cloneable handle for injecting commands from other threads.
    #[must_use]
    pub fn injector(&self) -> Injector<C> {
        Injector {
            inbox: Arc::clone(&self.inbox),
            waker: self.waker.clone(),
        }
    }

    /// Runs the loop until a handler calls [`Ctx::stop`], or
    /// [`Ctx::begin_drain`] was called and the last connection closed.
    pub fn run<H: Handler<Cmd = C>>(self, mut handler: H) -> io::Result<()> {
        let Reactor {
            mut poller,
            waker,
            inbox,
            mut listener,
            cfg,
            metrics,
        } = self;
        let mut conns: HashMap<usize, Conn> = HashMap::new();
        let mut next_token = FIRST_CONN_TOKEN;
        let mut timers: BinaryHeap<std::cmp::Reverse<Instant>> = BinaryHeap::new();
        let mut repump: Vec<Token> = Vec::new();
        let mut stop = false;
        let mut draining = false;
        let mut listener_paused = false;
        let mut events: Vec<Event> = Vec::new();
        let mut dead: Vec<Token> = Vec::new();
        let mut eof_tokens: Vec<Token> = Vec::new();

        // Reborrows every loop-owned piece into a fresh short-lived Ctx
        // for one handler callback.
        macro_rules! ctx {
            () => {
                &mut Ctx {
                    conns: &mut conns,
                    poller: &mut poller,
                    next_token: &mut next_token,
                    timers: &mut timers,
                    repump: &mut repump,
                    metrics: &metrics,
                    cfg: &cfg,
                    stop: &mut stop,
                    draining: &mut draining,
                }
            };
        }

        loop {
            // ---- wait -------------------------------------------------
            let timeout = timers
                .peek()
                .map(|&std::cmp::Reverse(at)| at.saturating_duration_since(Instant::now()));
            // rms-analyze: allow(reactor-no-block, "the event loop's single sanctioned blocking point: parking for readiness with the nearest timer deadline as the timeout")
            poller.wait(&mut events, timeout)?;
            metrics.poll_wakeups.inc();
            let now = Instant::now();

            let mut saw_waker = false;
            let mut saw_listener = false;
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    saw_waker = true;
                } else if ev.token == LISTENER_TOKEN {
                    saw_listener = true;
                }
            }
            if saw_waker {
                waker.drain();
            }

            // ---- injected commands ------------------------------------
            // Drained on every wakeup, not just waker wakeups: a command
            // injected between `wait` returning and this point is picked
            // up a whole cycle earlier.
            // rms-analyze: allow(lock-poison-policy, "rms-net sits below rms-serve and cannot call its recover_poisoned; the inbox is a plain Vec that a panicking holder cannot tear, so propagating the panic is this crate's audited poison stance")
            let mut inbox_guard = inbox.lock().expect("reactor inbox poisoned");
            let queued = std::mem::take(&mut *inbox_guard);
            drop(inbox_guard);
            for cmd in queued {
                handler.on_cmd(cmd, ctx!());
            }

            // ---- accepts ----------------------------------------------
            if saw_listener && !draining && !listener_paused {
                while let Some(l) = listener.as_ref() {
                    // rms-analyze: allow(reactor-no-block, "the listener is nonblocking (set_listener); accept returns WouldBlock instead of parking the loop")
                    match l.accept() {
                        Ok((stream, _)) => handler.on_accept(stream, ctx!()),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            // Resource errors (EMFILE and friends) are
                            // level-triggered: the backlog stays ready, so
                            // retrying immediately would spin the loop hot.
                            // Park the listener briefly instead.
                            let _ = poller.deregister(l.as_raw_fd());
                            listener_paused = true;
                            timers.push(std::cmp::Reverse(
                                Instant::now() + Duration::from_millis(20),
                            ));
                            break;
                        }
                    }
                }
            }

            // ---- connection readiness ---------------------------------
            for &ev in &events {
                if ev.token == WAKER_TOKEN || ev.token == LISTENER_TOKEN {
                    continue;
                }
                if !conns.contains_key(&ev.token.0) {
                    continue;
                }
                if ev.failed {
                    dead.push(ev.token);
                    continue;
                }
                if ev.readable {
                    let hard_error = match conns.get_mut(&ev.token.0) {
                        Some(conn) => conn.fill(),
                        None => continue,
                    };
                    if hard_error {
                        dead.push(ev.token);
                        continue;
                    }
                    Self::pump_lines(ev.token, &mut handler, ctx!());
                }
                if ev.writable {
                    if let Some(conn) = conns.get_mut(&ev.token.0) {
                        match conn.queue.flush_into(&mut conn.stream) {
                            Ok(flushed) => {
                                metrics.write_queue_bytes.add(-(flushed as i64));
                            }
                            Err(_) => dead.push(ev.token),
                        }
                    }
                }
            }

            // ---- reads resumed mid-iteration --------------------------
            while let Some(token) = repump.pop() {
                Self::pump_lines(token, &mut handler, ctx!());
            }

            // Draining stops accepting: drop the listener now, or its
            // pending backlog would level-trigger a wakeup every wait.
            if draining {
                if let Some(l) = listener.take() {
                    let _ = poller.deregister(l.as_raw_fd());
                }
            }

            // ---- timers -----------------------------------------------
            let mut ticked = false;
            while let Some(&std::cmp::Reverse(at)) = timers.peek() {
                if at > now {
                    break;
                }
                timers.pop();
                ticked = true;
            }
            if ticked {
                handler.on_tick(now, ctx!());
                // Linger sweep piggybacks on ticks: every deadline was
                // registered as a timer, so expiry always produces one.
                for conn in conns.values() {
                    if matches!(conn.linger_deadline, Some(d) if d <= now) {
                        dead.push(conn.token);
                    }
                }
                if listener_paused && !draining {
                    if let Some(l) = listener.as_ref() {
                        if poller
                            .register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                            .is_ok()
                        {
                            listener_paused = false;
                        } else {
                            timers.push(std::cmp::Reverse(now + Duration::from_millis(20)));
                        }
                    }
                }
            }

            // ---- EOF notifications ------------------------------------
            eof_tokens.clear();
            for conn in conns.values_mut() {
                if conn.phase == ConnPhase::Open
                    && conn.eof
                    && !conn.eof_handled
                    && !conn.has_buffered_input()
                {
                    conn.eof_handled = true;
                    eof_tokens.push(conn.token);
                }
            }
            for &token in &eof_tokens {
                handler.on_eof(token, ctx!());
            }

            // ---- finalize: interest reconcile + teardown --------------
            for conn in conns.values_mut() {
                if conn.phase == ConnPhase::Open && conn.eof && !conn.has_buffered_input() {
                    // Peer finished sending; flush what we owe and close.
                    conn.phase = ConnPhase::Closing;
                }
                if conn.phase != ConnPhase::Open && conn.queue.is_empty() {
                    dead.push(conn.token);
                    continue;
                }
                let desired = (conn.wants_read(), !conn.queue.is_empty());
                if desired != conn.registered {
                    let interest = Interest {
                        read: desired.0,
                        write: desired.1,
                    };
                    if poller
                        .modify(conn.stream.as_raw_fd(), conn.token, interest)
                        .is_err()
                    {
                        dead.push(conn.token);
                        continue;
                    }
                    conn.registered = desired;
                }
            }
            dead.sort_unstable();
            dead.dedup();
            for token in dead.drain(..) {
                if let Some(conn) = conns.remove(&token.0) {
                    let dropped = conn.queue.bytes();
                    if dropped > 0 {
                        metrics.write_queue_bytes.add(-(dropped as i64));
                    }
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    drop(conn);
                    handler.on_close(token);
                }
            }

            if stop || (draining && conns.is_empty()) {
                if let Some(l) = listener.take() {
                    let _ = poller.deregister(l.as_raw_fd());
                }
                return Ok(());
            }
        }
    }

    /// Delivers every complete buffered line for `token` to the
    /// handler, stopping early if the handler pauses or closes it.
    fn pump_lines<H: Handler<Cmd = C>>(token: Token, handler: &mut H, ctx: &mut Ctx<'_>) {
        loop {
            let step = {
                let Some(conn) = ctx.conns.get_mut(&token.0) else {
                    return;
                };
                if conn.paused || conn.phase != ConnPhase::Open {
                    return;
                }
                conn.take_line()
            };
            match step {
                LineStep::Line(line) => handler.on_line(token, &line, ctx),
                LineStep::Incomplete => return,
                LineStep::Malformed => {
                    if let Some(conn) = ctx.conns.get_mut(&token.0) {
                        conn.phase = ConnPhase::Closing;
                        let dropped = conn.queue.clear();
                        ctx.metrics.write_queue_bytes.add(-(dropped as i64));
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream as StdStream;

    /// Line-echo handler used by the loop tests.
    struct Echo;

    impl Handler for Echo {
        type Cmd = Arc<[u8]>;

        fn on_accept(&mut self, stream: TcpStream, ctx: &mut Ctx<'_>) {
            ctx.adopt(stream).expect("adopt");
        }

        fn on_line(&mut self, token: Token, line: &str, ctx: &mut Ctx<'_>) {
            if line == "QUIT" {
                ctx.push_line(token, "BYE");
                ctx.close(token);
            } else if line == "STOPLOOP" {
                ctx.begin_drain();
            } else {
                ctx.push_line(token, &format!("ECHO {line}"));
            }
        }

        fn on_cmd(&mut self, cmd: Arc<[u8]>, ctx: &mut Ctx<'_>) {
            for token in ctx.tokens() {
                ctx.push(token, &cmd);
            }
        }

        fn on_tick(&mut self, _now: Instant, _ctx: &mut Ctx<'_>) {}

        fn on_close(&mut self, _token: Token) {}
    }

    type EchoServer = (
        std::net::SocketAddr,
        Injector<Arc<[u8]>>,
        std::thread::JoinHandle<io::Result<()>>,
    );

    fn spawn_echo() -> EchoServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let registry = Registry::new();
        let mut reactor: Reactor<Arc<[u8]>> =
            Reactor::new(ReactorConfig::default(), &registry).unwrap();
        reactor.set_listener(listener).unwrap();
        let injector = reactor.injector();
        let handle = std::thread::spawn(move || reactor.run(Echo));
        (addr, injector, handle)
    }

    #[test]
    fn echo_round_trip_and_graceful_close() {
        let (addr, _injector, handle) = spawn_echo();
        let mut a = StdStream::connect(addr).unwrap();
        a.write_all(b"hello\nworld\nQUIT\n").unwrap();
        let mut lines = BufReader::new(a.try_clone().unwrap()).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "ECHO hello");
        assert_eq!(lines.next().unwrap().unwrap(), "ECHO world");
        assert_eq!(lines.next().unwrap().unwrap(), "BYE");
        assert!(lines.next().is_none(), "server closed after QUIT");

        let mut b = StdStream::connect(addr).unwrap();
        b.write_all(b"STOPLOOP\n").unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn injected_broadcast_reaches_connections() {
        let (addr, injector, handle) = spawn_echo();
        let mut a = StdStream::connect(addr).unwrap();
        a.write_all(b"ping\n").unwrap();
        let mut lines = BufReader::new(a.try_clone().unwrap()).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "ECHO ping");
        let payload: Arc<[u8]> = Arc::from(&b"BROADCAST 1\n"[..]);
        injector.inject(payload);
        assert_eq!(lines.next().unwrap().unwrap(), "BROADCAST 1");
        a.write_all(b"STOPLOOP\n").unwrap();
        drop(a);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn write_queue_overflow_evicts_with_final_err_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let registry = Registry::new();
        let cfg = ReactorConfig {
            write_queue_cap: 512,
            send_buffer: Some(1),
            evict_linger: Duration::from_millis(400),
            ..ReactorConfig::default()
        };
        let mut reactor: Reactor<Arc<[u8]>> = Reactor::new(cfg, &registry).unwrap();
        reactor.set_listener(listener).unwrap();
        let injector = reactor.injector();
        let evicted = registry.register_counter(
            "rms_net_evicted_subscribers_total",
            "Connections evicted for overflowing their write queue",
            &[],
        );
        let handle = std::thread::spawn(move || reactor.run(Echo));

        let client = StdStream::connect(addr).unwrap();
        // Tiny client receive window + never reading => the kernel
        // path clogs and the reactor-side queue absorbs the pushes.
        crate::sys::set_recv_buffer(std::os::unix::io::AsRawFd::as_raw_fd(&client), 1).unwrap();
        let payload: Arc<[u8]> = Arc::from(vec![b'x'; 1024].into_boxed_slice());
        for _ in 0..1000 {
            injector.inject(Arc::clone(&payload));
            if evicted.value() > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(evicted.value() >= 1, "overflow must evict the connection");

        // A fresh connection still gets service after the eviction.
        let mut b = StdStream::connect(addr).unwrap();
        b.write_all(b"still-alive\n").unwrap();
        let mut lines = BufReader::new(b.try_clone().unwrap()).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "ECHO still-alive");
        b.write_all(b"STOPLOOP\n").unwrap();
        drop(b);
        drop(client);
        handle.join().unwrap().unwrap();
    }
}
