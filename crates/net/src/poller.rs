//! Readiness polling over the [`sys`](crate::sys) bindings: an epoll
//! backend (the default on Linux) and a `poll(2)` fallback sharing one
//! safe API, plus the pipe-based [`Waker`] other threads use to knock
//! a blocked [`Poller::wait`] loose.

use crate::sys;
use std::collections::BTreeMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// Environment variable forcing the `poll(2)` fallback backend even
/// where epoll is available — set to a non-empty value other than `0`.
/// The loopback test suite runs once per backend through this switch.
pub const FORCE_POLL_ENV: &str = "KRMS_NET_FORCE_POLL";

/// Identifies one registered descriptor across the poller and the
/// reactor's connection table. Tokens are never reused within a
/// reactor, so a stale readiness event can never alias a new
/// connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable.
    pub read: bool,
    /// Wake when the descriptor becomes writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// Readable (or peer half-closed — reads will observe EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to the error
    /// and close.
    pub failed: bool,
}

enum Backend {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        slots: BTreeMap<RawFd, (Token, Interest)>,
    },
}

/// A readiness poller: register descriptors with a token and an
/// interest set, then [`wait`](Poller::wait) for events.
pub struct Poller {
    backend: Backend,
    /// Scratch buffer for the epoll backend, reused across waits.
    epoll_buf: Vec<sys::EpollEvent>,
    /// Scratch buffer for the poll backend, reused across waits.
    poll_buf: Vec<sys::PollFd>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.backend {
            Backend::Epoll { epfd } => f.debug_struct("Poller").field("epoll", epfd).finish(),
            Backend::Poll { slots } => f
                .debug_struct("Poller")
                .field("poll_slots", &slots.len())
                .finish(),
        }
    }
}

fn epoll_bits(interest: Interest) -> u32 {
    // RDHUP rides along with read interest only: a half-closed peer on a
    // write-only registration (paused subscriber that has sent EOF) would
    // otherwise level-trigger a wakeup on every wait and spin the loop.
    let mut bits = 0;
    if interest.read {
        bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if interest.write {
        bits |= sys::EPOLLOUT;
    }
    bits
}

impl Poller {
    /// Creates a poller: epoll unless [`FORCE_POLL_ENV`] selects the
    /// `poll(2)` fallback (or epoll creation fails, e.g. on a kernel
    /// without it — the fallback then takes over silently).
    pub fn new() -> io::Result<Poller> {
        let force_poll =
            matches!(std::env::var(FORCE_POLL_ENV), Ok(v) if !v.is_empty() && v != "0");
        let backend = if force_poll {
            Backend::Poll {
                slots: BTreeMap::new(),
            }
        } else {
            match sys::epoll_create() {
                Ok(epfd) => Backend::Epoll { epfd },
                Err(_) => Backend::Poll {
                    slots: BTreeMap::new(),
                },
            }
        };
        Ok(Poller {
            backend,
            epoll_buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            poll_buf: Vec::new(),
        })
    }

    /// Whether this poller runs on the `poll(2)` fallback.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        matches!(self.backend, Backend::Poll { .. })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => sys::epoll_control(
                *epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                epoll_bits(interest),
                token.0 as u64,
            ),
            Backend::Poll { slots } => {
                slots.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set (and token) of a registered `fd`.
    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => sys::epoll_control(
                *epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                epoll_bits(interest),
                token.0 as u64,
            ),
            Backend::Poll { slots } => {
                slots.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Removes `fd` from the poller. Must be called *before* the fd is
    /// closed (a closed fd auto-leaves epoll, but the fallback table
    /// would keep polling it and see `POLLNVAL`).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            Backend::Epoll { epfd } => sys::epoll_control(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Backend::Poll { slots } => {
                slots.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until readiness (or `timeout`), appending events to
    /// `out` (which is cleared first).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            Backend::Epoll { epfd } => {
                let n = sys::epoll_wait_events(*epfd, &mut self.epoll_buf, timeout)?;
                for ev in &self.epoll_buf[..n] {
                    let events = ev.events;
                    out.push(Event {
                        token: Token(ev.data as usize),
                        readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                        writable: events & sys::EPOLLOUT != 0,
                        failed: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { slots } => {
                self.poll_buf.clear();
                self.poll_buf.extend(slots.iter().map(|(&fd, &(_, i))| {
                    let mut events = 0i16;
                    if i.read {
                        events |= sys::POLLIN;
                    }
                    if i.write {
                        events |= sys::POLLOUT;
                    }
                    sys::PollFd {
                        fd,
                        events,
                        revents: 0,
                    }
                }));
                let n = sys::poll_fds(&mut self.poll_buf, timeout)?;
                if n == 0 {
                    return Ok(());
                }
                for slot in &self.poll_buf {
                    if slot.revents == 0 {
                        continue;
                    }
                    if let Some(&(token, _)) = slots.get(&slot.fd) {
                        out.push(Event {
                            token,
                            readable: slot.revents & (sys::POLLIN | sys::POLLHUP) != 0,
                            writable: slot.revents & sys::POLLOUT != 0,
                            failed: slot.revents & (sys::POLLERR | sys::POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd } = self.backend {
            sys::close_fd(epfd);
        }
    }
}

#[derive(Debug)]
struct WakerInner {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakerInner {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// A self-pipe waker: any thread holding a clone can knock the
/// reactor's [`Poller::wait`] loose. Clones share the pipe; the fds
/// close when the last clone drops, so a late [`Waker::wake`] from a
/// lingering injector can never hit a recycled descriptor.
#[derive(Clone, Debug)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl Waker {
    /// Creates the pipe pair (both ends nonblocking).
    pub fn new() -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        Ok(Waker {
            inner: Arc::new(WakerInner { read_fd, write_fd }),
        })
    }

    /// The fd to register with the poller (read interest).
    #[must_use]
    pub fn poll_fd(&self) -> RawFd {
        self.inner.read_fd
    }

    /// Signals the poller. A full pipe means a wake is already pending,
    /// which is exactly as good — the loop drains the pipe and then
    /// consumes every queued command, so coalesced wakes lose nothing.
    pub fn wake(&self) {
        let _ = sys::write_fd(self.inner.write_fd, b"w");
    }

    /// Drains pending wake bytes; called by the reactor when the waker
    /// token reports readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!(sys::read_fd(self.inner.read_fd, &mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn poller_pair() -> (Poller, TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (Poller::new().unwrap(), client, server)
    }

    #[test]
    fn readable_event_fires_on_data() {
        use std::os::unix::io::AsRawFd;
        let (mut poller, mut client, mut server) = poller_pair();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");
        client.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn waker_knocks_wait_loose() {
        let (mut poller, _client, _server) = poller_pair();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.poll_fd(), Token(0), Interest::READ)
            .unwrap();
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();
        t.join().unwrap();
    }
}
