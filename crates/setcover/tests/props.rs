//! Property-based tests: the stable solution survives arbitrary operation
//! sequences and stays within the Theorem-1 approximation bound.

use proptest::prelude::*;
use rms_setcover::{DynamicSetCover, ElemId, LevelBase, SetId, SpillSet};
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    AddMember(ElemId, SetId),
    RemoveMember(ElemId, SetId),
    ToggleElement(ElemId),
    ToggleSet(SetId, Vec<ElemId>),
}

const SETS: SetId = 14;
const ELEMS: ElemId = 28;

fn arb_ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..ELEMS), (0..SETS)).prop_map(|(u, s)| Op::AddMember(u, s)),
            ((0..ELEMS), (0..SETS)).prop_map(|(u, s)| Op::RemoveMember(u, s)),
            (0..ELEMS).prop_map(Op::ToggleElement),
            ((0..SETS), prop::collection::vec(0..ELEMS, 0..10))
                .prop_map(|(s, m)| Op::ToggleSet(s, m)),
        ],
        0..len,
    )
}

/// Brute-force reference: size of the greedy cover of the same system,
/// used only as an OPT upper bound in the approximation check.
fn greedy_cover_size(
    sets: &std::collections::HashMap<SetId, HashSet<ElemId>>,
    universe: &HashSet<ElemId>,
) -> usize {
    let mut uncovered = universe.clone();
    let mut size = 0;
    while !uncovered.is_empty() {
        let best = sets
            .iter()
            .max_by_key(|(_, m)| m.intersection(&uncovered).count())
            .map(|(s, _)| *s)
            .unwrap();
        let gain = sets[&best].intersection(&uncovered).count();
        if gain == 0 {
            break;
        }
        uncovered = uncovered.difference(&sets[&best]).copied().collect();
        size += 1;
    }
    size
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_after_random_ops(ops in arb_ops(80), base in 0usize..3) {
        let base = [LevelBase::TWO, LevelBase::new(1.5), LevelBase::new(3.0)][base];
        let mut c = DynamicSetCover::new(base);
        // Shadow model of membership and universe.
        let mut sets: std::collections::HashMap<SetId, HashSet<ElemId>> =
            Default::default();
        let mut universe: HashSet<ElemId> = Default::default();

        // Seed with a full set so early element inserts succeed.
        c.insert_set(999, 0..ELEMS).unwrap();
        sets.insert(999, (0..ELEMS).collect());

        for op in ops {
            match op {
                Op::AddMember(u, s) => {
                    if c.has_set(s) {
                        c.add_to_set(u, s).unwrap();
                        sets.get_mut(&s).unwrap().insert(u);
                    }
                }
                Op::RemoveMember(u, s) => {
                    if c.has_set(s) {
                        let kept = c.remove_from_set(u, s).unwrap();
                        sets.get_mut(&s).unwrap().remove(&u);
                        if !kept {
                            universe.remove(&u);
                        }
                    }
                }
                Op::ToggleElement(u) => {
                    if c.has_element(u) {
                        c.remove_element(u).unwrap();
                        universe.remove(&u);
                    } else if c.insert_element(u).is_ok() {
                        universe.insert(u);
                    }
                }
                Op::ToggleSet(s, members) => {
                    if c.has_set(s) {
                        for d in c.remove_set(s).unwrap() {
                            universe.remove(&d);
                        }
                        sets.remove(&s);
                    } else {
                        c.insert_set(s, members.iter().copied()).unwrap();
                        sets.insert(s, members.into_iter().collect());
                    }
                }
            }
        }
        c.check_invariants().map_err(TestCaseError::fail)?;

        // Shadow model agreement.
        prop_assert_eq!(c.universe_size(), universe.len());
        prop_assert_eq!(c.num_sets(), sets.len());

        // Theorem 1: |C| ≤ (2 + 2 log_b m) · OPT, with greedy size as an
        // upper bound for OPT's (1 + ln m) blow-up — use the crude bound
        // |C| ≤ (2 + 2 log_b m) · greedy_size, which stability implies.
        if !universe.is_empty() {
            let m = universe.len() as f64;
            let g = greedy_cover_size(&sets, &universe) as f64;
            let bound = (2.0 + 2.0 * m.log(base.get())) * g;
            prop_assert!(
                (c.solution_size() as f64) <= bound + 1e-9,
                "|C| = {} > bound {bound}",
                c.solution_size()
            );
        } else {
            prop_assert_eq!(c.solution_size(), 0);
        }
    }

    /// greedy() after any operation sequence also yields a valid stable
    /// cover (used by FD-RMS initialisation at every binary-search step).
    #[test]
    fn greedy_restores_stability(ops in arb_ops(40)) {
        let mut c = DynamicSetCover::default();
        c.insert_set(999, 0..ELEMS).unwrap();
        for op in ops {
            match op {
                Op::AddMember(u, s) if c.has_set(s) => {
                    c.add_to_set(u, s).unwrap();
                }
                Op::RemoveMember(u, s) if c.has_set(s) => {
                    let _ = c.remove_from_set(u, s).unwrap();
                }
                Op::ToggleElement(u) => {
                    if c.has_element(u) {
                        c.remove_element(u).unwrap();
                    } else {
                        let _ = c.insert_element(u);
                    }
                }
                Op::ToggleSet(s, members) => {
                    if c.has_set(s) {
                        let _ = c.remove_set(s).unwrap();
                    } else {
                        c.insert_set(s, members).unwrap();
                    }
                }
                _ => {}
            }
        }
        c.greedy().unwrap();
        c.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The small-set row representation behaves exactly like a `HashSet`
    /// across the inline→spill boundary: with inline capacity 4 and keys
    /// drawn from a small domain, random insert/remove/clear scripts
    /// repeatedly cross N in both directions.
    #[test]
    fn spill_set_matches_hashset_model(
        ops in prop::collection::vec((0u8..3, 0u64..12), 0..200),
    ) {
        let mut fast: SpillSet<u64, 4> = SpillSet::default();
        let mut model: HashSet<u64> = HashSet::new();
        for (kind, key) in ops {
            match kind {
                0 => prop_assert_eq!(fast.insert(key), model.insert(key)),
                1 => prop_assert_eq!(fast.remove(&key), model.remove(&key)),
                _ => {
                    // Clear rarely relative to insert/remove so the set
                    // actually grows past the inline capacity.
                    if key == 0 {
                        fast.clear();
                        model.clear();
                    }
                }
            }
            prop_assert_eq!(fast.contains(&key), model.contains(&key));
            prop_assert_eq!(fast.len(), model.len());
            prop_assert_eq!(fast.is_empty(), model.is_empty());
        }
        let mut got: Vec<u64> = fast.iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
