//! Dynamic set cover with **stable** solutions — the algorithmic core of
//! FD-RMS (Section III-A of the paper).
//!
//! A set-cover solution `C ⊆ S` with an assignment `φ : U → C` is *stable*
//! (Definition 2) when
//!
//! 1. every `S ∈ C` sits in the level `L_j` matching its cover-set size:
//!    `b^j ≤ |cov(S)| < b^{j+1}` (the paper uses base `b = 2`; footnote 2
//!    allows any constant `> 1`, which this crate exposes), and
//! 2. no set in the system intersects the level-`j` assigned elements in
//!    `b^{j+1}` or more elements: `|S ∩ A_j| < b^{j+1}` for all `S ∈ S`.
//!
//! Theorem 1 shows any stable solution is an `O(log m)`-approximation.
//! [`DynamicSetCover`] maintains stability under the four update
//! operations `σ` of Algorithm 1 — element added to / removed from a set,
//! element added to / removed from the universe — plus whole-set insertion
//! and removal, which FD-RMS needs when tuples enter or leave the
//! database.
//!
//! Violation detection is O(1) amortised: the structure maintains the
//! intersection counters `|S ∩ A_j|` for every set and level incrementally
//! and pushes candidates onto a worklist whenever a counter crosses its
//! threshold; `STABILIZE` drains the worklist exactly as Lines 28–32 of
//! Algorithm 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod dynamicset;
mod level;

pub use cover::{CoverError, DynamicSetCover, ElemId, ElemRow, SetId, SetRow};
pub use dynamicset::{ArraySet, DynamicSet, SetElement, SpillIter, SpillSet};
pub use level::LevelBase;
