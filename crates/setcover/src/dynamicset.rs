//! Small-set storage for cover rows.
//!
//! Most rows of the set system are tiny: a tuple's ε-approximate top-k
//! membership `Φ_{k,ε}(p)` holds a handful of utilities, and most
//! utilities sit in few bands. A general-purpose `HashSet` spends a heap
//! allocation, hashing, and scattered cache lines on every such row. The
//! types here keep small rows inline — a fixed array scanned linearly,
//! which at these sizes beats hashing — and spill to a real hash set only
//! once a row outgrows its inline capacity.
//!
//! [`DynamicSet`] is the pluggable interface (shape follows SurrealDB's
//! `DynamicSet` trait), [`ArraySet`] the fixed-capacity inline
//! implementation, and [`SpillSet`] the adaptive combination the cover
//! structure stores.

use std::collections::HashSet;

/// Bound on the ids the small sets hold: plain copyable keys.
pub trait SetElement: Copy + Eq + std::hash::Hash + Default {}
impl<T: Copy + Eq + std::hash::Hash + Default> SetElement for T {}

/// A set abstraction the cover rows are routed through, so the row
/// representation stays swappable.
pub trait DynamicSet<T: SetElement>: Default {
    /// An empty set sized for roughly `capacity` elements.
    fn with_capacity(capacity: usize) -> Self;
    /// Inserts `v`; `true` when it was not already present.
    fn insert(&mut self, v: T) -> bool;
    /// Whether `v` is present.
    fn contains(&self, v: &T) -> bool;
    /// Removes `v`; `true` when it was present.
    fn remove(&mut self, v: &T) -> bool;
    /// Number of elements.
    fn len(&self) -> usize;
    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes every element, keeping allocations for reuse.
    fn clear(&mut self);
    /// Iterates the elements in unspecified order.
    fn iter<'a>(&'a self) -> impl Iterator<Item = &'a T> + 'a
    where
        T: 'a;
}

/// Fixed-capacity inline set: up to `N` elements in a plain array,
/// membership by linear scan. No heap allocation, one cache line for
/// small `N`.
#[derive(Debug, Clone)]
pub struct ArraySet<T, const N: usize> {
    items: [T; N],
    len: usize,
}

impl<T: SetElement, const N: usize> Default for ArraySet<T, N> {
    fn default() -> Self {
        Self {
            items: [T::default(); N],
            len: 0,
        }
    }
}

impl<T: SetElement, const N: usize> ArraySet<T, N> {
    /// Inserts `v`; `true` when it was not already present. The caller
    /// must keep the set within capacity (see [`ArraySet::is_full`]);
    /// overflow is a logic error.
    pub fn insert(&mut self, v: T) -> bool {
        if self.contains(&v) {
            return false;
        }
        assert!(self.len < N, "ArraySet overflow: capacity {N}");
        self.items[self.len] = v;
        self.len += 1;
        true
    }

    /// Whether `v` is present.
    pub fn contains(&self, v: &T) -> bool {
        self.items[..self.len].contains(v)
    }

    /// Removes `v`; `true` when it was present. Order is not preserved.
    pub fn remove(&mut self, v: &T) -> bool {
        match self.items[..self.len].iter().position(|x| x == v) {
            Some(i) => {
                self.len -= 1;
                self.items.swap(i, self.len);
                true
            }
            None => false,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether another insert of a fresh element would overflow.
    pub fn is_full(&self) -> bool {
        self.len == N
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Iterates the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items[..self.len].iter()
    }
}

impl<T: SetElement, const N: usize> DynamicSet<T> for ArraySet<T, N> {
    fn with_capacity(_capacity: usize) -> Self {
        Self::default()
    }
    fn insert(&mut self, v: T) -> bool {
        ArraySet::insert(self, v)
    }
    fn contains(&self, v: &T) -> bool {
        ArraySet::contains(self, v)
    }
    fn remove(&mut self, v: &T) -> bool {
        ArraySet::remove(self, v)
    }
    fn len(&self) -> usize {
        ArraySet::len(self)
    }
    fn clear(&mut self) {
        ArraySet::clear(self);
    }
    fn iter<'a>(&'a self) -> impl Iterator<Item = &'a T> + 'a
    where
        T: 'a,
    {
        ArraySet::iter(self)
    }
}

impl<'a, T: SetElement, const N: usize> IntoIterator for &'a ArraySet<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Adaptive small set: an inline [`ArraySet`] up to `N` elements, a
/// spilled `HashSet` beyond. Spilling is one-way (no shrink hysteresis —
/// a row that grew once tends to grow again), except that
/// [`SpillSet::clear`] keeps the spilled table's allocation for reuse.
#[derive(Debug, Clone)]
pub struct SpillSet<T: SetElement, const N: usize>(Repr<T, N>);

#[derive(Debug, Clone)]
enum Repr<T: SetElement, const N: usize> {
    Inline(ArraySet<T, N>),
    Spilled(HashSet<T>),
}

impl<T: SetElement, const N: usize> Default for SpillSet<T, N> {
    fn default() -> Self {
        Self(Repr::Inline(ArraySet::default()))
    }
}

impl<T: SetElement, const N: usize> SpillSet<T, N> {
    /// An empty set; spilled from the start when `capacity` exceeds the
    /// inline threshold.
    pub fn with_capacity(capacity: usize) -> Self {
        if capacity > N {
            Self(Repr::Spilled(HashSet::with_capacity(capacity)))
        } else {
            Self::default()
        }
    }

    /// Inserts `v`; `true` when it was not already present.
    pub fn insert(&mut self, v: T) -> bool {
        match &mut self.0 {
            Repr::Inline(a) => {
                if a.contains(&v) {
                    false
                } else if a.is_full() {
                    let mut spilled: HashSet<T> = a.iter().copied().collect();
                    spilled.insert(v);
                    self.0 = Repr::Spilled(spilled);
                    true
                } else {
                    a.insert(v)
                }
            }
            Repr::Spilled(h) => h.insert(v),
        }
    }

    /// Whether `v` is present.
    pub fn contains(&self, v: &T) -> bool {
        match &self.0 {
            Repr::Inline(a) => a.contains(v),
            Repr::Spilled(h) => h.contains(v),
        }
    }

    /// Removes `v`; `true` when it was present.
    pub fn remove(&mut self, v: &T) -> bool {
        match &mut self.0 {
            Repr::Inline(a) => a.remove(v),
            Repr::Spilled(h) => h.remove(v),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline(a) => a.len(),
            Repr::Spilled(h) => h.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every element; a spilled table keeps its allocation.
    pub fn clear(&mut self) {
        match &mut self.0 {
            Repr::Inline(a) => a.clear(),
            Repr::Spilled(h) => h.clear(),
        }
    }

    /// Whether the set has spilled to the hash representation
    /// (diagnostics and tests).
    pub fn is_spilled(&self) -> bool {
        matches!(self.0, Repr::Spilled(_))
    }

    /// Iterates the elements in unspecified order.
    pub fn iter(&self) -> SpillIter<'_, T> {
        match &self.0 {
            Repr::Inline(a) => SpillIter(IterRepr::Inline(a.iter())),
            Repr::Spilled(h) => SpillIter(IterRepr::Spilled(h.iter())),
        }
    }
}

impl<T: SetElement, const N: usize> DynamicSet<T> for SpillSet<T, N> {
    fn with_capacity(capacity: usize) -> Self {
        SpillSet::with_capacity(capacity)
    }
    fn insert(&mut self, v: T) -> bool {
        SpillSet::insert(self, v)
    }
    fn contains(&self, v: &T) -> bool {
        SpillSet::contains(self, v)
    }
    fn remove(&mut self, v: &T) -> bool {
        SpillSet::remove(self, v)
    }
    fn len(&self) -> usize {
        SpillSet::len(self)
    }
    fn clear(&mut self) {
        SpillSet::clear(self);
    }
    fn iter<'a>(&'a self) -> impl Iterator<Item = &'a T> + 'a
    where
        T: 'a,
    {
        SpillSet::iter(self)
    }
}

/// Iterator over a [`SpillSet`].
pub struct SpillIter<'a, T>(IterRepr<'a, T>);

enum IterRepr<'a, T> {
    Inline(std::slice::Iter<'a, T>),
    Spilled(std::collections::hash_set::Iter<'a, T>),
}

impl<'a, T> Iterator for SpillIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        match &mut self.0 {
            IterRepr::Inline(it) => it.next(),
            IterRepr::Spilled(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            IterRepr::Inline(it) => it.size_hint(),
            IterRepr::Spilled(it) => it.size_hint(),
        }
    }
}

impl<'a, T: SetElement, const N: usize> IntoIterator for &'a SpillSet<T, N> {
    type Item = &'a T;
    type IntoIter = SpillIter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: SetElement, const N: usize> FromIterator<T> for SpillSet<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::default();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: SetElement, const N: usize> Extend<T> for SpillSet<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_set_basics() {
        let mut a: ArraySet<u32, 4> = ArraySet::default();
        assert!(a.is_empty());
        assert!(a.insert(3));
        assert!(!a.insert(3));
        assert!(a.insert(1) && a.insert(2) && a.insert(9));
        assert!(a.is_full());
        assert_eq!(a.len(), 4);
        assert!(a.contains(&9) && !a.contains(&7));
        assert!(a.remove(&3));
        assert!(!a.remove(&3));
        assert_eq!(a.len(), 3);
        let mut got: Vec<u32> = a.iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 9]);
    }

    #[test]
    #[should_panic(expected = "ArraySet overflow")]
    fn array_set_overflow_is_loud() {
        let mut a: ArraySet<u32, 2> = ArraySet::default();
        a.insert(1);
        a.insert(2);
        a.insert(3);
    }

    #[test]
    fn spill_set_crosses_boundary_and_back() {
        let mut s: SpillSet<u32, 4> = SpillSet::default();
        for v in 0..4 {
            assert!(s.insert(v));
        }
        assert!(!s.is_spilled());
        assert!(!s.insert(2), "duplicate at full inline must not spill");
        assert!(!s.is_spilled());
        assert!(s.insert(4));
        assert!(s.is_spilled());
        assert_eq!(s.len(), 5);
        for v in 0..5 {
            assert!(s.contains(&v));
        }
        // Shrinking below N keeps the spilled representation (hysteresis).
        assert!(s.remove(&0) && s.remove(&1));
        assert_eq!(s.len(), 3);
        assert!(s.is_spilled());
        s.clear();
        assert!(s.is_empty() && s.is_spilled());
    }

    #[test]
    fn with_capacity_pre_spills() {
        let s: SpillSet<u32, 4> = SpillSet::with_capacity(16);
        assert!(s.is_spilled());
        let s: SpillSet<u32, 4> = SpillSet::with_capacity(3);
        assert!(!s.is_spilled());
    }

    #[test]
    fn from_iterator_dedups() {
        let s: SpillSet<u32, 4> = [1, 2, 2, 3, 1].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert!(!s.is_spilled());
    }

    #[test]
    fn trait_object_style_usage_is_generic() {
        fn exercise<S: DynamicSet<u64>>() -> usize {
            let mut s = S::with_capacity(8);
            for v in 0..6 {
                s.insert(v);
            }
            s.remove(&0);
            assert!(!s.is_empty());
            s.iter().count()
        }
        assert_eq!(exercise::<ArraySet<u64, 8>>(), 5);
        assert_eq!(exercise::<SpillSet<u64, 2>>(), 5);
    }
}
