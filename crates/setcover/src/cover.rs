//! The dynamic set-cover structure (Algorithm 1 of the paper).

use crate::dynamicset::SpillSet;
use crate::level::LevelBase;
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifier of a universe element. In FD-RMS, elements are utility
/// vectors, indexed `0..m`.
pub type ElemId = u32;

/// Identifier of a set in the collection `S`. In FD-RMS, sets are tuples:
/// `S(p)` is identified by the tuple id of `p`.
pub type SetId = u64;

/// Inline capacity of element-id rows (`sets`, `cov`): a tuple's
/// ε-approximate top-k membership is usually a handful of utilities.
const ELEM_INLINE: usize = 16;

/// Inline capacity of set-id rows (`elem_sets`): most utilities sit in
/// few ε-bands.
const SET_INLINE: usize = 8;

/// A row of element ids — inline up to [`ELEM_INLINE`], hash-spilled
/// beyond. Returned by [`DynamicSetCover::members`].
pub type ElemRow = SpillSet<ElemId, ELEM_INLINE>;

/// A row of set ids — inline up to [`SET_INLINE`], hash-spilled beyond.
/// Returned by [`DynamicSetCover::sets_containing`].
pub type SetRow = SpillSet<SetId, SET_INLINE>;

/// Errors raised by [`DynamicSetCover`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// Inserting a set id that already exists.
    DuplicateSet(SetId),
    /// Operating on a set id that does not exist.
    UnknownSet(SetId),
    /// Inserting an element already in the universe.
    DuplicateElement(ElemId),
    /// Removing an element that is not in the universe.
    UnknownElement(ElemId),
    /// An element must be covered but no set in the system contains it.
    UncoverableElement(ElemId),
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::DuplicateSet(s) => write!(f, "set {s} already exists"),
            CoverError::UnknownSet(s) => write!(f, "set {s} does not exist"),
            CoverError::DuplicateElement(u) => write!(f, "element {u} already in universe"),
            CoverError::UnknownElement(u) => write!(f, "element {u} not in universe"),
            CoverError::UncoverableElement(u) => {
                write!(f, "element {u} is contained in no set")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// A dynamic set-cover instance together with a maintained stable solution.
///
/// The structure holds the set system `Σ = (U, S)` (memberships may include
/// elements outside the current universe — they simply do not need
/// covering) and a solution `C` with assignment `φ`, kept stable in the
/// sense of Definition 2 after every mutation.
#[derive(Debug, Clone)]
pub struct DynamicSetCover {
    base: LevelBase,
    /// Membership `S`: set → elements it contains.
    sets: HashMap<SetId, ElemRow>,
    /// Inverse membership: element → sets containing it.
    elem_sets: HashMap<ElemId, SetRow>,
    /// The universe `U` (elements that must be covered).
    universe: HashSet<ElemId>,
    /// Assignment `φ : U → C`.
    phi: HashMap<ElemId, SetId>,
    /// Cover sets `cov(S)` for `S ∈ C`.
    cov: HashMap<SetId, ElemRow>,
    /// Level of each `S ∈ C`.
    level_of: HashMap<SetId, u32>,
    /// Intersection counters `|S ∩ A_j|` for every set (solution member or
    /// not) and level, maintained incrementally. Zero entries are pruned.
    cnt: HashMap<SetId, HashMap<u32, usize>>,
    /// Worklist of `(set, level)` pairs whose counter crossed the
    /// condition-(2) threshold, with a dedup guard.
    dirty: VecDeque<(SetId, u32)>,
    dirty_guard: HashSet<(SetId, u32)>,
    /// Cumulative number of stabilisation element moves (for the ablation
    /// benches).
    stabilize_moves: u64,
    /// When `true` (between [`DynamicSetCover::begin_batch`] and
    /// [`DynamicSetCover::commit`]), mutations accumulate violation
    /// candidates on the worklist instead of stabilising immediately.
    batching: bool,
    /// Reusable iteration buffers — hot maintenance paths snapshot rows
    /// they mutate under iteration into these instead of allocating fresh
    /// `Vec`s. Persist across `begin_batch()`/`commit()` transactions.
    scratch: Scratch,
}

/// Reusable scratch buffers for the maintenance loops. Each buffer is
/// owned by exactly one routine (taken with `mem::take`, cleared, and
/// put back) so nested calls never observe each other's contents.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// `change_elem_level`: sets touching one element.
    touching: Vec<SetId>,
    /// `relevel`: snapshot of `cov(s)`.
    cov_elems: Vec<ElemId>,
    /// `stabilize`: the grabbed `S ∩ A_j`.
    grabbed: Vec<ElemId>,
    /// `stabilize`: former owners of grabbed elements (deduplicated).
    losers: SetRow,
}

impl Default for DynamicSetCover {
    fn default() -> Self {
        Self::new(LevelBase::TWO)
    }
}

impl DynamicSetCover {
    /// Creates an empty instance with the given level base.
    pub fn new(base: LevelBase) -> Self {
        Self {
            base,
            sets: HashMap::new(),
            elem_sets: HashMap::new(),
            universe: HashSet::new(),
            phi: HashMap::new(),
            cov: HashMap::new(),
            level_of: HashMap::new(),
            cnt: HashMap::new(),
            dirty: VecDeque::new(),
            dirty_guard: HashSet::new(),
            stabilize_moves: 0,
            batching: false,
            scratch: Scratch::default(),
        }
    }

    // ------------------------------------------------------------------
    // Deferred-stabilisation transactions
    // ------------------------------------------------------------------

    /// Starts a batch: subsequent mutations keep all membership, universe,
    /// assignment, and counter bookkeeping exact, but defer `STABILIZE`
    /// until [`DynamicSetCover::commit`]. Between the two calls the
    /// solution is a valid cover (every universe element stays assigned to
    /// a set containing it) but may violate the stability condition (2),
    /// so [`DynamicSetCover::check_invariants`] can fail mid-batch.
    ///
    /// Idempotent; batches do not nest.
    pub fn begin_batch(&mut self) {
        self.batching = true;
    }

    /// Ends the batch and runs `STABILIZE` once over every violation
    /// candidate the batched mutations accumulated. Returns the number of
    /// element moves this stabilisation pass performed. A no-op (returning
    /// 0) when no batch is open and the worklist is empty.
    pub fn commit(&mut self) -> u64 {
        self.batching = false;
        let before = self.stabilize_moves;
        self.stabilize();
        self.stabilize_moves - before
    }

    /// Whether a deferred-stabilisation batch is currently open.
    pub fn is_batching(&self) -> bool {
        self.batching
    }

    /// Runs `STABILIZE` unless a batch is open (mutation entry points call
    /// this so batched mutations only enqueue violation candidates).
    fn maybe_stabilize(&mut self) {
        if !self.batching {
            self.stabilize();
        }
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Number of sets in the solution `|C|`.
    pub fn solution_size(&self) -> usize {
        self.cov.len()
    }

    /// The solution `C` as set ids (unspecified order).
    pub fn solution(&self) -> impl Iterator<Item = SetId> + '_ {
        self.cov.keys().copied()
    }

    /// Whether `s` is part of the solution.
    pub fn in_solution(&self, s: SetId) -> bool {
        self.cov.contains_key(&s)
    }

    /// The set `φ(u)` covering element `u`, if assigned.
    pub fn assignment(&self, u: ElemId) -> Option<SetId> {
        self.phi.get(&u).copied()
    }

    /// Size of the universe `m = |U|`.
    pub fn universe_size(&self) -> usize {
        self.universe.len()
    }

    /// Number of sets in the system `|S|`.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Whether the set `s` exists in the system.
    pub fn has_set(&self, s: SetId) -> bool {
        self.sets.contains_key(&s)
    }

    /// Whether element `u` is in the universe.
    pub fn has_element(&self, u: ElemId) -> bool {
        self.universe.contains(&u)
    }

    /// Membership of a set, if it exists.
    pub fn members(&self, s: SetId) -> Option<&ElemRow> {
        self.sets.get(&s)
    }

    /// All sets containing element `u` (its membership in the transposed
    /// system — in FD-RMS terms, the tuples whose `Φ_{k,ε}` contains `u`).
    pub fn sets_containing(&self, u: ElemId) -> Option<&SetRow> {
        self.elem_sets.get(&u)
    }

    /// Whether set `s` contains element `u`.
    pub fn set_contains(&self, s: SetId, u: ElemId) -> bool {
        self.sets.get(&s).is_some_and(|m| m.contains(&u))
    }

    /// Total element moves performed by `STABILIZE` so far (ablation
    /// instrumentation).
    pub fn stabilize_moves(&self) -> u64 {
        self.stabilize_moves
    }

    // ------------------------------------------------------------------
    // Membership and universe operations (the σ of Algorithm 1)
    // ------------------------------------------------------------------

    /// Adds a fresh set with the given members. Members need not be in the
    /// universe. The solution is unaffected (an empty-cov set never enters
    /// `C` spontaneously), but condition (2) may now be violated by the new
    /// set, so stabilisation runs.
    pub fn insert_set(
        &mut self,
        s: SetId,
        members: impl IntoIterator<Item = ElemId>,
    ) -> Result<(), CoverError> {
        if self.sets.contains_key(&s) {
            return Err(CoverError::DuplicateSet(s));
        }
        let members: ElemRow = members.into_iter().collect();
        for &u in &members {
            self.elem_sets.entry(u).or_default().insert(s);
            if let Some(level) = self.assigned_level(u) {
                self.bump_cnt(s, level, 1);
            }
        }
        self.sets.insert(s, members);
        self.maybe_stabilize();
        Ok(())
    }

    /// Removes a set from the system. Elements it covered are reassigned
    /// to other sets containing them (σ = (u, S, −) for each, per the
    /// deletion path of Algorithm 3). Elements contained in no remaining
    /// set are dropped from the universe and returned.
    pub fn remove_set(&mut self, s: SetId) -> Result<Vec<ElemId>, CoverError> {
        let Some(members) = self.sets.remove(&s) else {
            return Err(CoverError::UnknownSet(s));
        };
        for &u in &members {
            if let Some(es) = self.elem_sets.get_mut(&u) {
                es.remove(&s);
                if es.is_empty() {
                    self.elem_sets.remove(&u);
                }
            }
        }
        // Detach the solution bookkeeping for s.
        let orphans: Vec<ElemId> = match self.cov.remove(&s) {
            Some(cov) => {
                let j = self.level_of.remove(&s).expect("solution sets have levels");
                let orphans: Vec<ElemId> = cov.iter().copied().collect();
                for &u in &orphans {
                    self.phi.remove(&u);
                    self.change_elem_level(u, Some(j), None);
                }
                orphans
            }
            None => Vec::new(),
        };
        self.cnt.remove(&s);

        let mut dropped = Vec::new();
        for u in orphans {
            if self.try_assign(u).is_err() {
                self.universe.remove(&u);
                dropped.push(u);
            }
        }
        self.maybe_stabilize();
        Ok(dropped)
    }

    /// σ = (u, S, +): adds element `u` to set `s`.
    pub fn add_to_set(&mut self, u: ElemId, s: SetId) -> Result<(), CoverError> {
        let Some(members) = self.sets.get_mut(&s) else {
            return Err(CoverError::UnknownSet(s));
        };
        if !members.insert(u) {
            return Ok(()); // already a member — no-op
        }
        self.elem_sets.entry(u).or_default().insert(s);
        if let Some(level) = self.assigned_level(u) {
            self.bump_cnt(s, level, 1);
        }
        self.maybe_stabilize();
        Ok(())
    }

    /// σ = (u, S, −): removes element `u` from set `s`. If `u` was
    /// assigned to `s`, it is reassigned to another set containing it
    /// (Lines 2–5 of Algorithm 1); if no such set exists, `u` is dropped
    /// from the universe and `Ok(false)` is returned. `Ok(true)` means `u`
    /// remains covered (or was not in the universe at all).
    pub fn remove_from_set(&mut self, u: ElemId, s: SetId) -> Result<bool, CoverError> {
        let Some(members) = self.sets.get_mut(&s) else {
            return Err(CoverError::UnknownSet(s));
        };
        if !members.remove(&u) {
            return Ok(true); // was not a member — no-op
        }
        if let Some(es) = self.elem_sets.get_mut(&u) {
            es.remove(&s);
            if es.is_empty() {
                self.elem_sets.remove(&u);
            }
        }
        if let Some(level) = self.assigned_level(u) {
            self.bump_cnt(s, level, usize::MAX); // decrement
            if self.phi.get(&u) == Some(&s) {
                self.unassign(u);
                if self.try_assign(u).is_err() {
                    self.universe.remove(&u);
                    self.maybe_stabilize();
                    return Ok(false);
                }
            }
        }
        self.maybe_stabilize();
        Ok(true)
    }

    /// σ = (u, U, +): adds element `u` to the universe and assigns it.
    ///
    /// Fails with [`CoverError::UncoverableElement`] if no set contains
    /// `u`; callers add memberships first (as FD-RMS does in Algorithm 4).
    pub fn insert_element(&mut self, u: ElemId) -> Result<(), CoverError> {
        if self.universe.contains(&u) {
            return Err(CoverError::DuplicateElement(u));
        }
        if self.elem_sets.get(&u).is_none_or(|es| es.is_empty()) {
            return Err(CoverError::UncoverableElement(u));
        }
        self.universe.insert(u);
        // Memberships of u now count towards cnt: u enters level(φ(u))
        // inside try_assign via change_elem_level.
        self.try_assign(u).expect("membership checked above");
        self.maybe_stabilize();
        Ok(())
    }

    /// σ = (u, U, −): removes element `u` from the universe.
    pub fn remove_element(&mut self, u: ElemId) -> Result<(), CoverError> {
        if !self.universe.remove(&u) {
            return Err(CoverError::UnknownElement(u));
        }
        if self.phi.contains_key(&u) {
            self.unassign(u);
        }
        self.maybe_stabilize();
        Ok(())
    }

    /// Replaces the universe wholesale, discarding the current solution.
    ///
    /// Used by the FD-RMS initialisation (Algorithm 2), which binary
    /// searches the sample size `m` and reruns [`DynamicSetCover::greedy`]
    /// on `U = {u_1, …, u_m}` at each probe — incremental element
    /// insertion would waste stabilisation work that greedy immediately
    /// throws away. Call [`DynamicSetCover::greedy`] afterwards to obtain
    /// a solution; until then the structure has no cover.
    pub fn reset_universe(&mut self, elems: impl IntoIterator<Item = ElemId>) {
        self.phi.clear();
        self.cov.clear();
        self.level_of.clear();
        self.cnt.clear();
        self.dirty.clear();
        self.dirty_guard.clear();
        self.universe = elems.into_iter().collect();
    }

    // ------------------------------------------------------------------
    // GREEDY initialisation (Lines 13–19 of Algorithm 1)
    // ------------------------------------------------------------------

    /// Discards the current solution and recomputes one with the classic
    /// greedy algorithm, assigning every chosen set to its level. By
    /// Lemma 1 the result is stable.
    pub fn greedy(&mut self) -> Result<(), CoverError> {
        // Reset solution state.
        self.phi.clear();
        self.cov.clear();
        self.level_of.clear();
        self.cnt.clear();
        self.dirty.clear();
        self.dirty_guard.clear();

        let mut uncovered: ElemRow = self.universe.iter().copied().collect();
        // Lazy-decrement max-heap over |S ∩ I|: counts only ever shrink, so
        // a popped entry matching its recomputed count is globally maximal.
        let mut heap: std::collections::BinaryHeap<(usize, std::cmp::Reverse<SetId>)> = self
            .sets
            .iter()
            .map(|(&s, members)| {
                let c = members.iter().filter(|u| uncovered.contains(u)).count();
                (c, std::cmp::Reverse(s))
            })
            .collect();

        while !uncovered.is_empty() {
            let Some((c, std::cmp::Reverse(s))) = heap.pop() else {
                let u = *uncovered.iter().next().expect("nonempty");
                return Err(CoverError::UncoverableElement(u));
            };
            if c == 0 {
                let u = *uncovered.iter().next().expect("nonempty");
                return Err(CoverError::UncoverableElement(u));
            }
            let members = &self.sets[&s];
            let fresh: ElemRow = members
                .iter()
                .copied()
                .filter(|u| uncovered.contains(u))
                .collect();
            if fresh.len() < c {
                // Stale entry: reinsert with the true count.
                heap.push((fresh.len(), std::cmp::Reverse(s)));
                continue;
            }
            for &u in &fresh {
                uncovered.remove(&u);
                self.phi.insert(u, s);
            }
            let level = self.base.level_for(fresh.len());
            self.level_of.insert(s, level);
            self.cov.insert(s, fresh);
        }

        // Rebuild the intersection counters from scratch.
        for &u in &self.universe {
            let level = self.assigned_level(u).expect("all covered");
            if let Some(es) = self.elem_sets.get(&u) {
                for &t in es {
                    *self.cnt.entry(t).or_default().entry(level).or_insert(0) += 1;
                }
            }
        }
        // Lemma 1: the greedy solution is stable; verify cheaply in debug.
        debug_assert!(
            self.find_violation().is_none(),
            "greedy produced unstable C"
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The level of the set currently covering `u`, if `u` is assigned.
    fn assigned_level(&self, u: ElemId) -> Option<u32> {
        let s = self.phi.get(&u)?;
        Some(*self.level_of.get(s).expect("φ targets are in C"))
    }

    /// Adjusts `cnt[s][level]` by +1 (`delta = 1`) or −1 (`delta =
    /// usize::MAX`), enqueuing a violation candidate when the threshold is
    /// crossed upward.
    fn bump_cnt(&mut self, s: SetId, level: u32, delta: usize) {
        let per_set = self.cnt.entry(s).or_default();
        let c = per_set.entry(level).or_insert(0);
        if delta == 1 {
            *c += 1;
            if *c >= self.base.threshold(level) && self.dirty_guard.insert((s, level)) {
                self.dirty.push_back((s, level));
            }
        } else {
            debug_assert!(*c > 0, "cnt underflow for set {s} level {level}");
            *c -= 1;
            if *c == 0 {
                per_set.remove(&level);
                if per_set.is_empty() {
                    self.cnt.remove(&s);
                }
            }
        }
    }

    /// Updates every containing set's counters when `u`'s assigned level
    /// changes (`None` = unassigned / outside universe).
    fn change_elem_level(&mut self, u: ElemId, old: Option<u32>, new: Option<u32>) {
        if old == new {
            return;
        }
        let Some(es) = self.elem_sets.get(&u) else {
            return;
        };
        // Reused scratch: `bump_cnt` needs `&mut self`, so the row is
        // snapshotted — but into a persistent buffer, not a fresh Vec.
        let mut touching = std::mem::take(&mut self.scratch.touching);
        touching.clear();
        touching.extend(es.iter().copied());
        for &t in &touching {
            if let Some(j) = old {
                self.bump_cnt(t, j, usize::MAX);
            }
            if let Some(j) = new {
                self.bump_cnt(t, j, 1);
            }
        }
        self.scratch.touching = touching;
    }

    /// Assigns `u` to a set containing it, preferring solution members
    /// (Line 4 of Algorithm 1 reassigns to "S+ ∈ S s.t. u ∈ S+"; choosing
    /// an existing solution member keeps `|C|` from growing needlessly,
    /// and among those the largest cover set is the most stable home).
    fn try_assign(&mut self, u: ElemId) -> Result<(), CoverError> {
        debug_assert!(!self.phi.contains_key(&u));
        let Some(es) = self.elem_sets.get(&u) else {
            return Err(CoverError::UncoverableElement(u));
        };
        if es.is_empty() {
            return Err(CoverError::UncoverableElement(u));
        }
        let target = es
            .iter()
            .copied()
            .filter(|s| self.cov.contains_key(s))
            .max_by_key(|s| (self.cov[s].len(), std::cmp::Reverse(*s)))
            .or_else(|| es.iter().copied().min())
            .expect("membership nonempty");

        if let Some(cov) = self.cov.get_mut(&target) {
            cov.insert(u);
            self.phi.insert(u, target);
            let level = self.level_of[&target];
            self.change_elem_level(u, None, Some(level));
            self.relevel(target);
        } else {
            self.cov.insert(target, std::iter::once(u).collect());
            self.level_of.insert(target, self.base.level_for(1));
            self.phi.insert(u, target);
            self.change_elem_level(u, None, Some(self.base.level_for(1)));
        }
        Ok(())
    }

    /// Removes `u` from its cover set (keeping it in the universe) and
    /// relevels the former owner.
    fn unassign(&mut self, u: ElemId) {
        let s = self.phi.remove(&u).expect("unassign of unassigned element");
        let j = self.level_of[&s];
        self.cov.get_mut(&s).expect("φ target in C").remove(&u);
        self.change_elem_level(u, Some(j), None);
        self.relevel(s);
    }

    /// RELEVEL (Lines 20–27 of Algorithm 1): moves `s` to the level
    /// matching `|cov(s)|`, or removes it from `C` when its cover set is
    /// empty. Level moves update the assigned level of every covered
    /// element.
    fn relevel(&mut self, s: SetId) {
        let Some(cov) = self.cov.get(&s) else {
            return;
        };
        if cov.is_empty() {
            self.cov.remove(&s);
            self.level_of.remove(&s);
            return;
        }
        let j = self.level_of[&s];
        let j_new = self.base.level_for(cov.len());
        if j_new == j {
            return;
        }
        self.level_of.insert(s, j_new);
        // Reused scratch, same pattern as `change_elem_level` (which runs
        // inside the loop and takes a different buffer).
        let mut elems = std::mem::take(&mut self.scratch.cov_elems);
        elems.clear();
        elems.extend(self.cov[&s].iter().copied());
        for &u in &elems {
            self.change_elem_level(u, Some(j), Some(j_new));
        }
        self.scratch.cov_elems = elems;
    }

    /// STABILIZE (Lines 28–32 of Algorithm 1): while some set intersects a
    /// level's assigned elements in at least `b^{j+1}` elements, that set
    /// grabs the whole intersection into its own cover set, releveling all
    /// touched sets.
    fn stabilize(&mut self) {
        // Lemma 2: every move strictly raises an element's level, so the
        // loop terminates after O(m log m) moves. The generous cap turns a
        // bookkeeping bug into a loud failure rather than a hang.
        let cap = 64 * (self.universe.len() as u64 + 2) * 64 + 4096;
        let mut guard = 0u64;
        // Reused scratch across the whole drain (and across transactions).
        let mut grabbed = std::mem::take(&mut self.scratch.grabbed);
        let mut losers = std::mem::take(&mut self.scratch.losers);
        while let Some((s, j)) = self.dirty.pop_front() {
            self.dirty_guard.remove(&(s, j));
            guard += 1;
            assert!(guard < cap, "STABILIZE failed to converge — invariant bug");
            // Revalidate: the entry may be stale.
            if !self.sets.contains_key(&s) {
                continue;
            }
            let current = self
                .cnt
                .get(&s)
                .and_then(|m| m.get(&j))
                .copied()
                .unwrap_or(0);
            if current < self.base.threshold(j) {
                continue;
            }
            // Grab S ∩ A_j. Elements already assigned to s (possible when s
            // itself sits at level j) stay put.
            grabbed.clear();
            grabbed.extend(
                self.sets[&s]
                    .iter()
                    .copied()
                    .filter(|u| self.assigned_level(*u) == Some(j) && self.phi.get(u) != Some(&s)),
            );
            if grabbed.is_empty() {
                continue;
            }
            // Ensure s is in the solution.
            if let std::collections::hash_map::Entry::Vacant(e) = self.cov.entry(s) {
                e.insert(ElemRow::default());
                // Provisional level; corrected by relevel below. Using j
                // keeps the grabbed elements' level transition accurate.
                self.level_of.insert(s, j);
            }
            let s_level = self.level_of[&s];
            losers.clear();
            for &u in &grabbed {
                let old = self
                    .phi
                    .insert(u, s)
                    .expect("grabbed elements are assigned");
                self.cov.get_mut(&old).expect("old owner in C").remove(&u);
                losers.insert(old);
                self.cov.get_mut(&s).expect("just ensured").insert(u);
                self.change_elem_level(u, Some(j), Some(s_level));
                self.stabilize_moves += 1;
            }
            self.relevel(s);
            for &t in &losers {
                self.relevel(t);
            }
        }
        self.scratch.grabbed = grabbed;
        self.scratch.losers = losers;
    }

    // ------------------------------------------------------------------
    // Verification (tests, debug)
    // ------------------------------------------------------------------

    /// Scans for a condition-(2) violation; `None` means stable.
    fn find_violation(&self) -> Option<(SetId, u32)> {
        for (&s, per_level) in &self.cnt {
            for (&j, &c) in per_level {
                if c >= self.base.threshold(j) {
                    // Exclude elements already covered by s itself at j —
                    // grabbing them changes nothing (see `stabilize`).
                    let movable = self.sets[&s]
                        .iter()
                        .filter(|u| {
                            self.assigned_level(**u) == Some(j) && self.phi.get(u) != Some(&s)
                        })
                        .count();
                    let own = c - movable;
                    if movable > 0 && own + movable >= self.base.threshold(j) {
                        return Some((s, j));
                    }
                }
            }
        }
        None
    }

    /// Exhaustively checks every invariant. Intended for tests; runs in
    /// time proportional to the whole structure.
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. Every universe element is assigned to a solution set that
        //    contains it; cover sets partition the universe.
        let mut seen: HashSet<ElemId> = HashSet::new();
        for (&s, cov) in &self.cov {
            if cov.is_empty() {
                return Err(format!("solution set {s} has empty cover"));
            }
            if !self.sets.contains_key(&s) {
                return Err(format!("solution set {s} not in system"));
            }
            for &u in cov {
                if !self.universe.contains(&u) {
                    return Err(format!("cov({s}) holds non-universe element {u}"));
                }
                if !self.sets[&s].contains(&u) {
                    return Err(format!("cov({s}) holds non-member {u}"));
                }
                if self.phi.get(&u) != Some(&s) {
                    return Err(format!("φ({u}) disagrees with cov({s})"));
                }
                if !seen.insert(u) {
                    return Err(format!("element {u} covered twice"));
                }
            }
        }
        if seen.len() != self.universe.len() {
            return Err(format!(
                "covered {} of {} universe elements",
                seen.len(),
                self.universe.len()
            ));
        }
        // 2. Condition (1): levels match cover sizes.
        for (&s, cov) in &self.cov {
            let want = self.base.level_for(cov.len());
            let got = *self
                .level_of
                .get(&s)
                .ok_or_else(|| format!("set {s} missing level"))?;
            if want != got {
                return Err(format!(
                    "set {s}: |cov| = {} ⇒ level {want}, stored {got}",
                    cov.len()
                ));
            }
        }
        // 3. Counters match a recomputation.
        let mut want_cnt: HashMap<SetId, HashMap<u32, usize>> = HashMap::new();
        for &u in &self.universe {
            if let Some(level) = self.assigned_level(u) {
                if let Some(es) = self.elem_sets.get(&u) {
                    for &t in es {
                        *want_cnt.entry(t).or_default().entry(level).or_insert(0) += 1;
                    }
                }
            }
        }
        if want_cnt != self.cnt {
            return Err("intersection counters out of sync".to_string());
        }
        // 4. Condition (2): no actionable violation remains.
        if let Some((s, j)) = self.find_violation() {
            return Err(format!("unstable: set {s} vs level {j}"));
        }
        // 5. Inverse membership is consistent.
        for (&s, members) in &self.sets {
            for &u in members {
                if !self.elem_sets.get(&u).is_some_and(|es| es.contains(&s)) {
                    return Err(format!("elem_sets missing ({u}, {s})"));
                }
            }
        }
        for (&u, es) in &self.elem_sets {
            for &s in es {
                if !self.sets.get(&s).is_some_and(|m| m.contains(&u)) {
                    return Err(format!("elem_sets stale entry ({u}, {s})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a cover instance over elements `0..m` from (set, members).
    fn build(m: u32, sets: &[(SetId, &[ElemId])]) -> DynamicSetCover {
        let mut c = DynamicSetCover::default();
        for &(s, members) in sets {
            c.insert_set(s, members.iter().copied()).unwrap();
        }
        for u in 0..m {
            c.insert_element(u).unwrap();
        }
        c
    }

    #[test]
    fn greedy_covers_and_is_stable() {
        let mut c = build(
            6,
            &[(1, &[0, 1, 2, 3]), (2, &[3, 4]), (3, &[4, 5]), (4, &[5])],
        );
        c.greedy().unwrap();
        c.check_invariants().unwrap();
        // Optimal is {1, 3}: greedy picks set 1 (4 fresh), then set 3.
        assert_eq!(c.solution_size(), 2);
        assert!(c.in_solution(1) && c.in_solution(3));
    }

    #[test]
    fn incremental_inserts_keep_cover() {
        let mut c = DynamicSetCover::default();
        c.insert_set(10, [0, 1]).unwrap();
        c.insert_element(0).unwrap();
        c.insert_element(1).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 1);
        assert_eq!(c.assignment(0), Some(10));
        assert_eq!(c.assignment(1), Some(10));
    }

    #[test]
    fn uncoverable_element_rejected() {
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [0]).unwrap();
        assert_eq!(
            c.insert_element(99),
            Err(CoverError::UncoverableElement(99))
        );
    }

    #[test]
    fn duplicate_errors() {
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [0]).unwrap();
        assert_eq!(c.insert_set(1, [1]), Err(CoverError::DuplicateSet(1)));
        c.insert_element(0).unwrap();
        assert_eq!(c.insert_element(0), Err(CoverError::DuplicateElement(0)));
        assert_eq!(c.remove_element(5), Err(CoverError::UnknownElement(5)));
        assert_eq!(c.remove_set(9), Err(CoverError::UnknownSet(9)));
        assert_eq!(c.add_to_set(0, 9), Err(CoverError::UnknownSet(9)));
    }

    #[test]
    fn remove_from_set_reassigns() {
        let mut c = build(2, &[(1, &[0, 1]), (2, &[0])]);
        c.greedy().unwrap();
        assert_eq!(c.assignment(0), Some(1));
        // Remove 0 from set 1: must be reassigned to set 2.
        assert!(c.remove_from_set(0, 1).unwrap());
        assert_eq!(c.assignment(0), Some(2));
        c.check_invariants().unwrap();
    }

    #[test]
    fn remove_from_set_drops_uncoverable() {
        let mut c = build(2, &[(1, &[0, 1])]);
        c.greedy().unwrap();
        assert!(!c.remove_from_set(0, 1).unwrap());
        assert!(!c.has_element(0));
        assert!(c.has_element(1));
        c.check_invariants().unwrap();
    }

    #[test]
    fn remove_set_reassigns_cover() {
        let mut c = build(3, &[(1, &[0, 1, 2]), (2, &[0, 1]), (3, &[2])]);
        c.greedy().unwrap();
        assert!(c.in_solution(1));
        let dropped = c.remove_set(1).unwrap();
        assert!(dropped.is_empty());
        c.check_invariants().unwrap();
        assert!(!c.has_set(1));
        assert_eq!(c.universe_size(), 3);
    }

    #[test]
    fn remove_set_drops_exclusive_elements() {
        let mut c = build(2, &[(1, &[0, 1]), (2, &[1])]);
        c.greedy().unwrap();
        let dropped = c.remove_set(1).unwrap();
        assert_eq!(dropped, vec![0]);
        assert!(!c.has_element(0));
        assert_eq!(c.assignment(1), Some(2));
        c.check_invariants().unwrap();
    }

    #[test]
    fn remove_element_shrinks_cover() {
        let mut c = build(3, &[(1, &[0, 1, 2])]);
        c.greedy().unwrap();
        c.remove_element(0).unwrap();
        c.remove_element(1).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.universe_size(), 1);
        assert_eq!(c.solution_size(), 1);
        c.remove_element(2).unwrap();
        assert_eq!(c.solution_size(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn stabilize_consolidates_scattered_assignments() {
        // Elements 0..8 initially covered by 8 singleton sets; then a new
        // set containing all of them arrives. Condition (2) forces the big
        // set to grab everything: |S ∩ A_0| = 8 ≥ 2.
        let mut c = DynamicSetCover::default();
        for u in 0..8u32 {
            c.insert_set(u as SetId + 1, [u]).unwrap();
        }
        for u in 0..8 {
            c.insert_element(u).unwrap();
        }
        assert_eq!(c.solution_size(), 8);
        c.insert_set(100, 0..8).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 1);
        assert!(c.in_solution(100));
        assert!(c.stabilize_moves() >= 8);
    }

    #[test]
    fn add_to_set_can_trigger_stabilize() {
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [0]).unwrap();
        c.insert_set(2, [1]).unwrap();
        c.insert_set(3, []).unwrap();
        c.insert_element(0).unwrap();
        c.insert_element(1).unwrap();
        assert_eq!(c.solution_size(), 2);
        // Growing set 3 to contain both level-0 elements violates (2).
        c.add_to_set(0, 3).unwrap();
        c.add_to_set(1, 3).unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 1);
        assert!(c.in_solution(3));
    }

    #[test]
    fn solution_quality_is_logarithmic() {
        // Universe 0..n covered by: one full set + n singletons. A stable
        // solution must use O(log n) sets — in fact the full set only.
        let n: u32 = 64;
        let mut c = DynamicSetCover::default();
        c.insert_set(1000, 0..n).unwrap();
        for u in 0..n {
            c.insert_set(u as SetId, [u]).unwrap();
        }
        for u in 0..n {
            c.insert_element(u).unwrap();
        }
        c.check_invariants().unwrap();
        // Theorem 1: |C| ≤ (2 + 2·log2 m)·OPT with OPT = 1 here.
        let bound = 2.0 + 2.0 * (n as f64).log2();
        assert!(
            (c.solution_size() as f64) <= bound,
            "|C| = {} exceeds stable bound {bound}",
            c.solution_size()
        );
    }

    #[test]
    fn greedy_matches_paper_example_fig3b() {
        // Fig. 3b: U = {u1..u6}, solution {S(p1), S(p2), S(p4)} with
        // cov(S(p1)) = {u2, u5}, cov(S(p4)) = {u1, u4, u6}, cov(S(p2)) =
        // {u3}. Memberships (1-RMS, ε = 0.002 on the example data):
        // S(p1) ⊇ {u2, u5} (top for near-y directions), S(p2) ∋ u3,
        // S(p4) ⊇ {u1, u4, u6}. We reproduce the set system shape.
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [1, 4]).unwrap(); // S(p1): u2, u5
        c.insert_set(2, [2]).unwrap(); // S(p2): u3
        c.insert_set(4, [0, 3, 5]).unwrap(); // S(p4): u1, u4, u6
        for u in 0..6 {
            c.insert_element(u).unwrap();
        }
        c.greedy().unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 3);
        assert!(c.in_solution(1) && c.in_solution(2) && c.in_solution(4));
    }

    #[test]
    fn configurable_level_base() {
        let mut c = DynamicSetCover::new(LevelBase::new(4.0));
        c.insert_set(1, 0..16).unwrap();
        for u in 0..16 {
            c.insert_element(u).unwrap();
        }
        c.greedy().unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 1);
    }

    #[test]
    fn greedy_on_empty_universe() {
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [0, 1]).unwrap();
        c.greedy().unwrap();
        assert_eq!(c.solution_size(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn greedy_uncoverable() {
        let mut c = DynamicSetCover::default();
        c.insert_set(1, [0]).unwrap();
        c.insert_element(0).unwrap();
        // Force an uncovered element artificially: remove set then greedy.
        let dropped = c.remove_set(1).unwrap();
        assert_eq!(dropped, vec![0]);
        c.greedy().unwrap(); // empty universe now — fine
        assert_eq!(c.solution_size(), 0);
    }

    #[test]
    fn membership_accessors() {
        let c = build(3, &[(1, &[0, 1]), (2, &[1, 2])]);
        assert!(c.set_contains(1, 0));
        assert!(!c.set_contains(1, 2));
        assert!(!c.set_contains(42, 0));
        let of1: Vec<SetId> = {
            let mut v: Vec<SetId> = c.sets_containing(1).unwrap().iter().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(of1, vec![1, 2]);
        assert!(c.sets_containing(99).is_none());
    }

    #[test]
    fn reset_universe_supports_binary_search() {
        let mut c = build(6, &[(1, &[0, 1, 2, 3]), (2, &[2, 3, 4, 5]), (3, &[4, 5])]);
        // Probe a smaller universe, then a larger one, as Algorithm 2 does.
        c.reset_universe(0..3);
        c.greedy().unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.universe_size(), 3);
        assert_eq!(c.solution_size(), 1);
        c.reset_universe(0..6);
        c.greedy().unwrap();
        c.check_invariants().unwrap();
        assert_eq!(c.universe_size(), 6);
        assert_eq!(c.solution_size(), 2);
    }

    #[test]
    fn batched_mutations_stabilize_once_at_commit() {
        // Same scenario as `stabilize_consolidates_scattered_assignments`,
        // but inside a batch: the violation must persist until commit.
        let mut c = DynamicSetCover::default();
        for u in 0..8u32 {
            c.insert_set(u as SetId + 1, [u]).unwrap();
        }
        for u in 0..8 {
            c.insert_element(u).unwrap();
        }
        assert_eq!(c.solution_size(), 8);
        c.begin_batch();
        assert!(c.is_batching());
        c.insert_set(100, 0..8).unwrap();
        // Deferred: the scattered singletons still form the solution.
        assert_eq!(c.solution_size(), 8);
        let moves = c.commit();
        assert!(!c.is_batching());
        assert!(moves >= 8, "commit reported {moves} moves");
        c.check_invariants().unwrap();
        assert_eq!(c.solution_size(), 1);
        assert!(c.in_solution(100));
    }

    #[test]
    fn batch_keeps_cover_valid_mid_flight() {
        // Coverage bookkeeping (φ, universe drops, reassignment) stays
        // exact inside a batch; only condition (2) is deferred.
        let mut c = build(3, &[(1, &[0, 1, 2]), (2, &[0, 1])]);
        c.greedy().unwrap();
        c.begin_batch();
        let dropped = c.remove_set(1).unwrap();
        assert_eq!(dropped, vec![2]); // element 2 had no other set
        assert_eq!(c.assignment(0), Some(2));
        assert_eq!(c.assignment(1), Some(2));
        c.commit();
        c.check_invariants().unwrap();
        assert_eq!(c.universe_size(), 2);
    }

    #[test]
    fn commit_without_batch_is_noop() {
        let mut c = build(2, &[(1, &[0, 1])]);
        assert_eq!(c.commit(), 0);
        c.check_invariants().unwrap();
    }

    #[test]
    fn batched_and_sequential_randomized_streams_both_stabilize() {
        // The same mutation stream applied per-op and batched must both
        // end stable with identical set systems and universes (the
        // *solution* may differ — stable covers are not unique).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut seq = DynamicSetCover::default();
        let mut bat = DynamicSetCover::default();
        for s in 0..20u64 {
            let members: Vec<ElemId> = (0..40u32).filter(|_| rng.gen_bool(0.25)).collect();
            seq.insert_set(s, members.iter().copied()).unwrap();
            bat.insert_set(s, members).unwrap();
        }
        for u in 0..40u32 {
            let a = seq.insert_element(u).is_ok();
            let b = bat.insert_element(u).is_ok();
            assert_eq!(a, b);
        }
        let muts: Vec<(u32, u64, bool)> = (0..200)
            .map(|_| {
                (
                    rng.gen_range(0..40u32),
                    rng.gen_range(0..20u64),
                    rng.gen_bool(0.5),
                )
            })
            .collect();
        bat.begin_batch();
        for &(u, s, add) in &muts {
            if add {
                seq.add_to_set(u, s).unwrap();
                bat.add_to_set(u, s).unwrap();
            } else {
                seq.remove_from_set(u, s).unwrap();
                bat.remove_from_set(u, s).unwrap();
            }
        }
        bat.commit();
        seq.check_invariants().unwrap();
        bat.check_invariants().unwrap();
        assert_eq!(seq.num_sets(), bat.num_sets());
        assert_eq!(seq.universe_size(), bat.universe_size());
        for s in 0..20u64 {
            let mut a: Vec<ElemId> = seq.members(s).unwrap().iter().copied().collect();
            let mut b: Vec<ElemId> = bat.members(s).unwrap().iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "set {s} memberships diverged");
        }
    }

    #[test]
    fn randomized_operations_maintain_invariants() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut c = DynamicSetCover::default();
        let num_sets: SetId = 30;
        let num_elems: ElemId = 60;
        for s in 0..num_sets {
            let members: Vec<ElemId> = (0..num_elems).filter(|_| rng.gen_bool(0.2)).collect();
            c.insert_set(s, members).unwrap();
        }
        let mut live_elems: Vec<ElemId> = Vec::new();
        for u in 0..num_elems {
            if c.insert_element(u).is_ok() {
                live_elems.push(u);
            }
        }
        c.greedy().unwrap();
        c.check_invariants().unwrap();

        for step in 0..400 {
            match rng.gen_range(0..4) {
                0 => {
                    // add membership
                    let u = rng.gen_range(0..num_elems);
                    let s = rng.gen_range(0..num_sets);
                    if c.has_set(s) {
                        c.add_to_set(u, s).unwrap();
                    }
                }
                1 => {
                    // remove membership
                    let u = rng.gen_range(0..num_elems);
                    let s = rng.gen_range(0..num_sets);
                    if c.has_set(s) {
                        let kept = c.remove_from_set(u, s).unwrap();
                        if !kept {
                            live_elems.retain(|&x| x != u);
                        }
                    }
                }
                2 => {
                    // toggle element
                    let u = rng.gen_range(0..num_elems);
                    if c.has_element(u) {
                        c.remove_element(u).unwrap();
                        live_elems.retain(|&x| x != u);
                    } else if c.insert_element(u).is_ok() {
                        live_elems.push(u);
                    }
                }
                _ => {
                    // re-add a set with random members
                    let s = rng.gen_range(0..num_sets);
                    if c.has_set(s) {
                        let dropped = c.remove_set(s).unwrap();
                        for d in dropped {
                            live_elems.retain(|&x| x != d);
                        }
                    } else {
                        let members: Vec<ElemId> =
                            (0..num_elems).filter(|_| rng.gen_bool(0.2)).collect();
                        c.insert_set(s, members).unwrap();
                    }
                }
            }
            if step % 20 == 0 {
                c.check_invariants()
                    .unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        c.check_invariants().unwrap();
    }
}
