//! Level arithmetic for the stable-solution hierarchy.

/// The base of the level hierarchy.
///
/// Level `j` holds sets whose cover sets have size in `[b^j, b^{j+1})`.
/// The paper fixes `b = 2` but notes (footnote 2) that any constant
/// greater than 1 works; the ablation benches sweep this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelBase(f64);

impl LevelBase {
    /// The paper's default base, 2.
    pub const TWO: LevelBase = LevelBase(2.0);

    /// Creates a base; panics unless `b > 1`.
    pub fn new(b: f64) -> Self {
        assert!(b > 1.0 && b.is_finite(), "level base must be > 1, got {b}");
        Self(b)
    }

    /// The numeric base.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The level of a cover set of `size` elements: the largest `j` with
    /// `b^j ≤ size`. `size` must be ≥ 1.
    pub fn level_for(self, size: usize) -> u32 {
        debug_assert!(size >= 1, "cover sets are never empty");
        // Iterative powers avoid float-log edge cases near boundaries
        // (e.g. log2(8) returning 2.999…): we only ever compare against
        // exactly-computed powers.
        let size = size as f64;
        let mut level = 0u32;
        let mut next = self.0; // b^{level+1}
        while next <= size {
            level += 1;
            next *= self.0;
        }
        level
    }

    /// The condition-(2) threshold for level `j`: `b^{j+1}` rounded up to
    /// an integer count (a set violates stability when it intersects `A_j`
    /// in at least this many elements).
    pub fn threshold(self, level: u32) -> usize {
        self.0.powi(level as i32 + 1).ceil() as usize
    }
}

impl Default for LevelBase {
    fn default() -> Self {
        Self::TWO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_two_levels() {
        let b = LevelBase::TWO;
        assert_eq!(b.level_for(1), 0);
        assert_eq!(b.level_for(2), 1);
        assert_eq!(b.level_for(3), 1);
        assert_eq!(b.level_for(4), 2);
        assert_eq!(b.level_for(7), 2);
        assert_eq!(b.level_for(8), 3);
        assert_eq!(b.level_for(1 << 20), 20);
        assert_eq!(b.level_for((1 << 20) - 1), 19);
    }

    #[test]
    fn base_two_thresholds() {
        let b = LevelBase::TWO;
        assert_eq!(b.threshold(0), 2);
        assert_eq!(b.threshold(1), 4);
        assert_eq!(b.threshold(5), 64);
    }

    #[test]
    fn level_range_invariant() {
        // b^j ≤ size < b^{j+1} must hold for every size and base.
        for &base in &[1.5, 2.0, 3.0, 4.0] {
            let b = LevelBase::new(base);
            for size in 1..2000usize {
                let j = b.level_for(size);
                let low = base.powi(j as i32);
                let high = base.powi(j as i32 + 1);
                assert!(
                    low <= size as f64 + 1e-9 && (size as f64) < high + 1e-9,
                    "base {base}, size {size}, level {j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "level base must be > 1")]
    fn base_one_rejected() {
        let _ = LevelBase::new(1.0);
    }

    #[test]
    fn fractional_base() {
        let b = LevelBase::new(1.5);
        assert_eq!(b.level_for(1), 0);
        assert_eq!(b.level_for(2), 1); // 1.5 ≤ 2 < 2.25
        assert_eq!(b.level_for(3), 2); // 2.25 ≤ 3 < 3.375
        assert_eq!(b.threshold(0), 2); // ceil(1.5)
    }
}
