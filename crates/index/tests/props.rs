//! Property-based tests: index queries always agree with brute force.

use proptest::prelude::*;
use rms_geom::{top_k as brute_top_k, Point, Utility};
use rms_index::{ConeTree, KdTree};

fn arb_points(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0.0f64..=1.0, d), n).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, c)| Point::new_unchecked(i as u64, c))
            .collect()
    })
}

fn arb_utility(d: usize) -> impl Strategy<Value = Utility> {
    prop::collection::vec(0.01f64..=1.0, d).prop_map(|w| Utility::new(w).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn kdtree_topk_equals_bruteforce(
        pts in arb_points(3, 1..120),
        u in arb_utility(3),
        k in 1usize..12,
    ) {
        let tree = KdTree::build(3, pts.clone()).unwrap();
        prop_assert_eq!(tree.top_k(&u, k), brute_top_k(&pts, &u, k));
    }

    #[test]
    fn kdtree_threshold_equals_filter(
        pts in arb_points(4, 1..80),
        u in arb_utility(4),
        tau in 0.0f64..2.0,
    ) {
        let tree = KdTree::build(4, pts.clone()).unwrap();
        let got: Vec<u64> = tree.above_threshold(&u, tau).iter().map(|r| r.id).collect();
        let mut want: Vec<(f64, u64)> = pts
            .iter()
            .filter_map(|p| {
                let s = u.score(p);
                (s >= tau).then_some((s, p.id()))
            })
            .collect();
        want.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let want: Vec<u64> = want.into_iter().map(|(_, id)| id).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_survives_edit_scripts(
        pts in arb_points(3, 1..60),
        script in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, any::<bool>()), 0..60),
        u in arb_utility(3),
    ) {
        let mut all = pts.clone();
        let mut tree = KdTree::build(3, pts).unwrap();
        let mut next = 10_000u64;
        for (x, y, z, insert) in script {
            if insert || all.is_empty() {
                let p = Point::new_unchecked(next, vec![x, y, z]);
                next += 1;
                all.push(p.clone());
                tree.insert(p).unwrap();
            } else {
                let idx = (x * all.len() as f64) as usize % all.len();
                let id = all.swap_remove(idx).id();
                tree.delete(id).unwrap();
            }
        }
        prop_assert_eq!(tree.len(), all.len());
        prop_assert_eq!(tree.top_k(&u, 8), brute_top_k(&all, &u, 8));
    }

    /// The bulk query paths (the ones the batch update engine drives)
    /// stay exact across edit scripts that exercise the flat leaf blocks:
    /// deferred deletes compact packed coordinate rows in place, the
    /// single `maybe_rebuild` decision repacks everything, and
    /// `top_k_many` / `top_k_approx_many` must agree with brute force
    /// throughout.
    #[test]
    fn kdtree_bulk_queries_survive_edit_scripts(
        pts in arb_points(3, 1..60),
        script in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, any::<bool>()), 0..80),
        us in prop::collection::vec(arb_utility(3), 1..6),
        k in 1usize..10,
    ) {
        let mut all = pts.clone();
        let mut tree = KdTree::build(3, pts).unwrap();
        let mut next = 10_000u64;
        for (x, y, z, insert) in script {
            if insert || all.is_empty() {
                let p = Point::new_unchecked(next, vec![x, y, z]);
                next += 1;
                all.push(p.clone());
                tree.insert(p).unwrap();
            } else {
                let idx = (x * all.len() as f64) as usize % all.len();
                let id = all.swap_remove(idx).id();
                tree.delete_deferred(id).unwrap();
            }
        }
        tree.maybe_rebuild();
        prop_assert_eq!(tree.len(), all.len());
        let many = tree.top_k_many(us.iter(), k);
        for (u, got) in us.iter().zip(many) {
            prop_assert_eq!(got, brute_top_k(&all, u, k));
        }
        let eps = 0.1;
        for (u, (phi, omega)) in us.iter().zip(tree.top_k_approx_many(us.iter(), k, eps)) {
            if let Some(omega_k) = omega {
                let tau = (1.0 - eps) * omega_k;
                let want: usize = all.iter().filter(|p| u.score(p) >= tau).count();
                prop_assert_eq!(phi.len(), want);
            } else {
                prop_assert_eq!(phi.len(), all.len());
            }
        }
    }

    #[test]
    fn conetree_affected_equals_scan(
        dirs in prop::collection::vec(prop::collection::vec(0.05f64..=1.0, 3), 1..100),
        taus in prop::collection::vec(0.0f64..=1.6, 100),
        probe in prop::collection::vec(0.0f64..=1.0, 3),
    ) {
        let us: Vec<Utility> = dirs.into_iter().map(|w| Utility::new(w).unwrap()).collect();
        let n = us.len();
        let mut tree = ConeTree::build(us);
        for (i, tau) in taus.into_iter().take(n).enumerate() {
            tree.set_threshold(i, tau);
        }
        let p = Point::new_unchecked(0, probe);
        prop_assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
    }

    /// Batch traversal over the packed leaf blocks after a bulk
    /// `set_thresholds` sweep agrees with the union of brute-force scans.
    #[test]
    fn conetree_batch_affected_equals_scan_after_bulk_thresholds(
        dirs in prop::collection::vec(prop::collection::vec(0.05f64..=1.0, 3), 1..80),
        taus in prop::collection::vec(0.0f64..=1.6, 80),
        probes in prop::collection::vec(prop::collection::vec(0.0f64..=1.0, 3), 0..6),
    ) {
        let us: Vec<Utility> = dirs.into_iter().map(|w| Utility::new(w).unwrap()).collect();
        let n = us.len();
        let mut tree = ConeTree::build(us);
        tree.set_thresholds(taus.into_iter().take(n).enumerate());
        let pts: Vec<Point> = probes
            .into_iter()
            .enumerate()
            .map(|(i, c)| Point::new_unchecked(i as u64, c))
            .collect();
        let mut want: Vec<usize> = pts.iter().flat_map(|p| tree.affected_by_scan(p)).collect();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(tree.affected_by_batch(pts.iter()), want.clone());
        let many: Vec<usize> = tree.affected_hits_many(pts.iter()).into_iter().map(|(m, _)| m).collect();
        prop_assert_eq!(many, want);
    }
}
