//! Batched scoring kernels over packed coordinate blocks.
//!
//! Both trees keep their hot data in flat `f64` arrays (struct-of-arrays
//! layout: leaf coordinates, node bounding corners, cone centres). The
//! kernels here are the straight-line inner loops that sweep those
//! arrays — no pointer chasing, no per-point branching — so the compiler
//! can keep them in cache and autovectorize them.

/// Inner product `⟨a, b⟩` over two equal-length slices.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Scores every row of a packed `rows × dim` coordinate block against
/// `w`, rebuilding `scores`: `scores[i] = ⟨block[i·dim ..], w⟩`.
#[inline]
pub(crate) fn score_block_into(block: &[f64], dim: usize, w: &[f64], scores: &mut Vec<f64>) {
    scores.clear();
    scores.extend(block.chunks_exact(dim).map(|row| dot(row, w)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_block_scores_agree() {
        let w = [0.25, 0.5, 0.25];
        let block = [1.0, 2.0, 3.0, 0.0, 4.0, 0.0];
        let mut scores = vec![9.9]; // stale content must be cleared
        score_block_into(&block, 3, &w, &mut scores);
        assert_eq!(scores, vec![dot(&block[0..3], &w), dot(&block[3..6], &w)]);
        assert_eq!(scores, vec![2.0, 2.0]);
    }
}
