//! Dual-tree indexes for maintaining many (approximate) top-k results over
//! a dynamic database (Section III-C of the paper).
//!
//! * [`KdTree`] — the **tuple index TI**: a bulk-loaded k-d tree over the
//!   database supporting exact top-k queries and score-threshold queries
//!   under nonnegative linear utilities via branch-and-bound (the upper
//!   bound of a box for `u ≥ 0` is `⟨u, hi⟩`). Insertions descend and
//!   expand bounding boxes exactly; deletions leave conservative boxes and
//!   trigger a full rebuild once enough staleness accumulates (the paper
//!   uses "standard top-down methods" for construction plus
//!   branch-and-bound search; lazy rebuilding is our documented
//!   equivalent for the update path — see the `ablation_kd_rebuild`
//!   bench).
//! * [`ConeTree`] — the **utility index UI** (Ram & Gray, KDD 2012): an
//!   angular space-partitioning tree over the sampled utility vectors.
//!   Each node is a cone (unit centre, half-angle) with the minimum
//!   per-utility threshold of its subtree; on a tuple insertion it reports
//!   exactly the utilities whose threshold the new tuple reaches, pruning
//!   whole cones by the maximum-inner-product bound
//!   `⟨u, p⟩ ≤ ‖p‖·cos(max(0, θ(c, p) − φ))`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conetree;
mod kdtree;
mod kernels;

pub use conetree::ConeTree;
pub use kdtree::{KdTree, KdTreeError};
