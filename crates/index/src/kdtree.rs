//! The tuple index TI: a dynamic k-d tree with branch-and-bound top-k.
//!
//! The tree is stored flat: nodes live in one contiguous `Vec` addressed
//! by index, per-node bounding corners are packed into a single `f64`
//! array, and every leaf owns a packed coordinate block scored by the
//! straight-line kernels in [`crate::kernels`]. No per-node heap
//! indirection survives on the query path.

use crate::kernels::{dot, score_block_into};
use rms_geom::{Point, PointId, RankedPoint, Utility};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Maximum number of points in a leaf before it splits.
const LEAF_CAPACITY: usize = 24;

/// Fraction of stale (deleted or box-loosening) operations that triggers a
/// full rebuild. Swept by the `ablation_kd_rebuild` bench.
const DEFAULT_REBUILD_FRACTION: f64 = 0.5;

/// Child-index sentinel marking a node as a leaf.
const NO_CHILD: u32 = u32::MAX;

/// Errors from dynamic k-d tree updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdTreeError {
    /// Insertion of an id that is already present.
    DuplicateId(PointId),
    /// Deletion of an id that is not present.
    UnknownId(PointId),
    /// Point dimensionality differs from the tree's.
    DimensionMismatch {
        /// The tree's dimensionality.
        expected: usize,
        /// The point's dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for KdTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KdTreeError::DuplicateId(id) => write!(f, "point {id} already indexed"),
            KdTreeError::UnknownId(id) => write!(f, "point {id} not indexed"),
            KdTreeError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimension {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for KdTreeError {}

/// Flat node record. Internal nodes use `split_dim`/`split_val` and the
/// two child indices; a leaf is marked by `left == NO_CHILD` and owns a
/// packed block of point ids and coordinates (point `i` of the leaf lives
/// at `coords[i·dim .. (i+1)·dim]`). The per-node upper corner `hi` lives
/// in the tree-level `bounds` array at `node·dim`, so bound evaluation
/// never touches the node record at all.
#[derive(Debug, Clone, Default)]
struct Node {
    split_dim: u32,
    split_val: f64,
    left: u32,
    right: u32,
    ids: Vec<PointId>,
    coords: Vec<f64>,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left == NO_CHILD
    }
}

/// A dynamic k-d tree over database tuples supporting branch-and-bound
/// top-k and threshold queries for nonnegative linear scoring.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    nodes: Vec<Node>,
    /// Componentwise max over each node's subtree (upper-bound corner),
    /// packed at `node·dim .. (node+1)·dim`.
    bounds: Vec<f64>,
    root: usize,
    len: usize,
    /// Leaf index per point id (for O(depth)-free deletion).
    leaf_of: HashMap<PointId, usize>,
    /// Operations since the last build that may have loosened boxes.
    stale_ops: usize,
    rebuild_fraction: f64,
}

/// Max-heap ordering for (score, id): larger score first, then smaller id.
#[inline]
fn better(a_score: f64, a_id: PointId, b_score: f64, b_id: PointId) -> bool {
    match a_score.partial_cmp(&b_score).expect("finite scores") {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => a_id < b_id,
    }
}

impl KdTree {
    /// Bulk-loads a tree from `points`. `dim` must be positive and all
    /// points must match it.
    pub fn build(dim: usize, points: Vec<Point>) -> Result<Self, KdTreeError> {
        Self::build_with_rebuild_fraction(dim, points, DEFAULT_REBUILD_FRACTION)
    }

    /// [`KdTree::build`] with an explicit lazy-rebuild threshold: the tree
    /// rebuilds itself once `stale_ops > rebuild_fraction × len`.
    pub fn build_with_rebuild_fraction(
        dim: usize,
        points: Vec<Point>,
        rebuild_fraction: f64,
    ) -> Result<Self, KdTreeError> {
        assert!(dim > 0, "dimension must be positive");
        assert!(rebuild_fraction > 0.0, "rebuild fraction must be positive");
        let mut tree = Self {
            dim,
            nodes: Vec::new(),
            bounds: Vec::new(),
            root: 0,
            len: 0,
            leaf_of: HashMap::new(),
            stale_ops: 0,
            rebuild_fraction,
        };
        for p in &points {
            if p.dim() != dim {
                return Err(KdTreeError::DimensionMismatch {
                    expected: dim,
                    got: p.dim(),
                });
            }
        }
        {
            let mut ids: Vec<PointId> = points.iter().map(|p| p.id()).collect();
            ids.sort_unstable();
            for w in ids.windows(2) {
                if w[0] == w[1] {
                    return Err(KdTreeError::DuplicateId(w[0]));
                }
            }
        }
        tree.rebuild_from(points);
        Ok(tree)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tree's dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `id` is indexed.
    pub fn contains(&self, id: PointId) -> bool {
        self.leaf_of.contains_key(&id)
    }

    /// All indexed points (unspecified order). Used for rebuilds and tests.
    pub fn points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        for node in &self.nodes {
            if node.is_leaf() {
                for (&id, row) in node.ids.iter().zip(node.coords.chunks_exact(self.dim)) {
                    out.push(Point::new_unchecked(id, row.to_vec()));
                }
            }
        }
        out
    }

    fn rebuild_from(&mut self, points: Vec<Point>) {
        self.nodes.clear();
        self.bounds.clear();
        self.leaf_of.clear();
        self.len = points.len();
        self.stale_ops = 0;
        let mut pts = points;
        self.root = self.build_rec(&mut pts, 0);
    }

    fn build_rec(&mut self, points: &mut Vec<Point>, depth: usize) -> usize {
        let hi = self.compute_hi(points);
        if points.len() <= LEAF_CAPACITY {
            return self.push_leaf(points, &hi);
        }
        // Split on the widest dimension (more robust than depth cycling on
        // skewed data); median split.
        let split_dim = self.widest_dim(points).unwrap_or(depth % self.dim);
        let mid = points.len() / 2;
        points.select_nth_unstable_by(mid, |a, b| {
            a.coord(split_dim)
                .partial_cmp(&b.coord(split_dim))
                .expect("finite")
                .then_with(|| a.id().cmp(&b.id()))
        });
        let split_val = points[mid].coord(split_dim);
        let mut right: Vec<Point> = points.split_off(mid);
        // Degenerate guard: all coordinates equal on split_dim — fall back
        // to an arbitrary half split, which the code above already did.
        let left_idx = self.build_rec(points, depth + 1);
        let right_idx = self.build_rec(&mut right, depth + 1);
        let idx = self.nodes.len();
        self.bounds.extend_from_slice(&hi);
        self.nodes.push(Node {
            split_dim: split_dim as u32,
            split_val,
            left: left_idx as u32,
            right: right_idx as u32,
            ids: Vec::new(),
            coords: Vec::new(),
        });
        idx
    }

    /// Appends a leaf node owning `points` as a packed block, registers
    /// its members in `leaf_of`, and returns its index.
    fn push_leaf(&mut self, points: &[Point], hi: &[f64]) -> usize {
        let idx = self.nodes.len();
        self.bounds.extend_from_slice(hi);
        let mut ids = Vec::with_capacity(points.len());
        let mut coords = Vec::with_capacity(points.len() * self.dim);
        for p in points {
            ids.push(p.id());
            coords.extend_from_slice(p.coords());
            self.leaf_of.insert(p.id(), idx);
        }
        self.nodes.push(Node {
            split_dim: 0,
            split_val: 0.0,
            left: NO_CHILD,
            right: NO_CHILD,
            ids,
            coords,
        });
        idx
    }

    fn compute_hi(&self, points: &[Point]) -> Vec<f64> {
        let mut hi = vec![0.0f64; self.dim];
        for p in points {
            for (h, &c) in hi.iter_mut().zip(p.coords()) {
                if c > *h {
                    *h = c;
                }
            }
        }
        hi
    }

    fn widest_dim(&self, points: &[Point]) -> Option<usize> {
        if points.is_empty() {
            return None;
        }
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for p in points {
            for i in 0..self.dim {
                lo[i] = lo[i].min(p.coord(i));
                hi[i] = hi[i].max(p.coord(i));
            }
        }
        (0..self.dim).max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("finite")
        })
    }

    /// Inserts a point, expanding bounding boxes along the descent path.
    pub fn insert(&mut self, p: Point) -> Result<(), KdTreeError> {
        if p.dim() != self.dim {
            return Err(KdTreeError::DimensionMismatch {
                expected: self.dim,
                got: p.dim(),
            });
        }
        if self.leaf_of.contains_key(&p.id()) {
            return Err(KdTreeError::DuplicateId(p.id()));
        }
        if self.nodes.is_empty() {
            self.rebuild_from(vec![p]);
            return Ok(());
        }
        let dim = self.dim;
        let mut idx = self.root;
        loop {
            // Expand this node's hi row to cover p.
            let row = &mut self.bounds[idx * dim..(idx + 1) * dim];
            for (h, &c) in row.iter_mut().zip(p.coords()) {
                if c > *h {
                    *h = c;
                }
            }
            let node = &mut self.nodes[idx];
            if node.is_leaf() {
                node.ids.push(p.id());
                node.coords.extend_from_slice(p.coords());
                let grew_past = node.ids.len() > 2 * LEAF_CAPACITY;
                self.leaf_of.insert(p.id(), idx);
                self.len += 1;
                if grew_past {
                    self.split_leaf(idx);
                }
                return Ok(());
            }
            idx = if p.coord(node.split_dim as usize) < node.split_val {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Splits an over-full leaf in place (the leaf node is rewritten into
    /// an internal node pointing at two fresh leaves; its bounds row stays
    /// valid because it already covered every member).
    fn split_leaf(&mut self, idx: usize) {
        let dim = self.dim;
        let (ids, coords) = {
            let node = &mut self.nodes[idx];
            debug_assert!(node.is_leaf(), "split_leaf on internal node");
            (
                std::mem::take(&mut node.ids),
                std::mem::take(&mut node.coords),
            )
        };
        let mut pts: Vec<Point> = ids
            .iter()
            .zip(coords.chunks_exact(dim))
            .map(|(&id, row)| Point::new_unchecked(id, row.to_vec()))
            .collect();
        let split_dim = self.widest_dim(&pts).unwrap_or(0);
        let mid = pts.len() / 2;
        pts.select_nth_unstable_by(mid, |a, b| {
            a.coord(split_dim)
                .partial_cmp(&b.coord(split_dim))
                .expect("finite")
                .then_with(|| a.id().cmp(&b.id()))
        });
        let split_val = pts[mid].coord(split_dim);
        let right: Vec<Point> = pts.split_off(mid);
        let left = pts;

        let left_hi = self.compute_hi(&left);
        let right_hi = self.compute_hi(&right);
        let left_idx = self.push_leaf(&left, &left_hi);
        let right_idx = self.push_leaf(&right, &right_hi);
        let node = &mut self.nodes[idx];
        node.split_dim = split_dim as u32;
        node.split_val = split_val;
        node.left = left_idx as u32;
        node.right = right_idx as u32;
    }

    /// Deletes a point by id. Bounding boxes are left conservative; once
    /// `stale_ops` exceeds the rebuild fraction of the current size, the
    /// tree rebuilds itself.
    pub fn delete(&mut self, id: PointId) -> Result<(), KdTreeError> {
        self.delete_deferred(id)?;
        self.maybe_rebuild();
        Ok(())
    }

    /// [`KdTree::delete`] without the per-call rebuild decision. Bulk
    /// callers (the batch update engine) apply every mutation of a batch
    /// through this and then take **one** [`KdTree::maybe_rebuild`]
    /// decision — a batch of `B` deletions pays at most one rebuild where
    /// the per-op discipline could pay several, and the single rebuild
    /// sees the post-batch database (inserts included), so it packs
    /// tighter boxes.
    pub fn delete_deferred(&mut self, id: PointId) -> Result<(), KdTreeError> {
        let Some(leaf_idx) = self.leaf_of.remove(&id) else {
            return Err(KdTreeError::UnknownId(id));
        };
        let dim = self.dim;
        let node = &mut self.nodes[leaf_idx];
        debug_assert!(node.is_leaf(), "leaf_of points at an internal node");
        let pos = node
            .ids
            .iter()
            .position(|&x| x == id)
            .expect("leaf_of is consistent");
        node.ids.swap_remove(pos);
        // Mirror the swap_remove on the packed coordinate block: move the
        // last dim-sized row into the vacated slot, then shrink.
        let last = node.ids.len();
        node.coords
            .copy_within(last * dim..(last + 1) * dim, pos * dim);
        node.coords.truncate(last * dim);
        self.len -= 1;
        self.stale_ops += 1;
        Ok(())
    }

    /// Takes the lazy-rebuild decision once: rebuilds (and returns `true`)
    /// when the stale operations accumulated by deletions exceed
    /// `rebuild_fraction × len`. Companion of [`KdTree::delete_deferred`].
    pub fn maybe_rebuild(&mut self) -> bool {
        if (self.stale_ops as f64) > self.rebuild_fraction * (self.len.max(1) as f64) {
            let pts = self.points();
            self.rebuild_from(pts);
            true
        } else {
            false
        }
    }

    /// Stale (box-loosening) operations accumulated since the last
    /// rebuild; exposed for rebuild-scheduling diagnostics.
    pub fn stale_ops(&self) -> usize {
        self.stale_ops
    }

    /// Upper bound of `⟨u, q⟩` over the subtree at `node` (valid because
    /// `u ≥ 0`, so the box's upper corner maximises the inner product).
    #[inline]
    fn node_bound(&self, node: usize, u: &Utility) -> f64 {
        dot(
            &self.bounds[node * self.dim..(node + 1) * self.dim],
            u.weights(),
        )
    }

    /// Exact top-k query via best-first branch-and-bound. Results are in
    /// descending score order with the workspace tie-breaking (id
    /// ascending).
    pub fn top_k(&self, u: &Utility, k: usize) -> Vec<RankedPoint> {
        let mut frontier = std::collections::BinaryHeap::new();
        let mut scores = Vec::new();
        let mut best = Vec::with_capacity(k + 1);
        self.top_k_into(u, k, &mut frontier, &mut scores, &mut best);
        best
    }

    /// Exact top-k for a whole batch of utilities, amortising the
    /// branch-and-bound frontier allocation across queries. Results are
    /// in input order. Bulk counterpart of [`KdTree::top_k`]; callers
    /// that also need the ε-band membership (the batch update engine's
    /// requery path) use [`KdTree::top_k_approx_many`] instead.
    pub fn top_k_many<'a, I>(&self, utilities: I, k: usize) -> Vec<Vec<RankedPoint>>
    where
        I: IntoIterator<Item = &'a Utility>,
    {
        let mut frontier = std::collections::BinaryHeap::new();
        let mut scores = Vec::new();
        let mut out = Vec::new();
        for u in utilities {
            let mut best = Vec::with_capacity(k + 1);
            self.top_k_into(u, k, &mut frontier, &mut scores, &mut best);
            out.push(best);
        }
        out
    }

    /// [`KdTree::top_k`] writing into caller-provided buffers so repeated
    /// queries (the bulk paths) skip per-query allocation. `scores` is
    /// scratch for the per-leaf scoring kernel.
    fn top_k_into(
        &self,
        u: &Utility,
        k: usize,
        frontier: &mut std::collections::BinaryHeap<HeapEntry>,
        scores: &mut Vec<f64>,
        best: &mut Vec<RankedPoint>,
    ) {
        frontier.clear();
        best.clear();
        if k == 0 || self.len == 0 {
            return;
        }
        frontier.push(HeapEntry {
            bound: self.node_bound(self.root, u),
            node: self.root,
        });
        while let Some(HeapEntry { bound, node }) = frontier.pop() {
            if best.len() == k {
                let kth = &best[k - 1];
                // Even a tie cannot improve: equal score only displaces on
                // smaller id, which the bound cannot attest. Allow ties
                // through to preserve exact id-based ranking.
                if bound < kth.score {
                    break;
                }
            }
            let n = &self.nodes[node];
            if !n.is_leaf() {
                frontier.push(HeapEntry {
                    bound: self.node_bound(n.left as usize, u),
                    node: n.left as usize,
                });
                frontier.push(HeapEntry {
                    bound: self.node_bound(n.right as usize, u),
                    node: n.right as usize,
                });
                continue;
            }
            // Score the whole packed leaf block in one kernel sweep, then
            // run selection over the scalar results.
            score_block_into(&n.coords, self.dim, u.weights(), scores);
            for (&id, &score) in n.ids.iter().zip(scores.iter()) {
                let candidate_better = best.len() < k || {
                    let kth = &best[k - 1];
                    better(score, id, kth.score, kth.id)
                };
                if candidate_better {
                    let rp = RankedPoint { id, score };
                    let pos = best
                        .binary_search_by(|probe| {
                            if better(probe.score, probe.id, rp.score, rp.id) {
                                Ordering::Less
                            } else {
                                Ordering::Greater
                            }
                        })
                        .unwrap_err();
                    best.insert(pos, rp);
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
        }
    }

    /// All points with score `≥ threshold`, in descending score order.
    pub fn above_threshold(&self, u: &Utility, threshold: f64) -> Vec<RankedPoint> {
        let mut stack = Vec::new();
        let mut scores = Vec::new();
        let mut out = Vec::new();
        self.above_threshold_into(u, threshold, &mut stack, &mut scores, &mut out);
        out
    }

    /// [`KdTree::above_threshold`] writing into caller-provided buffers so
    /// repeated queries (the bulk paths) skip per-query allocation.
    fn above_threshold_into(
        &self,
        u: &Utility,
        threshold: f64,
        stack: &mut Vec<usize>,
        scores: &mut Vec<f64>,
        out: &mut Vec<RankedPoint>,
    ) {
        stack.clear();
        out.clear();
        if self.len == 0 {
            return;
        }
        stack.push(self.root);
        while let Some(node) = stack.pop() {
            if self.node_bound(node, u) < threshold {
                continue;
            }
            let n = &self.nodes[node];
            if !n.is_leaf() {
                stack.push(n.left as usize);
                stack.push(n.right as usize);
                continue;
            }
            score_block_into(&n.coords, self.dim, u.weights(), scores);
            for (&id, &score) in n.ids.iter().zip(scores.iter()) {
                if score >= threshold {
                    out.push(RankedPoint { id, score });
                }
            }
        }
        out.sort_unstable_by(|a, b| {
            if better(a.score, a.id, b.score, b.id) {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        });
    }

    /// The ε-approximate top-k `Φ_{k,ε}(u, P)`: all points with score at
    /// least `(1 − ε)·ω_k(u, P)`, descending. Also returns `ω_k` (the
    /// exact kth score) as the second component, or `None` when fewer than
    /// `k` points exist (then every point is returned).
    pub fn top_k_approx(&self, u: &Utility, k: usize, eps: f64) -> (Vec<RankedPoint>, Option<f64>) {
        let mut many = self.top_k_approx_many(std::iter::once(u), k, eps);
        many.pop().expect("one query in, one result out")
    }

    /// [`KdTree::top_k_approx`] for a whole batch of utilities, reusing
    /// traversal buffers across queries. Results are in input order. This
    /// is the query the batch update engine's shard workers issue: each
    /// affected utility needs its exact top-k (the `Φ` prefix), the new
    /// threshold, and the full ε-band membership in one shot.
    pub fn top_k_approx_many<'a, I>(
        &self,
        utilities: I,
        k: usize,
        eps: f64,
    ) -> Vec<(Vec<RankedPoint>, Option<f64>)>
    where
        I: IntoIterator<Item = &'a Utility>,
    {
        let mut frontier = std::collections::BinaryHeap::new();
        let mut stack = Vec::new();
        let mut scores = Vec::new();
        let mut exact = Vec::with_capacity(k + 1);
        let mut out = Vec::new();
        for u in utilities {
            self.top_k_into(u, k, &mut frontier, &mut scores, &mut exact);
            if exact.len() < k {
                out.push((exact.clone(), None));
                continue;
            }
            let omega_k = exact[k - 1].score;
            let mut phi = Vec::new();
            self.above_threshold_into(u, (1.0 - eps) * omega_k, &mut stack, &mut scores, &mut phi);
            out.push((phi, Some(omega_k)));
        }
        out
    }
}

/// Frontier entry ordered by bound (max-heap).
struct HeapEntry {
    bound: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .expect("finite bounds")
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rms_geom::{sample_utilities, top_k as brute_top_k, top_k_approx as brute_approx};

    fn random_points(rng: &mut StdRng, n: usize, d: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let c: Vec<f64> = (0..d).map(|_| rng.gen()).collect();
                Point::new_unchecked(i as u64, c)
            })
            .collect()
    }

    #[test]
    fn topk_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = random_points(&mut rng, 500, 4);
        let tree = KdTree::build(4, pts.clone()).unwrap();
        for u in sample_utilities(&mut rng, 4, 30) {
            for k in [1, 3, 10] {
                let got = tree.top_k(&u, k);
                let want = brute_top_k(&pts, &u, k);
                assert_eq!(got, want, "k={k}");
            }
        }
    }

    #[test]
    fn threshold_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = random_points(&mut rng, 300, 3);
        let tree = KdTree::build(3, pts.clone()).unwrap();
        for u in sample_utilities(&mut rng, 3, 10) {
            let tau = 0.8;
            let got: Vec<_> = tree.above_threshold(&u, tau);
            let mut want: Vec<_> = pts
                .iter()
                .map(|p| RankedPoint {
                    id: p.id(),
                    score: u.score(p),
                })
                .filter(|r| r.score >= tau)
                .collect();
            want.sort_unstable_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap().then(a.id.cmp(&b.id))
            });
            assert_eq!(got, want);
        }
    }

    #[test]
    fn approx_topk_matches_bruteforce() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts = random_points(&mut rng, 400, 5);
        let tree = KdTree::build(5, pts.clone()).unwrap();
        for u in sample_utilities(&mut rng, 5, 10) {
            for (k, eps) in [(1, 0.05), (5, 0.01), (10, 0.2)] {
                let (got, omega) = tree.top_k_approx(&u, k, eps);
                let want = brute_approx(&pts, &u, k, eps);
                assert_eq!(got, want, "k={k} eps={eps}");
                assert!(omega.is_some());
            }
        }
    }

    #[test]
    fn bulk_queries_match_single_queries() {
        let mut rng = StdRng::seed_from_u64(13);
        let pts = random_points(&mut rng, 400, 4);
        let tree = KdTree::build(4, pts).unwrap();
        let us = sample_utilities(&mut rng, 4, 50);
        for k in [1, 4, 9] {
            let many = tree.top_k_many(us.iter(), k);
            assert_eq!(many.len(), us.len());
            for (u, got) in us.iter().zip(&many) {
                assert_eq!(*got, tree.top_k(u, k), "k={k}");
            }
            let approx_many = tree.top_k_approx_many(us.iter(), k, 0.05);
            for (u, got) in us.iter().zip(&approx_many) {
                let want = tree.top_k_approx(u, k, 0.05);
                assert_eq!(got.0, want.0, "k={k}");
                assert_eq!(got.1, want.1, "k={k}");
            }
        }
        // Empty input and k beyond the database size.
        assert!(tree.top_k_many(std::iter::empty(), 3).is_empty());
        let big = tree.top_k_approx_many(us.iter().take(2), 1_000, 0.1);
        for (phi, omega) in big {
            assert_eq!(phi.len(), 400);
            assert!(omega.is_none());
        }
    }

    #[test]
    fn inserts_keep_queries_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let initial = random_points(&mut rng, 100, 3);
        let mut all = initial.clone();
        let mut tree = KdTree::build(3, initial).unwrap();
        for i in 0..300 {
            let p = Point::new_unchecked(1_000 + i, (0..3).map(|_| rng.gen()).collect());
            all.push(p.clone());
            tree.insert(p).unwrap();
        }
        assert_eq!(tree.len(), 400);
        for u in sample_utilities(&mut rng, 3, 10) {
            assert_eq!(tree.top_k(&u, 7), brute_top_k(&all, &u, 7));
        }
    }

    #[test]
    fn deletes_keep_queries_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = random_points(&mut rng, 400, 4);
        let mut all = pts.clone();
        let mut tree = KdTree::build(4, pts).unwrap();
        // Delete 300 random points (triggers at least one rebuild).
        for _ in 0..300 {
            let i = rng.gen_range(0..all.len());
            let id = all.swap_remove(i).id();
            tree.delete(id).unwrap();
        }
        assert_eq!(tree.len(), 100);
        for u in sample_utilities(&mut rng, 4, 10) {
            assert_eq!(tree.top_k(&u, 5), brute_top_k(&all, &u, 5));
        }
    }

    #[test]
    fn mixed_workload_consistency() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut tree = KdTree::build(3, Vec::new()).unwrap();
        let mut all: Vec<Point> = Vec::new();
        let mut next = 0u64;
        for _ in 0..1500 {
            if all.is_empty() || rng.gen_bool(0.6) {
                let p = Point::new_unchecked(next, (0..3).map(|_| rng.gen()).collect());
                next += 1;
                all.push(p.clone());
                tree.insert(p).unwrap();
            } else {
                let i = rng.gen_range(0..all.len());
                let id = all.swap_remove(i).id();
                tree.delete(id).unwrap();
            }
        }
        assert_eq!(tree.len(), all.len());
        let u = Utility::new(vec![0.3, 0.5, 0.2]).unwrap();
        assert_eq!(tree.top_k(&u, 10), brute_top_k(&all, &u, 10));
    }

    #[test]
    fn deferred_deletes_rebuild_once_per_batch() {
        let mut rng = StdRng::seed_from_u64(17);
        let pts = random_points(&mut rng, 300, 3);
        let mut all = pts.clone();
        let mut tree = KdTree::build(3, pts).unwrap();
        // Delete two-thirds of the database deferred: with per-op
        // scheduling this would rebuild several times; deferred, stale
        // ops just accumulate and queries stay exact throughout.
        for _ in 0..200 {
            let i = rng.gen_range(0..all.len());
            let id = all.swap_remove(i).id();
            tree.delete_deferred(id).unwrap();
        }
        assert_eq!(tree.stale_ops(), 200);
        let u = Utility::new(vec![0.4, 0.3, 0.3]).unwrap();
        assert_eq!(tree.top_k(&u, 8), brute_top_k(&all, &u, 8));
        // One decision for the whole batch; it fires (200 > 0.5 × 100)
        // and resets the stale counter.
        assert!(tree.maybe_rebuild());
        assert_eq!(tree.stale_ops(), 0);
        assert!(!tree.maybe_rebuild());
        assert_eq!(tree.top_k(&u, 8), brute_top_k(&all, &u, 8));
        assert_eq!(
            tree.delete_deferred(999_999),
            Err(KdTreeError::UnknownId(999_999))
        );
    }

    #[test]
    fn error_paths() {
        let mut tree = KdTree::build(2, vec![Point::new_unchecked(0, vec![0.1, 0.2])]).unwrap();
        assert_eq!(
            tree.insert(Point::new_unchecked(0, vec![0.5, 0.5])),
            Err(KdTreeError::DuplicateId(0))
        );
        assert_eq!(tree.delete(7), Err(KdTreeError::UnknownId(7)));
        assert_eq!(
            tree.insert(Point::new_unchecked(1, vec![0.5])),
            Err(KdTreeError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        let dup = KdTree::build(
            2,
            vec![
                Point::new_unchecked(3, vec![0.0, 0.0]),
                Point::new_unchecked(3, vec![0.0, 0.1]),
            ],
        );
        assert_eq!(dup.err(), Some(KdTreeError::DuplicateId(3)));
    }

    #[test]
    fn empty_tree_queries() {
        let tree = KdTree::build(3, Vec::new()).unwrap();
        let u = Utility::new(vec![1.0, 1.0, 1.0]).unwrap();
        assert!(tree.top_k(&u, 5).is_empty());
        assert!(tree.above_threshold(&u, 0.0).is_empty());
        let (approx, omega) = tree.top_k_approx(&u, 3, 0.1);
        assert!(approx.is_empty());
        assert!(omega.is_none());
    }

    #[test]
    fn duplicate_coordinates_tie_break() {
        let pts = vec![
            Point::new_unchecked(9, vec![0.5, 0.5]),
            Point::new_unchecked(1, vec![0.5, 0.5]),
            Point::new_unchecked(5, vec![0.5, 0.5]),
        ];
        let tree = KdTree::build(2, pts).unwrap();
        let u = Utility::new(vec![1.0, 1.0]).unwrap();
        let ids: Vec<PointId> = tree.top_k(&u, 2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 5]);
    }

    #[test]
    fn fewer_than_k_points() {
        let pts = vec![
            Point::new_unchecked(0, vec![0.1, 0.9]),
            Point::new_unchecked(1, vec![0.9, 0.1]),
        ];
        let tree = KdTree::build(2, pts).unwrap();
        let u = Utility::new(vec![1.0, 0.0]).unwrap();
        assert_eq!(tree.top_k(&u, 10).len(), 2);
        let (approx, omega) = tree.top_k_approx(&u, 5, 0.1);
        assert_eq!(approx.len(), 2);
        assert!(omega.is_none());
    }
}
